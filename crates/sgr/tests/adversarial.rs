//! `EnumMIS` robustness: the answer set must not depend on the order in
//! which `A_V` yields nodes, on the extend tie-breaking, or on when the
//! consumer pauses.

use mintri_graph::{Graph, Node};
use mintri_sgr::bruteforce::all_maximal_independent_sets;
use mintri_sgr::{EnumMis, ExplicitSgr, PrintMode, Sgr};

/// An SGR over an explicit graph that yields nodes in *reverse* order and
/// extends greedily from the top end — a deliberately different exploration
/// bias than `ExplicitSgr`.
struct ReversedSgr<'g> {
    g: &'g Graph,
}

impl Sgr for ReversedSgr<'_> {
    type Node = Node;
    type NodeCursor = Node; // counts down from n
    type Scratch = ();

    fn start_nodes(&self) -> Node {
        self.g.num_nodes() as Node
    }

    fn next_node(&self, cursor: &mut Node) -> Option<Node> {
        if *cursor == 0 {
            None
        } else {
            *cursor -= 1;
            Some(*cursor)
        }
    }

    fn edge(&self, &u: &Node, &v: &Node) -> bool {
        self.g.has_edge(u, v)
    }

    fn extend(&self, base: &[Node]) -> Vec<Node> {
        let mut out: Vec<Node> = base.to_vec();
        for v in (0..self.g.num_nodes() as Node).rev() {
            if out.contains(&v) {
                continue;
            }
            if out.iter().all(|&u| !self.g.has_edge(u, v)) {
                out.push(v);
            }
        }
        out.sort_unstable();
        out
    }
}

fn suite() -> Vec<Graph> {
    vec![
        Graph::cycle(7),
        Graph::path(8),
        Graph::complete(5),
        Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (2, 5),
                (6, 7),
            ],
        ),
        Graph::new(5),
    ]
}

#[test]
fn node_order_does_not_change_the_answer_set() {
    for g in suite() {
        let forward = {
            let sgr = ExplicitSgr::new(&g);
            let mut v: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
            v.sort();
            v
        };
        let backward = {
            let sgr = ReversedSgr { g: &g };
            let mut v: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
            v.sort();
            v
        };
        assert_eq!(forward, backward, "order sensitivity on {g:?}");
        assert_eq!(forward, all_maximal_independent_sets(&g));
    }
}

#[test]
fn interleaved_consumption_is_equivalent_to_bulk() {
    let g = Graph::cycle(9);
    let sgr = ExplicitSgr::new(&g);
    let bulk: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();

    // consume one element at a time through a fresh iterator, dropping and
    // resuming state is NOT supported — but pausing (not polling) is.
    let sgr2 = ExplicitSgr::new(&g);
    let mut it = EnumMis::new(&sgr2, PrintMode::UponGeneration);
    let mut stepped = Vec::new();
    while let Some(ans) = it.next() {
        stepped.push(ans);
        // interleave stats queries to ensure they don't disturb the run
        let _ = it.stats();
    }
    assert_eq!(bulk, stepped);
}

#[test]
fn upon_pop_holds_results_but_loses_none() {
    for g in suite() {
        let sgr = ExplicitSgr::new(&g);
        let mut ug: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
        let sgr2 = ExplicitSgr::new(&g);
        let mut up: Vec<Vec<Node>> = EnumMis::new(&sgr2, PrintMode::UponPop).collect();
        ug.sort();
        up.sort();
        assert_eq!(ug, up);
    }
}

#[test]
fn blanket_ref_impl_works() {
    // EnumMis can own the SGR or borrow it through the &S blanket impl
    let g = Graph::cycle(5);
    let sgr = ExplicitSgr::new(&g);
    let borrowed_count = EnumMis::new(&sgr, PrintMode::UponGeneration).count();
    let owned_count = EnumMis::new(sgr, PrintMode::UponGeneration).count();
    assert_eq!(borrowed_count, 5);
    assert_eq!(owned_count, 5);
}

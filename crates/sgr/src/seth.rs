//! The SETH lower-bound gadget of Proposition 3.6.
//!
//! For a `k`-SAT formula `φ` over an even number `n` of variables, the
//! proposition builds an SGR whose graph has node set
//! `V_A ∪ V_B ∪ {⊥_A, ⊥_B}` — `V_A`/`V_B` encode all assignments to the
//! first/second half of the variables — and whose maximal independent sets
//! are `I_A ∪ I_B ∪ I_sat`, with `|I_A| = |I_B| = 2^{n/2}` and `I_sat` the
//! satisfying assignments. A polynomial-*delay* enumerator would therefore
//! decide satisfiability in `O*(2^{n/2})`, contradicting SETH. Enumerating
//! this SGR with [`crate::EnumMis`] is a nice end-to-end exercise of the
//! framework — and a test that the maximal-independent-set count equals
//! `2 · 2^{n/2} + #SAT(φ)`.

use crate::Sgr;

/// A CNF formula over variables `1..=num_vars` (DIMACS-style signed
/// literals).
#[derive(Debug, Clone)]
pub struct CnfFormula {
    /// Number of variables; must be even and at most 40 for the gadget.
    pub num_vars: usize,
    /// Clauses as lists of nonzero literals: `+v` means `x_v`, `-v` means
    /// `¬x_v`.
    pub clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Creates a formula, validating literal ranges.
    pub fn new(num_vars: usize, clauses: Vec<Vec<i32>>) -> Self {
        for c in &clauses {
            for &l in c {
                assert!(
                    l != 0 && l.unsigned_abs() as usize <= num_vars,
                    "literal {l} out of range"
                );
            }
        }
        CnfFormula { num_vars, clauses }
    }

    /// Evaluates under `assignment`, whose bit `i` is the value of variable
    /// `i + 1`.
    pub fn evaluate(&self, assignment: u64) -> bool {
        self.clauses.iter().all(|c| {
            c.iter().any(|&l| {
                let bit = (assignment >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    bit
                } else {
                    !bit
                }
            })
        })
    }

    /// Counts satisfying assignments by brute force (test oracle).
    pub fn count_satisfying(&self) -> u64 {
        assert!(
            self.num_vars <= 24,
            "brute-force model counting is exponential"
        );
        (0u64..(1 << self.num_vars))
            .filter(|&a| self.evaluate(a))
            .count() as u64
    }
}

/// A node of the Proposition 3.6 gadget graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SethNode {
    /// `(A, a_1 … a_{n/2})`: an assignment to the first half of the
    /// variables.
    A(u64),
    /// `(B, a_{n/2+1} … a_n)`: an assignment to the second half.
    B(u64),
    /// The apex node `⊥_A`, adjacent to all of `V_A` and to `⊥_B`.
    BotA,
    /// The apex node `⊥_B`, adjacent to all of `V_B` and to `⊥_A`.
    BotB,
}

/// The SGR `(G, A_V, A_E)` of Proposition 3.6 for a fixed formula.
pub struct SethSgr {
    formula: CnfFormula,
    half: usize,
}

impl SethSgr {
    /// Builds the gadget; `formula.num_vars` must be even (the proposition's
    /// readability assumption) and small enough for `u64` assignments.
    pub fn new(formula: CnfFormula) -> Self {
        assert!(
            formula.num_vars.is_multiple_of(2),
            "the gadget needs an even number of variables"
        );
        assert!(
            formula.num_vars <= 40,
            "assignments must fit the gadget encoding"
        );
        let half = formula.num_vars / 2;
        SethSgr { formula, half }
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a | (b << self.half)
    }
}

impl Sgr for SethSgr {
    type Node = SethNode;
    /// Position in the fixed order `⊥_A, ⊥_B, A(0..2^{n/2}), B(0..2^{n/2})`.
    type NodeCursor = u64;
    type Scratch = ();

    fn start_nodes(&self) -> u64 {
        0
    }

    fn next_node(&self, cursor: &mut u64) -> Option<SethNode> {
        let side = 1u64 << self.half;
        let i = *cursor;
        *cursor += 1;
        match i {
            0 => Some(SethNode::BotA),
            1 => Some(SethNode::BotB),
            _ if i - 2 < side => Some(SethNode::A(i - 2)),
            _ if i - 2 - side < side => Some(SethNode::B(i - 2 - side)),
            _ => None,
        }
    }

    fn edge(&self, u: &SethNode, v: &SethNode) -> bool {
        use SethNode::*;
        match (*u, *v) {
            (A(a), A(b)) | (B(a), B(b)) => a != b, // sides are cliques
            (A(a), B(b)) | (B(b), A(a)) => !self.formula.evaluate(self.combine(a, b)),
            (BotA, BotB) | (BotB, BotA) => true,
            (A(_), BotA) | (BotA, A(_)) => true,
            (B(_), BotB) | (BotB, B(_)) => true,
            (A(_), BotB) | (BotB, A(_)) => false,
            (B(_), BotA) | (BotA, B(_)) => false,
            (BotA, BotA) | (BotB, BotB) => false,
        }
    }

    fn extend(&self, base: &[SethNode]) -> Vec<SethNode> {
        use SethNode::*;
        let mut out = match *base {
            [] => vec![A(0), BotB],
            [A(a)] => vec![A(a), BotB],
            [B(b)] => vec![BotA, B(b)],
            [BotA] => vec![BotA, B(0)],
            [BotB] => vec![A(0), BotB],
            // every independent pair is already maximal (Prop 3.6)
            [x, y] => vec![x, y],
            _ => unreachable!("independent sets of the gadget have at most 2 nodes"),
        };
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnumMis, PrintMode};

    fn mis_count(formula: CnfFormula) -> u64 {
        let sgr = SethSgr::new(formula);
        EnumMis::new(&sgr, PrintMode::UponGeneration).count() as u64
    }

    #[test]
    fn formula_evaluation() {
        // (x1 ∨ ¬x2) ∧ (x2 ∨ x3 ∨ x4)
        let f = CnfFormula::new(4, vec![vec![1, -2], vec![2, 3, 4]]);
        assert!(f.evaluate(0b0011)); // x1=1, x2=1
        assert!(!f.evaluate(0b0000)); // second clause... x2=x3=x4=0 -> false? first: x1=0,¬x2=1 -> ok; second fails
        assert!(!f.evaluate(0b0010)); // x2=1,x1=0: first clause fails
    }

    #[test]
    fn mis_count_is_two_sides_plus_sat_count() {
        // n = 4 variables; formula (x1 ∨ x3) ∧ (¬x2 ∨ x4)
        let f = CnfFormula::new(4, vec![vec![1, 3], vec![-2, 4]]);
        let sat = f.count_satisfying();
        assert_eq!(mis_count(f), 2 * 4 + sat);
    }

    #[test]
    fn unsatisfiable_formula_yields_only_the_apex_families() {
        // x1 ∧ ¬x1
        let f = CnfFormula::new(2, vec![vec![1], vec![-1]]);
        assert_eq!(f.count_satisfying(), 0);
        assert_eq!(mis_count(f), 2 * 2);
    }

    #[test]
    fn tautology_yields_all_pairs() {
        let f = CnfFormula::new(2, vec![]);
        assert_eq!(f.count_satisfying(), 4);
        assert_eq!(mis_count(f), 2 * 2 + 4);
    }

    #[test]
    fn every_answer_has_size_two() {
        let f = CnfFormula::new(4, vec![vec![1, 2], vec![3, -4]]);
        let sgr = SethSgr::new(f);
        for ans in EnumMis::new(&sgr, PrintMode::UponPop) {
            assert_eq!(ans.len(), 2, "tractable expansion bound of the gadget");
        }
    }
}

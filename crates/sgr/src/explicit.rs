//! An SGR over an ordinary in-memory graph. Nothing succinct about it —
//! it exists so `EnumMIS` can be cross-validated against brute-force
//! maximal-independent-set enumeration, and as the simplest example of the
//! [`Sgr`] contract.

use crate::Sgr;
use mintri_graph::{Graph, Node};

/// Wraps an explicit [`Graph`] as an SGR whose nodes are the graph's nodes.
pub struct ExplicitSgr<'g> {
    g: &'g Graph,
}

impl<'g> ExplicitSgr<'g> {
    /// Wraps `g`.
    pub fn new(g: &'g Graph) -> Self {
        ExplicitSgr { g }
    }
}

impl Sgr for ExplicitSgr<'_> {
    type Node = Node;
    type NodeCursor = Node;
    type Scratch = ();

    fn start_nodes(&self) -> Node {
        0
    }

    fn next_node(&self, cursor: &mut Node) -> Option<Node> {
        if (*cursor as usize) < self.g.num_nodes() {
            let v = *cursor;
            *cursor += 1;
            Some(v)
        } else {
            None
        }
    }

    fn edge(&self, &u: &Node, &v: &Node) -> bool {
        self.g.has_edge(u, v)
    }

    fn extend(&self, base: &[Node]) -> Vec<Node> {
        let mut out: Vec<Node> = base.to_vec();
        for v in self.g.nodes() {
            if out.contains(&v) {
                continue;
            }
            if out.iter().all(|&u| !self.g.has_edge(u, v)) {
                out.push(v);
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_returns_maximal_supersets() {
        let g = Graph::cycle(6);
        let sgr = ExplicitSgr::new(&g);
        let m = sgr.extend(&[0]);
        assert!(m.contains(&0));
        // maximality: every node outside m has a neighbor inside
        for v in g.nodes() {
            if !m.contains(&v) {
                assert!(m.iter().any(|&u| g.has_edge(u, v)));
            }
        }
        // independence
        for (i, &u) in m.iter().enumerate() {
            for &v in &m[i + 1..] {
                assert!(!g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn edge_oracle_matches_graph() {
        let g = Graph::path(4);
        let sgr = ExplicitSgr::new(&g);
        assert!(sgr.edge(&0, &1));
        assert!(!sgr.edge(&0, &2));
    }
}

//! `EnumMIS` (Figure 1 of the paper): enumerating the maximal independent
//! sets of a tractably accessible SGR with tractable expansion, in
//! incremental polynomial time.
//!
//! The algorithm traverses the solution graph depth-first-ish: every
//! produced answer `J` is later *extended in the direction of* every
//! generated SGR node `v` (build `Jv = {v} ∪ {u ∈ J | ¬A_E(v, u)}`, expand
//! with `Extend`). The twist relative to the classical Lawler / Cohen et
//! al. scheme is that the node set `V` is *not* known upfront: new nodes
//! are pulled from the `A_V` iterator only when the queue of unprocessed
//! answers runs dry, and then all previously processed answers are
//! revisited in the direction of the new node (lines 16–24).
//!
//! Both printing disciplines of Section 3.2.2 are available:
//! [`PrintMode::UponGeneration`] (the `EnumMIS` of Figure 1, results appear
//! as soon as created) and [`PrintMode::UponPop`] (`EnumMISHold`, results
//! appear when extracted from the queue — the variant whose incremental
//! polynomial time bound is proved directly, Lemma 3.3). Both emit exactly
//! the same answer set (Lemma 3.2 + Theorem 3.4), which the tests verify.

use crate::Sgr;
use mintri_graph::FxHashSet;
use std::collections::VecDeque;

/// When answers become visible to the consumer; see module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrintMode {
    /// Print as soon as an answer is generated (`EnumMIS`, lines 2/14/23).
    #[default]
    UponGeneration,
    /// Print when an answer is popped from the queue (`EnumMISHold`).
    UponPop,
}

/// Running counters, exposed for the benchmark harness and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumMisStats {
    /// Calls to the SGR `extend` operation.
    pub extend_calls: usize,
    /// Calls to the SGR `edge` oracle.
    pub edge_queries: usize,
    /// Nodes pulled from the SGR node iterator so far (`|V|`).
    pub nodes_generated: usize,
    /// Answers produced so far.
    pub answers: usize,
}

/// Iterator over all maximal independent sets of an SGR.
///
/// Answers are sorted `Vec<S::Node>`s; each maximal independent set is
/// yielded exactly once. Dropping the iterator abandons the enumeration —
/// it is an *anytime* algorithm.
///
/// `EnumMis` owns its SGR; pass `&S` (the blanket `Sgr for &S` impl) to
/// borrow one instead.
pub struct EnumMis<S: Sgr> {
    sgr: S,
    mode: PrintMode,
    cursor: S::NodeCursor,
    node_iter_done: bool,
    /// `V`: the SGR nodes generated so far.
    nodes: Vec<S::Node>,
    /// `Q`: answers generated but not yet processed.
    queue: VecDeque<Vec<S::Node>>,
    /// `P`: processed answers.
    processed: Vec<Vec<S::Node>>,
    /// Membership structure for `Q ∪ P` (answers ever created).
    seen: FxHashSet<Vec<S::Node>>,
    /// Answers awaiting emission to the consumer.
    pending: VecDeque<Vec<S::Node>>,
    started: bool,
    stats: EnumMisStats,
}

impl<S: Sgr> EnumMis<S> {
    /// Starts an enumeration in the given print mode.
    pub fn new(sgr: S, mode: PrintMode) -> Self {
        let cursor = sgr.start_nodes();
        EnumMis {
            sgr,
            mode,
            cursor,
            node_iter_done: false,
            nodes: Vec::new(),
            queue: VecDeque::new(),
            processed: Vec::new(),
            seen: FxHashSet::default(),
            pending: VecDeque::new(),
            started: false,
            stats: EnumMisStats::default(),
        }
    }

    /// Starts an enumeration in the default (`UponGeneration`) mode.
    pub fn upon_generation(sgr: S) -> Self {
        Self::new(sgr, PrintMode::UponGeneration)
    }

    /// Current counters.
    pub fn stats(&self) -> EnumMisStats {
        self.stats
    }

    /// The wrapped SGR.
    pub fn sgr(&self) -> &S {
        &self.sgr
    }

    /// Canonicalizes and registers a freshly created answer; queues it and —
    /// in `UponGeneration` mode — emits it.
    fn offer(&mut self, mut answer: Vec<S::Node>) {
        answer.sort_unstable();
        if self.seen.contains(&answer) {
            return;
        }
        self.seen.insert(answer.clone());
        if self.mode == PrintMode::UponGeneration {
            self.pending.push_back(answer.clone());
            self.stats.answers += 1;
        }
        self.queue.push_back(answer);
    }

    /// Extension of `j` in the direction of node `v` (lines 11–15 / 20–24):
    /// `Jv = {v} ∪ {u ∈ J | ¬A_E(v, u)}`, expanded to a maximal independent
    /// set.
    fn extend_in_direction(&mut self, j_idx: usize, v_idx: usize) {
        let v = self.nodes[v_idx].clone();
        let j = &self.processed[j_idx];
        if j.binary_search(&v).is_ok() {
            // v ∈ J: Jv = J (an answer already seen) — skip the Extend call.
            return;
        }
        let mut jv = Vec::with_capacity(j.len() + 1);
        jv.push(v.clone());
        for u in j {
            self.stats.edge_queries += 1;
            if !self.sgr.edge(&v, u) {
                jv.push(u.clone());
            }
        }
        self.stats.extend_calls += 1;
        let k = self.sgr.extend(&jv);
        debug_assert!(
            jv.iter().all(|u| k.contains(u)),
            "Extend must return a superset of its input"
        );
        self.offer(k);
    }

    /// Runs the algorithm until at least one answer is pending or the
    /// enumeration is complete.
    fn advance(&mut self) {
        if !self.started {
            self.started = true;
            self.stats.extend_calls += 1;
            let first = self.sgr.extend(&[]);
            self.offer(first); // line 1–3
        }
        while self.pending.is_empty() {
            if let Some(j) = self.queue.pop_front() {
                // lines 8–15: process J in the direction of every known node
                if self.mode == PrintMode::UponPop {
                    self.pending.push_back(j.clone());
                    self.stats.answers += 1;
                }
                self.processed.push(j);
                let j_idx = self.processed.len() - 1;
                for v_idx in 0..self.nodes.len() {
                    self.extend_in_direction(j_idx, v_idx);
                }
            } else {
                // lines 16–24: queue is dry — pull nodes until it refills
                if self.node_iter_done {
                    return;
                }
                match self.sgr.next_node(&mut self.cursor) {
                    None => {
                        self.node_iter_done = true;
                        return;
                    }
                    Some(v) => {
                        self.nodes.push(v);
                        self.stats.nodes_generated += 1;
                        let v_idx = self.nodes.len() - 1;
                        for j_idx in 0..self.processed.len() {
                            self.extend_in_direction(j_idx, v_idx);
                        }
                    }
                }
            }
        }
    }
}

impl<S: Sgr> Iterator for EnumMis<S> {
    type Item = Vec<S::Node>;

    fn next(&mut self) -> Option<Vec<S::Node>> {
        if self.pending.is_empty() {
            self.advance();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplicitSgr;
    use mintri_graph::Graph;

    fn run(g: &Graph, mode: PrintMode) -> Vec<Vec<u32>> {
        let sgr = ExplicitSgr::new(g);
        let mut out: Vec<Vec<u32>> = EnumMis::new(&sgr, mode).collect();
        out.sort();
        out
    }

    #[test]
    fn c5_has_five_maximal_independent_sets() {
        let g = Graph::cycle(5);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out.len(), 5);
        assert!(out.contains(&vec![0, 2]));
        assert!(out.contains(&vec![1, 4]));
    }

    #[test]
    fn both_modes_agree() {
        for g in [
            Graph::cycle(6),
            Graph::path(7),
            Graph::complete(4),
            Graph::new(3),
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]),
        ] {
            assert_eq!(
                run(&g, PrintMode::UponGeneration),
                run(&g, PrintMode::UponPop),
                "modes disagree on {g:?}"
            );
        }
    }

    #[test]
    fn complete_graph_yields_singletons() {
        let g = Graph::complete(4);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn edgeless_graph_yields_everything_once() {
        let g = Graph::new(4);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_graph_yields_the_empty_set() {
        // MaxInd of the empty graph is {∅}: one (empty) answer.
        let g = Graph::new(0);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn no_duplicates_on_dense_graphs() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (1, 4),
            ],
        );
        let out = run(&g, PrintMode::UponGeneration);
        let mut dedup = out.clone();
        dedup.dedup();
        assert_eq!(out, dedup);
    }

    #[test]
    fn stats_are_populated() {
        let g = Graph::cycle(5);
        let sgr = ExplicitSgr::new(&g);
        let mut e = EnumMis::upon_generation(&sgr);
        let _ = e.by_ref().count();
        let s = e.stats();
        assert_eq!(s.answers, 5);
        assert_eq!(s.nodes_generated, 5);
        assert!(s.extend_calls >= 5);
    }

    #[test]
    fn anytime_prefix_is_valid() {
        let g = Graph::cycle(7);
        let sgr = ExplicitSgr::new(&g);
        let prefix: Vec<_> = EnumMis::upon_generation(&sgr).take(3).collect();
        assert_eq!(prefix.len(), 3);
        let mut sorted = prefix.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}

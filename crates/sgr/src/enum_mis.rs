//! `EnumMIS` (Figure 1 of the paper): enumerating the maximal independent
//! sets of a tractably accessible SGR with tractable expansion, in
//! incremental polynomial time.
//!
//! The algorithm traverses the solution graph depth-first-ish: every
//! produced answer `J` is later *extended in the direction of* every
//! generated SGR node `v` (build `Jv = {v} ∪ {u ∈ J | ¬A_E(v, u)}`, expand
//! with `Extend`). The twist relative to the classical Lawler / Cohen et
//! al. scheme is that the node set `V` is *not* known upfront: new nodes
//! are pulled from the `A_V` iterator only when the queue of unprocessed
//! answers runs dry, and then all previously processed answers are
//! revisited in the direction of the new node (lines 16–24).
//!
//! Both printing disciplines of Section 3.2.2 are available:
//! [`PrintMode::UponGeneration`] (the `EnumMIS` of Figure 1, results appear
//! as soon as created) and [`PrintMode::UponPop`] (`EnumMISHold`, results
//! appear when extracted from the queue — the variant whose incremental
//! polynomial time bound is proved directly, Lemma 3.3). Both emit exactly
//! the same answer set (Lemma 3.2 + Theorem 3.4), which the tests verify.
//!
//! The schedule itself — queue/processed/seen bookkeeping, node-pulling,
//! the print-mode split — lives in [`Frontier`]; this iterator is the
//! sequential driver that evaluates each drained batch inline. Parallel
//! drivers (the engine crate) share the same `Frontier` and differ only
//! in where the `Extend` calls run.

use crate::frontier::{EvalScratch, Frontier};
use crate::{EnumMisStats, PrintMode, Sgr};

/// Iterator over all maximal independent sets of an SGR.
///
/// Answers are sorted `Vec<S::Node>`s; each maximal independent set is
/// yielded exactly once. Dropping the iterator abandons the enumeration —
/// it is an *anytime* algorithm.
///
/// `EnumMis` owns its SGR; pass `&S` (the blanket `Sgr for &S` impl) to
/// borrow one instead.
pub struct EnumMis<S: Sgr> {
    frontier: Frontier<S>,
    /// The stream's private evaluation workspace: drained pairs are
    /// evaluated through it one at a time and absorbed incrementally, so
    /// steady-state iteration allocates only for genuinely new answers.
    scratch: EvalScratch<S>,
}

impl<S: Sgr> EnumMis<S> {
    /// Starts an enumeration in the given print mode.
    pub fn new(sgr: S, mode: PrintMode) -> Self {
        EnumMis {
            frontier: Frontier::new(sgr, mode),
            scratch: EvalScratch::default(),
        }
    }

    /// Starts an enumeration in the default (`UponGeneration`) mode.
    pub fn upon_generation(sgr: S) -> Self {
        Self::new(sgr, PrintMode::UponGeneration)
    }

    /// Current counters.
    pub fn stats(&self) -> EnumMisStats {
        self.frontier.stats()
    }

    /// The wrapped SGR.
    pub fn sgr(&self) -> &S {
        self.frontier.sgr()
    }
}

impl<S: Sgr> Iterator for EnumMis<S> {
    type Item = Vec<S::Node>;

    fn next(&mut self) -> Option<Vec<S::Node>> {
        while !self.frontier.has_emissions() && !self.frontier.is_complete() {
            let batch = self.frontier.drain_pending();
            for pair in &batch {
                let produced = pair.evaluate_with(self.frontier.sgr(), &mut self.scratch);
                self.frontier
                    .absorb_one(produced.then_some(&mut self.scratch.out));
            }
        }
        self.frontier.pop_emission()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplicitSgr;
    use mintri_graph::Graph;

    fn run(g: &Graph, mode: PrintMode) -> Vec<Vec<u32>> {
        let sgr = ExplicitSgr::new(g);
        let mut out: Vec<Vec<u32>> = EnumMis::new(&sgr, mode).collect();
        out.sort();
        out
    }

    #[test]
    fn c5_has_five_maximal_independent_sets() {
        let g = Graph::cycle(5);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out.len(), 5);
        assert!(out.contains(&vec![0, 2]));
        assert!(out.contains(&vec![1, 4]));
    }

    #[test]
    fn both_modes_agree() {
        for g in [
            Graph::cycle(6),
            Graph::path(7),
            Graph::complete(4),
            Graph::new(3),
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]),
        ] {
            assert_eq!(
                run(&g, PrintMode::UponGeneration),
                run(&g, PrintMode::UponPop),
                "modes disagree on {g:?}"
            );
        }
    }

    #[test]
    fn complete_graph_yields_singletons() {
        let g = Graph::complete(4);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![vec![0], vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn edgeless_graph_yields_everything_once() {
        let g = Graph::new(4);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn empty_graph_yields_the_empty_set() {
        // MaxInd of the empty graph is {∅}: one (empty) answer.
        let g = Graph::new(0);
        let out = run(&g, PrintMode::UponGeneration);
        assert_eq!(out, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn no_duplicates_on_dense_graphs() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 5),
                (1, 4),
            ],
        );
        let out = run(&g, PrintMode::UponGeneration);
        let mut dedup = out.clone();
        dedup.dedup();
        assert_eq!(out, dedup);
    }

    #[test]
    fn stats_are_populated() {
        let g = Graph::cycle(5);
        let sgr = ExplicitSgr::new(&g);
        let mut e = EnumMis::upon_generation(&sgr);
        let _ = e.by_ref().count();
        let s = e.stats();
        assert_eq!(s.answers, 5);
        assert_eq!(s.nodes_generated, 5);
        assert!(s.extend_calls >= 5);
    }

    #[test]
    fn anytime_prefix_is_valid() {
        let g = Graph::cycle(7);
        let sgr = ExplicitSgr::new(&g);
        let prefix: Vec<_> = EnumMis::upon_generation(&sgr).take(3).collect();
        assert_eq!(prefix.len(), 3);
        let mut sorted = prefix.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    /// Driving the `Frontier` by hand (the way an external driver would)
    /// produces the same stream as the `EnumMis` iterator.
    #[test]
    fn manual_frontier_drive_matches_iterator() {
        let g = Graph::cycle(6);
        let sgr = ExplicitSgr::new(&g);
        let via_iter: Vec<_> = EnumMis::upon_generation(&sgr).collect();

        let mut frontier = Frontier::new(&sgr, PrintMode::UponGeneration);
        let mut manual = Vec::new();
        loop {
            while !frontier.has_emissions() && !frontier.is_complete() {
                let batch = frontier.drain_pending();
                let results = batch.iter().map(|p| p.evaluate(&&sgr)).collect();
                frontier.absorb(results);
            }
            match frontier.pop_emission() {
                Some(a) => manual.push(a),
                None => break,
            }
        }
        assert_eq!(via_iter, manual);
    }
}

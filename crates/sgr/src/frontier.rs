//! The `EnumMIS` schedule as a reusable state machine.
//!
//! [`Frontier`] owns every piece of bookkeeping Figure 1 of the paper
//! needs — the queue `Q` of unprocessed answers, the processed list `P`,
//! the seen-set `Q ∪ P`, the generated node list `V`, node-pulling when
//! the queue runs dry, revisiting processed answers in the direction of a
//! newly pulled node, and the `UponGeneration` / `UponPop` printing split
//! of Section 3.2.2 — but performs **no** `Extend` or edge-oracle calls
//! itself. Instead it advances in explicit batches:
//!
//! 1. [`Frontier::drain_pending`] moves the schedule to its next step and
//!    returns that step's independent [`ExtendPair`]s (all directions of
//!    one popped answer, or one fresh node against every processed
//!    answer);
//! 2. the caller evaluates each pair — inline via [`ExtendPair::evaluate`]
//!    (the sequential [`EnumMis`](crate::EnumMis) iterator) or fanned out
//!    over a thread pool (the engine's deterministic parallel driver);
//! 3. [`Frontier::absorb`] feeds the results back **in batch order**,
//!    which is what keeps every consumer's emission order identical to
//!    the sequential algorithm.
//!
//! Because the schedule itself lives here once, the sequential iterator
//! and any parallel driver cannot drift apart: they differ only in *where*
//! the pure `Extend` calls run.

use crate::Sgr;
use mintri_graph::FxHashSet;
use std::collections::VecDeque;
use std::sync::Arc;

/// When answers become visible to the consumer; see the docs of
/// [`EnumMis`](crate::EnumMis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrintMode {
    /// Print as soon as an answer is generated (`EnumMIS`, lines 2/14/23).
    #[default]
    UponGeneration,
    /// Print when an answer is popped from the queue (`EnumMISHold`).
    UponPop,
}

/// Running counters, exposed for the benchmark harness and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumMisStats {
    /// Calls to the SGR `extend` operation.
    pub extend_calls: usize,
    /// Calls to the SGR `edge` oracle.
    pub edge_queries: usize,
    /// Nodes pulled from the SGR node iterator so far (`|V|`).
    pub nodes_generated: usize,
    /// Answers produced so far.
    pub answers: usize,
}

/// One independent unit of `EnumMIS` work: extend the processed answer
/// `J` in the direction of node `v` (`Jv = {v} ∪ {u ∈ J | ¬A_E(v, u)}`,
/// then `Extend`). The bootstrap `Extend(∅)` call is the pair with an
/// empty answer and no direction.
#[derive(Debug, Clone)]
pub struct ExtendPair<N> {
    /// `J` — a processed answer, sorted (empty for the bootstrap call).
    pub answer: Arc<Vec<N>>,
    /// `v` — the direction node; `None` for the bootstrap call.
    pub direction: Option<N>,
}

impl<N: Clone + Ord> ExtendPair<N> {
    /// Evaluates this pair against `sgr`: `None` when `v ∈ J` (the
    /// extension would reproduce `J` itself, lines 11/20 skip it),
    /// otherwise the maximal independent set `Extend(Jv)`.
    ///
    /// Pure in the SGR: safe to run on any thread holding (a clone of)
    /// the SGR, which is exactly how the parallel driver uses it.
    pub fn evaluate<S: Sgr<Node = N>>(&self, sgr: &S) -> Option<Vec<N>> {
        let Some(v) = &self.direction else {
            return Some(sgr.extend(&self.answer));
        };
        if self.answer.binary_search(v).is_ok() {
            return None;
        }
        let mut jv = Vec::with_capacity(self.answer.len() + 1);
        jv.push(v.clone());
        for u in self.answer.iter() {
            if !sgr.edge(v, u) {
                jv.push(u.clone());
            }
        }
        let k = sgr.extend(&jv);
        debug_assert!(
            jv.iter().all(|u| k.contains(u)),
            "Extend must return a superset of its input"
        );
        Some(k)
    }

    /// [`ExtendPair::evaluate`] through a reusable [`EvalScratch`]:
    /// returns `true` iff the pair produced an extension, which is then
    /// in `ws.out`. Identical decisions and identical result contents —
    /// only the allocations differ (none, once the scratch is warm and
    /// the SGR kernel is too).
    pub fn evaluate_with<S: Sgr<Node = N>>(&self, sgr: &S, ws: &mut EvalScratch<S>) -> bool {
        let Some(v) = &self.direction else {
            sgr.extend_with(&self.answer, &mut ws.out, &mut ws.sgr);
            return true;
        };
        if self.answer.binary_search(v).is_ok() {
            return false;
        }
        ws.jv.clear();
        ws.jv.push(v.clone());
        for u in self.answer.iter() {
            if !sgr.edge_with(v, u, &mut ws.sgr) {
                ws.jv.push(u.clone());
            }
        }
        sgr.extend_with(&ws.jv, &mut ws.out, &mut ws.sgr);
        debug_assert!(
            ws.jv.iter().all(|u| ws.out.contains(u)),
            "Extend must return a superset of its input"
        );
        true
    }
}

/// Per-worker evaluation workspace for [`ExtendPair::evaluate_with`]: the
/// SGR's own kernel scratch plus the `Jv` and result buffers. One per
/// engine worker or sequential stream, never shared — with a warm
/// workspace (and an SGR kernel behind it) a steady-state evaluation
/// performs zero heap allocations.
pub struct EvalScratch<S: Sgr> {
    /// The SGR-specific kernel scratch, forwarded to
    /// [`Sgr::edge_with`] / [`Sgr::extend_with`].
    pub sgr: S::Scratch,
    /// `Jv` under construction.
    jv: Vec<S::Node>,
    /// The extension produced by the last [`ExtendPair::evaluate_with`]
    /// that returned `true`.
    pub out: Vec<S::Node>,
}

impl<S: Sgr> Default for EvalScratch<S> {
    fn default() -> Self {
        EvalScratch {
            sgr: S::Scratch::default(),
            jv: Vec::new(),
            out: Vec::new(),
        }
    }
}

/// The shared `EnumMIS` schedule (see the module docs). Drive it with:
///
/// ```text
/// while !frontier.has_emissions() && !frontier.is_complete() {
///     let batch = frontier.drain_pending();
///     let results = …evaluate each pair, preserving order…;
///     frontier.absorb(results);
/// }
/// frontier.pop_emission()
/// ```
pub struct Frontier<S: Sgr> {
    sgr: S,
    mode: PrintMode,
    cursor: S::NodeCursor,
    node_iter_done: bool,
    /// `V`: the SGR nodes generated so far.
    nodes: Vec<S::Node>,
    /// `Q`: answers generated but not yet processed.
    queue: VecDeque<Arc<Vec<S::Node>>>,
    /// `P`: processed answers.
    processed: Vec<Arc<Vec<S::Node>>>,
    /// Membership structure for `Q ∪ P` (answers ever created).
    seen: FxHashSet<Arc<Vec<S::Node>>>,
    /// Answers awaiting emission to the consumer.
    pending: VecDeque<Vec<S::Node>>,
    /// `|J|` of each pair handed out by the last `drain_pending`,
    /// awaiting `absorb`/`absorb_one` — all absorption needs for its
    /// one-to-one check and edge-query accounting, so the pairs
    /// themselves are not retained. A deque so `absorb_one` can consume
    /// the batch front-to-back incrementally.
    in_flight: VecDeque<usize>,
    started: bool,
    complete: bool,
    stats: EnumMisStats,
}

impl<S: Sgr> Frontier<S> {
    /// Starts a schedule over `sgr` in the given print mode.
    pub fn new(sgr: S, mode: PrintMode) -> Self {
        let cursor = sgr.start_nodes();
        Frontier {
            sgr,
            mode,
            cursor,
            node_iter_done: false,
            nodes: Vec::new(),
            queue: VecDeque::new(),
            processed: Vec::new(),
            seen: FxHashSet::default(),
            pending: VecDeque::new(),
            in_flight: VecDeque::new(),
            started: false,
            complete: false,
            stats: EnumMisStats::default(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> EnumMisStats {
        self.stats
    }

    /// The wrapped SGR.
    pub fn sgr(&self) -> &S {
        &self.sgr
    }

    /// `true` once the schedule is exhausted: the queue is dry and the
    /// node iterator is done. Emissions may still be pending.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// `true` while answers await [`Frontier::pop_emission`].
    pub fn has_emissions(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Pops the next answer in emission order.
    pub fn pop_emission(&mut self) -> Option<Vec<S::Node>> {
        self.pending.pop_front()
    }

    /// Advances the schedule to its next step and returns that step's
    /// batch of independent extend calls (lines 8–15 on a popped answer,
    /// lines 16–24 on a freshly pulled node). An empty batch means the
    /// step produced emissions without extend work, or the schedule is
    /// complete — re-check [`Frontier::has_emissions`] /
    /// [`Frontier::is_complete`] and loop.
    ///
    /// Every returned batch must be answered by exactly one
    /// [`Frontier::absorb`] call before the next `drain_pending`.
    pub fn drain_pending(&mut self) -> Vec<ExtendPair<S::Node>> {
        assert!(
            self.in_flight.is_empty(),
            "drain_pending called with a batch still in flight; absorb it first"
        );
        if self.complete {
            return Vec::new();
        }
        if !self.started {
            // lines 1–3: bootstrap with Extend(∅)
            self.started = true;
            return self.hand_out(vec![ExtendPair {
                answer: Arc::new(Vec::new()),
                direction: None,
            }]);
        }
        loop {
            if let Some(j) = self.queue.pop_front() {
                // lines 8–15: process J in the direction of every known node
                if self.mode == PrintMode::UponPop {
                    self.pending.push_back((*j).clone());
                    self.stats.answers += 1;
                }
                self.processed.push(Arc::clone(&j));
                let batch: Vec<ExtendPair<S::Node>> = self
                    .nodes
                    .iter()
                    .map(|v| ExtendPair {
                        answer: Arc::clone(&j),
                        direction: Some(v.clone()),
                    })
                    .collect();
                if batch.is_empty() && self.pending.is_empty() {
                    continue; // nothing to extend toward yet; keep popping
                }
                return self.hand_out(batch);
            }
            // lines 16–24: queue is dry — pull the next node
            if self.node_iter_done {
                self.complete = true;
                return Vec::new();
            }
            match self.sgr.next_node(&mut self.cursor) {
                None => {
                    self.node_iter_done = true;
                    self.complete = true;
                    return Vec::new();
                }
                Some(v) => {
                    self.nodes.push(v.clone());
                    self.stats.nodes_generated += 1;
                    let batch: Vec<ExtendPair<S::Node>> = self
                        .processed
                        .iter()
                        .map(|j| ExtendPair {
                            answer: Arc::clone(j),
                            direction: Some(v.clone()),
                        })
                        .collect();
                    if batch.is_empty() {
                        continue; // no processed answers yet (unreachable post-bootstrap)
                    }
                    return self.hand_out(batch);
                }
            }
        }
    }

    fn hand_out(&mut self, batch: Vec<ExtendPair<S::Node>>) -> Vec<ExtendPair<S::Node>> {
        self.in_flight = batch.iter().map(|pair| pair.answer.len()).collect();
        batch
    }

    /// Feeds back the results of the last drained batch, **in batch
    /// order** (`None` where `v ∈ J` skipped the call). Registers each
    /// new maximal independent set exactly once and counts the stats the
    /// evaluations imply: one `extend` per `Some`, plus its `|J|` edge
    /// queries.
    pub fn absorb(&mut self, results: Vec<Option<Vec<S::Node>>>) {
        assert_eq!(
            self.in_flight.len(),
            results.len(),
            "absorb must answer the drained batch one-to-one"
        );
        for result in results {
            let answer_len = self
                .in_flight
                .pop_front()
                .expect("in_flight length checked above");
            if let Some(answer) = result {
                self.stats.extend_calls += 1;
                self.stats.edge_queries += answer_len;
                self.offer(answer);
            }
        }
    }

    /// Feeds back **one** result of the drained batch, front-to-back in
    /// batch order — the incremental sibling of [`Frontier::absorb`].
    /// `None` where `v ∈ J` skipped the call; otherwise the caller's
    /// result buffer, which is sorted in place and copied only when the
    /// answer is genuinely new. Duplicate answers — the overwhelming
    /// majority in steady state — absorb without allocating.
    pub fn absorb_one(&mut self, result: Option<&mut Vec<S::Node>>) {
        let answer_len = self
            .in_flight
            .pop_front()
            .expect("absorb_one called with no drained pair in flight");
        if let Some(answer) = result {
            self.stats.extend_calls += 1;
            self.stats.edge_queries += answer_len;
            answer.sort_unstable();
            if self.seen.contains(answer as &Vec<S::Node>) {
                return;
            }
            self.register(Arc::new(answer.clone()));
        }
    }

    /// Canonicalizes and registers a freshly created answer; queues it
    /// and — in `UponGeneration` mode — emits it.
    fn offer(&mut self, mut answer: Vec<S::Node>) {
        answer.sort_unstable();
        if self.seen.contains(&answer) {
            return;
        }
        self.register(Arc::new(answer));
    }

    fn register(&mut self, answer: Arc<Vec<S::Node>>) {
        self.seen.insert(Arc::clone(&answer));
        if self.mode == PrintMode::UponGeneration {
            self.pending.push_back((*answer).clone());
            self.stats.answers += 1;
        }
        self.queue.push_back(answer);
    }
}

//! Brute-force maximal-independent-set enumeration — the oracle against
//! which `EnumMIS` is validated on small explicit graphs.

use mintri_graph::{Graph, Node, NodeSet};

/// All maximal independent sets of `g`, by exhaustive subset search.
/// Exponential; intended for `|V| ≤ ~16`.
pub fn all_maximal_independent_sets(g: &Graph) -> Vec<Vec<Node>> {
    let n = g.num_nodes();
    assert!(n <= 20, "brute-force MIS oracle is exponential");
    let mut out = Vec::new();
    for mask in 0u64..(1 << n) {
        let s = NodeSet::from_iter(n, (0..n as Node).filter(|&v| mask & (1 << v) != 0));
        if is_maximal_independent(g, &s) {
            out.push(s.to_vec());
        }
    }
    out.sort();
    out
}

/// `true` iff `s` is an independent set of `g` that cannot be grown.
pub fn is_maximal_independent(g: &Graph, s: &NodeSet) -> bool {
    // independence
    for u in s.iter() {
        if g.neighbors(u).intersects(s) {
            return false;
        }
    }
    // maximality: every outside node has a neighbor inside
    for v in g.nodes() {
        if !s.contains(v) && !g.neighbors(v).intersects(s) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EnumMis, ExplicitSgr, PrintMode};

    #[test]
    fn oracle_counts_on_known_graphs() {
        assert_eq!(all_maximal_independent_sets(&Graph::cycle(5)).len(), 5);
        assert_eq!(all_maximal_independent_sets(&Graph::complete(6)).len(), 6);
        assert_eq!(all_maximal_independent_sets(&Graph::new(3)).len(), 1);
        // MIS counts of paths follow the Padovan-like recurrence: P4 -> 3
        assert_eq!(all_maximal_independent_sets(&Graph::path(4)).len(), 3);
    }

    #[test]
    fn enum_mis_matches_oracle_on_a_suite() {
        let graphs = vec![
            Graph::cycle(4),
            Graph::cycle(7),
            Graph::path(6),
            Graph::complete(5),
            Graph::new(4),
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]),
            Graph::from_edges(
                8,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (7, 4),
                    (0, 4),
                    (2, 6),
                ],
            ),
        ];
        for g in graphs {
            let sgr = ExplicitSgr::new(&g);
            let mut fast: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
            fast.sort();
            assert_eq!(fast, all_maximal_independent_sets(&g), "mismatch on {g:?}");
        }
    }
}

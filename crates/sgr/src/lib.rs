//! # mintri-sgr — succinct graph representations and `EnumMIS`
//!
//! Section 3 of the paper: a *Succinct Graph Representation* (SGR) describes
//! a possibly-exponential graph `G(x)` through two algorithms — a
//! polynomial-delay node enumerator `A_V` and a polynomial-time edge oracle
//! `A_E` (Definition 1). When the SGR additionally has a *tractable
//! expansion* (Definition 2: independent sets have polynomial size, and an
//! independent set can be grown by one node in polynomial time), the
//! algorithm [`EnumMis`] (Figure 1) enumerates all maximal independent sets
//! of `G(x)` in **incremental polynomial time** (Theorem 3.1).
//!
//! The crate also ships:
//!
//! * [`ExplicitSgr`] — wraps an ordinary in-memory graph as an SGR (used to
//!   cross-validate `EnumMIS` against brute force);
//! * [`SethSgr`] — the `k`-SAT gadget of Proposition 3.6 showing that
//!   *polynomial delay* (rather than incremental polynomial time) is
//!   impossible for SGR maximal-independent-set enumeration under SETH;
//! * [`bruteforce::all_maximal_independent_sets`] — the test oracle.
//!
//! ```
//! use mintri_graph::Graph;
//! use mintri_sgr::{EnumMis, ExplicitSgr, PrintMode};
//!
//! // C5 has five maximal independent sets, all of size 2
//! let g = Graph::cycle(5);
//! let sgr = ExplicitSgr::new(&g);
//! let answers: Vec<_> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
//! assert_eq!(answers.len(), 5);
//! assert!(answers.iter().all(|a| a.len() == 2));
//! ```

mod enum_mis;
mod explicit;
mod frontier;
mod seth;

pub mod bruteforce;

pub use enum_mis::EnumMis;
pub use explicit::ExplicitSgr;
pub use frontier::{EnumMisStats, EvalScratch, ExtendPair, Frontier, PrintMode};
pub use seth::{CnfFormula, SethNode, SethSgr};

use std::hash::Hash;

/// A succinct graph representation (Definition 1) with tractable expansion
/// (Definition 2).
///
/// Implementations promise that:
///
/// 1. [`Sgr::nodes`] enumerates every node of `G(x)` exactly once, with
///    polynomial delay;
/// 2. [`Sgr::edge`] decides adjacency in polynomial time;
/// 3. every independent set of `G(x)` has size polynomial in `|x|`;
/// 4. [`Sgr::extend`] grows an independent set into a maximal independent
///    set containing it, in polynomial time.
pub trait Sgr {
    /// Nodes of the represented graph. Answers are sorted vectors of these.
    type Node: Clone + Eq + Ord + Hash;

    /// The resumable state of the node enumerator `A_V`. Keeping the cursor
    /// external to the SGR lets `EnumMis` own both without self-reference.
    type NodeCursor;

    /// Per-worker scratch space for [`Sgr::edge_with`] / [`Sgr::extend_with`].
    /// SGRs without a scratch kernel use `()`; the defaults then delegate
    /// to the plain operations. Never shared between workers, so `Send`
    /// (to move into worker threads) suffices — no `Sync`.
    type Scratch: Default + Send;

    /// Starts the node enumerator `A_V`.
    fn start_nodes(&self) -> Self::NodeCursor;

    /// Advances `A_V`: produces the next node of `G(x)`, or `None` when all
    /// nodes have been enumerated. Every node appears exactly once, with
    /// polynomial delay.
    fn next_node(&self, cursor: &mut Self::NodeCursor) -> Option<Self::Node>;

    /// The edge oracle `A_E`: `true` iff `{u, v} ∈ E(G(x))`.
    fn edge(&self, u: &Self::Node, v: &Self::Node) -> bool;

    /// Extends the independent set `base` into a maximal independent set
    /// containing it. `base` is guaranteed independent.
    fn extend(&self, base: &[Self::Node]) -> Vec<Self::Node>;

    /// [`Sgr::edge`] through a reusable scratch space. Must return exactly
    /// what `edge` would; the default ignores the scratch and delegates.
    fn edge_with(&self, u: &Self::Node, v: &Self::Node, scratch: &mut Self::Scratch) -> bool {
        let _ = scratch;
        self.edge(u, v)
    }

    /// [`Sgr::extend`] writing into a caller-supplied buffer through a
    /// reusable scratch space. Must produce exactly the nodes `extend`
    /// would, in the same order; the default delegates and copies.
    fn extend_with(
        &self,
        base: &[Self::Node],
        out: &mut Vec<Self::Node>,
        scratch: &mut Self::Scratch,
    ) {
        let _ = scratch;
        out.clear();
        out.extend(self.extend(base));
    }

    /// Convenience: the nodes of `G(x)` as an iterator (collecting cursor
    /// plumbing). Primarily for tests and small SGRs.
    fn nodes(&self) -> SgrNodeIter<'_, Self>
    where
        Self: Sized,
    {
        SgrNodeIter {
            sgr: self,
            cursor: self.start_nodes(),
        }
    }
}

/// Iterator adapter over [`Sgr::start_nodes`] / [`Sgr::next_node`].
pub struct SgrNodeIter<'a, S: Sgr> {
    sgr: &'a S,
    cursor: S::NodeCursor,
}

impl<S: Sgr> Iterator for SgrNodeIter<'_, S> {
    type Item = S::Node;

    fn next(&mut self) -> Option<S::Node> {
        self.sgr.next_node(&mut self.cursor)
    }
}

impl<S: Sgr> Sgr for &S {
    type Node = S::Node;
    type NodeCursor = S::NodeCursor;
    type Scratch = S::Scratch;

    fn start_nodes(&self) -> Self::NodeCursor {
        (**self).start_nodes()
    }

    fn next_node(&self, cursor: &mut Self::NodeCursor) -> Option<Self::Node> {
        (**self).next_node(cursor)
    }

    fn edge(&self, u: &Self::Node, v: &Self::Node) -> bool {
        (**self).edge(u, v)
    }

    fn extend(&self, base: &[Self::Node]) -> Vec<Self::Node> {
        (**self).extend(base)
    }

    fn edge_with(&self, u: &Self::Node, v: &Self::Node, scratch: &mut Self::Scratch) -> bool {
        (**self).edge_with(u, v, scratch)
    }

    fn extend_with(
        &self,
        base: &[Self::Node],
        out: &mut Vec<Self::Node>,
        scratch: &mut Self::Scratch,
    ) {
        (**self).extend_with(base, out, scratch)
    }
}

/// A shared SGR is an SGR: lets owners of an `Arc`'d representation (the
/// engine's cached `Arc<MsGraph>` sessions) run [`EnumMis`] / [`Frontier`]
/// directly over it, with no borrow tying the enumeration to a stack
/// frame and no newtype wrapper.
impl<S: Sgr> Sgr for std::sync::Arc<S> {
    type Node = S::Node;
    type NodeCursor = S::NodeCursor;
    type Scratch = S::Scratch;

    fn start_nodes(&self) -> Self::NodeCursor {
        (**self).start_nodes()
    }

    fn next_node(&self, cursor: &mut Self::NodeCursor) -> Option<Self::Node> {
        (**self).next_node(cursor)
    }

    fn edge(&self, u: &Self::Node, v: &Self::Node) -> bool {
        (**self).edge(u, v)
    }

    fn extend(&self, base: &[Self::Node]) -> Vec<Self::Node> {
        (**self).extend(base)
    }

    fn edge_with(&self, u: &Self::Node, v: &Self::Node, scratch: &mut Self::Scratch) -> bool {
        (**self).edge_with(u, v, scratch)
    }

    fn extend_with(
        &self,
        base: &[Self::Node],
        out: &mut Vec<Self::Node>,
        scratch: &mut Self::Scratch,
    ) {
        (**self).extend_with(base, out, scratch)
    }
}

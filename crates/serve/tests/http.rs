//! End-to-end transport tests over real sockets: boot a [`Server`] on a
//! free port, drive it with the crate's own minimal client, and pin the
//! serving contract — upload/query/replay, batch, streaming, timeouts,
//! and (the satellite fix) structured 4xx answers for malformed input
//! with no worker ever panicking or wedging the server.

use mintri_core::json::{graph_to_json, JsonValue};
use mintri_engine::Engine;
use mintri_graph::Graph;
use mintri_serve::client::{request, Client};
use mintri_serve::http::Limits;
use mintri_serve::{ServeConfig, Server, ServerHandle};
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

struct TestServer {
    handle: ServerHandle,
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn boot(config: ServeConfig) -> TestServer {
        TestServer::boot_with(config, Arc::new(Engine::new()))
    }

    fn boot_with(mut config: ServeConfig, engine: Arc<Engine>) -> TestServer {
        config.addr = "127.0.0.1:0".into();
        // Keeps worker drain quick when a test leaves a connection open.
        config.read_timeout = Duration::from_millis(500);
        let server = Server::bind(config, engine).expect("bind");
        let addr = server.local_addr().expect("local_addr");
        let handle = server.handle().expect("handle");
        let thread = std::thread::spawn(move || server.run().expect("run"));
        TestServer {
            handle,
            addr,
            thread: Some(thread),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn parse(body: &str) -> JsonValue {
    JsonValue::parse(body).unwrap_or_else(|e| panic!("unparseable body {body:?}: {e}"))
}

#[test]
fn healthz_and_stats_answer() {
    let server = TestServer::boot(ServeConfig::default());
    let health = request(server.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(
        parse(&health.body).get("status").unwrap().as_str(),
        Some("ok")
    );

    let stats = request(server.addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(stats.status, 200);
    let doc = parse(&stats.body);
    assert_eq!(doc.get("sessions").unwrap().as_usize(), Some(0));
    assert_eq!(doc.get("graphs").unwrap().as_usize(), Some(0));
    assert!(doc.get("memo").unwrap().get("extends").is_some());
}

#[test]
fn upload_then_query_then_replay_over_one_connection() {
    let server = TestServer::boot(ServeConfig::default());
    let mut client = Client::connect(server.addr).unwrap();

    let upload = client
        .request("POST", "/v1/graphs", Some(&graph_to_json(&Graph::cycle(6))))
        .unwrap();
    assert_eq!(upload.status, 200, "{}", upload.body);
    let graph_id = parse(&upload.body)
        .get("graph_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    let spec = format!(r#"{{"graph_id":"{graph_id}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let cold = client.request("POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_doc = parse(&cold.body);
    assert_eq!(cold_doc.get("count").unwrap().as_usize(), Some(14));
    assert_eq!(cold_doc.get("is_replay").unwrap().as_bool(), Some(false));
    assert_eq!(
        cold_doc
            .get("outcome")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_bool(),
        Some(true)
    );

    // The same query again: served from the warm session's answer cache.
    let warm = client.request("POST", "/v1/query", Some(&spec)).unwrap();
    let warm_doc = parse(&warm.body);
    assert_eq!(warm_doc.get("count").unwrap().as_usize(), Some(14));
    assert_eq!(
        warm_doc.get("is_replay").unwrap().as_bool(),
        Some(true),
        "second identical query must replay: {}",
        warm.body
    );

    // And the whole exchange left exactly the atom sessions behind.
    let stats = client.request("GET", "/v1/stats", None).unwrap();
    let stats_doc = parse(&stats.body);
    assert!(stats_doc.get("sessions").unwrap().as_usize().unwrap() >= 1);
    assert_eq!(stats_doc.get("graphs").unwrap().as_usize(), Some(1));
    drop(client);
}

#[test]
fn best_k_and_inline_graphs_work() {
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(7));
    let spec =
        format!(r#"{{"graph":{g},"query":{{"task":{{"type":"best_k","k":3,"cost":"fill"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = parse(&resp.body);
    let items = doc.get("items").unwrap().as_array().unwrap();
    assert_eq!(items.len(), 3);
    for item in items {
        assert_eq!(item.get("fill").unwrap().as_usize(), Some(4));
        assert!(item.get("fill_edges").unwrap().as_array().unwrap().len() == 4);
    }
}

#[test]
fn decompose_and_stats_tasks_serve() {
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(6));
    let spec = format!(
        r#"{{"graph":{g},"query":{{"task":{{"type":"decompose","mode":"one_per_class"}}}}}}"#
    );
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    let doc = parse(&resp.body);
    assert_eq!(doc.get("count").unwrap().as_usize(), Some(14));
    assert!(doc.get("items").unwrap().as_array().unwrap()[0]
        .get("bags")
        .is_some());

    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"stats"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    let doc = parse(&resp.body);
    assert_eq!(doc.get("count").unwrap().as_usize(), Some(14));
    assert!(
        !doc.get("outcome")
            .unwrap()
            .get("quality")
            .unwrap()
            .is_null(),
        "stats queries carry quality aggregates"
    );
}

#[test]
fn batch_runs_many_queries_and_isolates_bad_specs() {
    let server = TestServer::boot(ServeConfig::default());
    let g6 = graph_to_json(&Graph::cycle(6));
    let g7 = graph_to_json(&Graph::cycle(7));
    let body = format!(
        r#"{{"queries":[
            {{"graph":{g6},"query":{{"task":{{"type":"enumerate"}}}}}},
            {{"graph":{g7},"query":{{"task":{{"type":"best_k","k":2,"cost":"width"}}}}}},
            {{"graph_id":"gdeadbeef","query":{{"task":{{"type":"enumerate"}}}}}},
            {{"graph":{g6},"stream":true,"query":{{"task":{{"type":"enumerate"}}}}}}
        ]}}"#
    );
    let resp = request(server.addr, "POST", "/v1/batch", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let doc = parse(&resp.body);
    let responses = doc.get("responses").unwrap().as_array().unwrap();
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[0].get("count").unwrap().as_usize(), Some(14));
    assert_eq!(responses[1].get("count").unwrap().as_usize(), Some(2));
    assert_eq!(
        responses[2]
            .get("error")
            .unwrap()
            .get("status")
            .unwrap()
            .as_usize(),
        Some(404),
        "a bad spec fails its slot, not the batch"
    );
    assert_eq!(
        responses[3]
            .get("error")
            .unwrap()
            .get("status")
            .unwrap()
            .as_usize(),
        Some(400),
        "a streamed spec is rejected, not silently collected"
    );
}

#[test]
fn streamed_queries_arrive_as_ndjson_chunks() {
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(6));
    let spec =
        format!(r#"{{"graph":{g},"stream":true,"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200);
    let lines: Vec<&str> = resp.body.lines().collect();
    assert_eq!(lines.len(), 15, "14 items + the done line: {}", resp.body);
    for line in &lines[..14] {
        assert!(parse(line).get("item").is_some(), "{line}");
    }
    let done = parse(lines[14]);
    let done = done.get("done").unwrap();
    assert_eq!(
        done.get("count").unwrap().as_usize(),
        Some(14),
        "the done line counts the streamed items"
    );
    assert_eq!(
        done.get("outcome")
            .unwrap()
            .get("produced")
            .unwrap()
            .as_usize(),
        Some(14)
    );
}

#[test]
fn per_request_timeouts_cancel_via_the_token() {
    let server = TestServer::boot(ServeConfig::default());
    // C16 enumerates millions of triangulations; a 20 ms deadline must
    // cut the scan off mid-stream, not hang the request.
    let g = graph_to_json(&Graph::cycle(16));
    let spec =
        format!(r#"{{"graph":{g},"timeout_ms":20,"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let outcome_cancelled = parse(&resp.body)
        .get("outcome")
        .unwrap()
        .get("cancelled")
        .unwrap()
        .as_bool();
    assert_eq!(outcome_cancelled, Some(true), "{}", resp.body);
}

// ---------------------------------------------------------------------------
// Malformed input: structured 4xx, never a worker panic, server survives
// ---------------------------------------------------------------------------

fn assert_error(body: &str, status: usize) {
    let doc = parse(body);
    assert_eq!(
        doc.get("error").unwrap().get("status").unwrap().as_usize(),
        Some(status),
        "{body}"
    );
}

#[test]
fn malformed_requests_get_structured_400s_and_the_server_survives() {
    let server = TestServer::boot(ServeConfig::default());

    // Garbage instead of HTTP.
    let resp = Client::connect(server.addr)
        .unwrap()
        .send_raw(b"ENUMERATE ALL THE THINGS\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert_error(&resp.body, 400);

    // Truncated head: the client dies mid-request-line.
    {
        let mut raw = TcpStream::connect(server.addr).unwrap();
        raw.write_all(b"POST /v1/que").unwrap();
        raw.shutdown(std::net::Shutdown::Write).unwrap();
        // Server answers 400 (or just closes); it must not crash.
    }

    // Truncated body: Content-Length promises more than arrives.
    let resp = Client::connect(server.addr)
        .unwrap()
        .send_raw(b"POST /v1/query HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"partial\":")
        .unwrap();
    assert_eq!(resp.status, 408, "read timeout on the missing bytes");

    // Invalid JSON.
    let resp = request(server.addr, "POST", "/v1/query", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    assert_error(&resp.body, 400);

    // Unknown task variant.
    let g = graph_to_json(&Graph::cycle(4));
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"hack_the_planet"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("unknown task type"), "{}", resp.body);

    // Bad routes and methods.
    let resp = request(server.addr, "GET", "/v2/everything", None).unwrap();
    assert_eq!(resp.status, 404);
    assert_error(&resp.body, 404);
    let resp = request(server.addr, "DELETE", "/v1/query", None).unwrap();
    assert_eq!(resp.status, 405);

    // Malformed graph uploads.
    for bad in [
        r#"{"nodes":3,"edges":[[0,9]]}"#,
        r#"{"nodes":99999999,"edges":[]}"#,
        r#"{"nodes":"three","edges":[]}"#,
    ] {
        let resp = request(server.addr, "POST", "/v1/graphs", Some(bad)).unwrap();
        assert_eq!(resp.status, 400, "{bad} -> {}", resp.body);
        assert_error(&resp.body, 400);
    }

    // After all that abuse, a clean request still serves.
    let resp = request(server.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(parse(&resp.body).get("count").unwrap().as_usize(), Some(2));
}

#[test]
fn collected_queries_are_budget_capped_but_streams_are_not() {
    use mintri_serve::api::ApiLimits;
    let server = TestServer::boot(ServeConfig {
        api: ApiLimits {
            max_collected_results: 10,
            ..ApiLimits::default()
        },
        ..ServeConfig::default()
    });
    let g = graph_to_json(&Graph::cycle(6)); // 14 triangulations

    // Collected: an unbudgeted exponential enumeration cannot buffer
    // unboundedly — the server imposes its cap and reports truncation.
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let doc = parse(
        &request(server.addr, "POST", "/v1/query", Some(&spec))
            .unwrap()
            .body,
    );
    assert_eq!(doc.get("count").unwrap().as_usize(), Some(10));
    assert_eq!(
        doc.get("outcome")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_bool(),
        Some(false),
        "a capped run must report truncation"
    );
    // A tighter client budget still wins.
    let spec = format!(
        r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}},"budget":{{"max_results":3}}}}}}"#
    );
    let doc = parse(
        &request(server.addr, "POST", "/v1/query", Some(&spec))
            .unwrap()
            .body,
    );
    assert_eq!(doc.get("count").unwrap().as_usize(), Some(3));

    // Streaming is O(1) memory and stays uncapped: all 14 items arrive.
    let spec =
        format!(r#"{{"graph":{g},"stream":true,"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(
        resp.body.lines().count(),
        15,
        "14 items + done: {}",
        resp.body
    );
}

#[test]
fn http10_requests_default_to_connection_close() {
    let server = TestServer::boot(ServeConfig::default());
    let resp = Client::connect(server.addr)
        .unwrap()
        .send_raw(b"GET /healthz HTTP/1.0\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("connection"),
        Some("close"),
        "an HTTP/1.0 client without keep-alive must not pin a worker"
    );
}

#[test]
fn oversized_bodies_are_rejected_by_the_cap() {
    let config = ServeConfig {
        limits: Limits {
            max_body_bytes: 1024,
            ..Limits::default()
        },
        ..ServeConfig::default()
    };
    let server = TestServer::boot(config);

    // Declared oversize: rejected from the Content-Length alone — the
    // server never reads (or allocates) the body.
    let resp = Client::connect(server.addr)
        .unwrap()
        .send_raw(b"POST /v1/graphs HTTP/1.1\r\nContent-Length: 1000000000\r\n\r\n")
        .unwrap();
    assert_eq!(resp.status, 413);
    assert_error(&resp.body, 413);

    // An actually-oversized body hits the same wall.
    let big = format!(
        r#"{{"nodes":2,"edges":[[0,1]],"padding":"{}"}}"#,
        "x".repeat(2048)
    );
    let resp = request(server.addr, "POST", "/v1/graphs", Some(&big)).unwrap();
    assert_eq!(resp.status, 413);

    // A request head past its cap is refused too.
    let mut head = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..2000 {
        head.push_str(&format!("X-Padding-{i}: {}\r\n", "y".repeat(64)));
    }
    head.push_str("\r\n");
    let resp = Client::connect(server.addr)
        .unwrap()
        .send_raw(head.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 431);

    // And the server is still healthy.
    let resp = request(server.addr, "GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);
}

#[test]
fn metrics_endpoint_serves_prometheus_text_and_counters_advance() {
    use mintri_telemetry::promtext;
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(6));
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let _ = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    let _ = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();

    let resp = request(server.addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(resp.status, 200);
    assert!(
        resp.header("content-type")
            .unwrap_or("")
            .starts_with("text/plain"),
        "metrics are text exposition, not JSON"
    );
    // The document is valid Prometheus text: every line parses.
    let samples = promtext::parse(&resp.body)
        .unwrap_or_else(|e| panic!("metrics must parse as Prometheus text: {e}\n{}", resp.body));

    let value = |name: &str, label: Option<(&str, &str)>| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
            .map(|s| s.value)
    };
    // Per-endpoint counter advanced (two /v1/query requests).
    assert_eq!(
        value(
            "mintri_http_requests_total",
            Some(("endpoint", "/v1/query"))
        ),
        Some(2.0)
    );
    // Per-endpoint latency histogram is present with buckets.
    assert!(samples.iter().any(|s| {
        s.name == "mintri_http_request_microseconds_bucket"
            && s.label("endpoint") == Some("/v1/query")
    }));
    // Engine counters crossed the registry: the repeat query replayed.
    assert!(value("mintri_engine_replay_hits_total", None).unwrap() >= 1.0);
    assert!(value("mintri_engine_sessions_built_total", None).unwrap() >= 1.0);
    assert_eq!(value("mintri_engine_sessions_live", None).unwrap(), 1.0);
}

#[test]
fn traced_queries_return_a_span_tree() {
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(6));
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}},"trace":true}}}}"#);
    let _ = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    let warm = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    let doc = parse(&warm.body);
    let trace = doc
        .get("outcome")
        .unwrap()
        .get("trace")
        .expect("traced queries carry a trace in the outcome");
    let children = trace.get("children").unwrap().as_array().unwrap();
    let query_span = children
        .iter()
        .find(|c| c.get("name").unwrap().as_str() == Some("query"))
        .expect("query span");
    assert!(query_span.get("duration_us").unwrap().as_u64().is_some());
    let query_children = query_span.get("children").unwrap().as_array().unwrap();
    let atom = query_children
        .iter()
        .find(|c| c.get("name").unwrap().as_str() == Some("atom"))
        .expect("per-atom span");
    assert_eq!(
        atom.get("attrs").unwrap().get("dispatch").unwrap().as_str(),
        Some("replay"),
        "the warm query's atom must report replay dispatch"
    );
    assert_eq!(
        atom.get("attrs").unwrap().get("results").unwrap().as_str(),
        Some("14")
    );

    // An untraced query's outcome stays trace-free.
    let plain = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&plain)).unwrap();
    assert!(parse(&resp.body)
        .get("outcome")
        .unwrap()
        .get("trace")
        .is_none());
}

/// A unique scratch store root, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        static SEQ: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mintri-serve-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_engine(config: mintri_engine::StoreConfig) -> Arc<Engine> {
    use mintri_engine::{EngineConfig, Store};
    Arc::new(Engine::with_store(
        EngineConfig::default(),
        Arc::new(Store::open(config).expect("store opens")),
    ))
}

#[test]
fn a_full_graph_registry_ages_by_lru_instead_of_answering_503() {
    use mintri_serve::api::ApiLimits;
    let server = TestServer::boot(ServeConfig {
        api: ApiLimits {
            max_graphs: 1,
            ..ApiLimits::default()
        },
        ..ServeConfig::default()
    });
    let first = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(5))),
    )
    .unwrap();
    assert_eq!(first.status, 200);
    let first_id = parse(&first.body)
        .get("graph_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // A second upload past the cap is admitted — the LRU entry ages out
    // of RAM instead of the server turning clients away.
    let second = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(6))),
    )
    .unwrap();
    assert_eq!(
        second.status, 200,
        "no 503 on RAM pressure: {}",
        second.body
    );
    let stats = parse(&request(server.addr, "GET", "/v1/stats", None).unwrap().body);
    assert_eq!(stats.get("graphs").unwrap().as_usize(), Some(1));

    // With no disk tier behind the registry the aged-out id is gone…
    let spec = format!(r#"{{"graph_id":"{first_id}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let gone = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(gone.status, 404);

    // …but re-uploading answers the same fingerprint id again.
    let again = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(5))),
    )
    .unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(
        parse(&again.body).get("graph_id").unwrap().as_str(),
        Some(first_id.as_str())
    );
}

#[test]
fn an_aged_out_graph_rehydrates_from_the_store_on_its_next_query() {
    use mintri_serve::api::ApiLimits;
    let dir = ScratchDir::new("lru-rehydrate");
    let server = TestServer::boot_with(
        ServeConfig {
            api: ApiLimits {
                max_graphs: 1,
                ..ApiLimits::default()
            },
            ..ServeConfig::default()
        },
        store_engine(mintri_engine::StoreConfig::at(&dir.0)),
    );
    let first = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(6))),
    )
    .unwrap();
    assert_eq!(first.status, 200);
    let id = parse(&first.body)
        .get("graph_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    // Age the first upload out of RAM.
    let second = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(5))),
    )
    .unwrap();
    assert_eq!(second.status, 200);

    // The aged-out id still answers: the registry reloads it from disk.
    let spec = format!(r#"{{"graph_id":"{id}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(parse(&resp.body).get("count").unwrap().as_usize(), Some(14));
}

#[test]
fn a_graph_past_the_disk_budget_answers_structured_503_with_retry_after() {
    let dir = ScratchDir::new("disk-budget");
    let server = TestServer::boot_with(
        ServeConfig::default(),
        store_engine(mintri_engine::StoreConfig {
            // Below even the snapshot header: every upload exceeds it.
            max_disk_bytes: Some(16),
            ..mintri_engine::StoreConfig::at(&dir.0)
        }),
    );
    let full = request(
        server.addr,
        "POST",
        "/v1/graphs",
        Some(&graph_to_json(&Graph::cycle(6))),
    )
    .unwrap();
    assert_eq!(full.status, 503);
    assert_eq!(
        full.header("retry-after"),
        Some("1"),
        "a 503 must tell clients when to retry"
    );
    let error = parse(&full.body);
    let error = error.get("error").unwrap();
    assert_eq!(error.get("status").unwrap().as_usize(), Some(503));
    assert_eq!(error.get("budget_bytes").unwrap().as_usize(), Some(16));
    assert_eq!(error.get("stored_bytes").unwrap().as_usize(), Some(0));
}

#[test]
fn uploads_and_warm_answers_survive_a_server_restart() {
    let dir = ScratchDir::new("restart");
    let id = {
        let engine = store_engine(mintri_engine::StoreConfig::at(&dir.0));
        let server = TestServer::boot_with(ServeConfig::default(), Arc::clone(&engine));
        let uploaded = request(
            server.addr,
            "POST",
            "/v1/graphs",
            Some(&graph_to_json(&Graph::cycle(6))),
        )
        .unwrap();
        assert_eq!(uploaded.status, 200);
        let id = parse(&uploaded.body)
            .get("graph_id")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let spec = format!(r#"{{"graph_id":"{id}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
        let warm = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
        assert_eq!(warm.status, 200);
        // Barrier the write-behind queue so the snapshots are published
        // before the "restart".
        engine.store().unwrap().flush();
        id
    };
    // A brand-new server process over the same --store-dir.
    let server = TestServer::boot_with(
        ServeConfig::default(),
        store_engine(mintri_engine::StoreConfig::at(&dir.0)),
    );
    let spec = format!(r#"{{"graph_id":"{id}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200, "the uploaded id survives a restart");
    let doc = parse(&resp.body);
    assert_eq!(doc.get("count").unwrap().as_usize(), Some(14));
    assert_eq!(
        doc.get("is_replay").unwrap().as_bool(),
        Some(true),
        "the first repeat query after a restart replays from the disk tier"
    );
}

#[test]
fn slow_queries_land_in_the_stats_ring_buffer() {
    use mintri_serve::api::ApiLimits;
    // Threshold 0: every query is "slow", so the ring fills determinately.
    let server = TestServer::boot(ServeConfig {
        api: ApiLimits {
            slow_query_ms: 0,
            ..ApiLimits::default()
        },
        ..ServeConfig::default()
    });
    let g = graph_to_json(&Graph::cycle(7));
    let spec =
        format!(r#"{{"graph":{g},"query":{{"task":{{"type":"best_k","k":3,"cost":"fill"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200);

    let stats = parse(&request(server.addr, "GET", "/v1/stats", None).unwrap().body);
    assert_eq!(stats.get("slow_query_ms").unwrap().as_usize(), Some(0));
    let slow = stats.get("slow_queries").unwrap().as_array().unwrap();
    assert!(!slow.is_empty(), "threshold 0 must capture the query");
    let entry = slow
        .iter()
        .find(|e| e.get("task").unwrap().as_str() == Some("best_k"))
        .expect("the best_k query is logged");
    assert_eq!(entry.get("count").unwrap().as_usize(), Some(3));
    assert!(entry.get("elapsed_ms").unwrap().as_u64().is_some());

    // Per-endpoint request totals ride along in the same document.
    let requests = stats.get("requests").unwrap().as_array().unwrap();
    let query_total = requests
        .iter()
        .find(|r| r.get("endpoint").unwrap().as_str() == Some("/v1/query"))
        .and_then(|r| r.get("requests").unwrap().as_usize());
    assert_eq!(query_total, Some(1));
    let engine = stats.get("engine").unwrap();
    assert!(engine.get("replay_misses").unwrap().as_usize().unwrap() >= 1);
}

#[test]
fn warm_replay_shares_across_connections_and_graph_reuploads() {
    let server = TestServer::boot(ServeConfig::default());
    let g = graph_to_json(&Graph::cycle(7));

    // Upload twice: idempotent id.
    let a = request(server.addr, "POST", "/v1/graphs", Some(&g)).unwrap();
    let b = request(server.addr, "POST", "/v1/graphs", Some(&g)).unwrap();
    let id_a = parse(&a.body)
        .get("graph_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let id_b = parse(&b.body)
        .get("graph_id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(id_a, id_b, "equal graphs register under one id");

    // Query from one connection, replay from a different one.
    let spec = format!(r#"{{"graph_id":"{id_a}","query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let cold = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(
        parse(&cold.body).get("is_replay").unwrap().as_bool(),
        Some(false)
    );
    let warm = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(
        parse(&warm.body).get("is_replay").unwrap().as_bool(),
        Some(true),
        "the engine is shared: replay crosses connections"
    );
}

#[test]
fn stats_surface_the_learned_cost_profile() {
    let server = TestServer::boot(ServeConfig::default());
    // Cold server: the profile object is present and empty.
    let doc = parse(&request(server.addr, "GET", "/v1/stats", None).unwrap().body);
    let profile = doc
        .get("profile")
        .expect("stats must carry a profile object");
    assert_eq!(profile.get("entries").unwrap().as_usize(), Some(0));
    assert_eq!(profile.get("atoms").unwrap().as_array().unwrap().len(), 0);

    // One completed query teaches the profiler one (atom, backend) row.
    let g = graph_to_json(&Graph::cycle(6));
    let spec = format!(r#"{{"graph":{g},"query":{{"task":{{"type":"enumerate"}}}}}}"#);
    let resp = request(server.addr, "POST", "/v1/query", Some(&spec)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // The outcome now reports the actual per-atom dispatch.
    let dispatch = parse(&resp.body)
        .get("outcome")
        .unwrap()
        .get("dispatch")
        .expect("outcome must carry the dispatch array")
        .as_array()
        .unwrap()
        .len();
    assert_eq!(dispatch, 1);

    let doc = parse(&request(server.addr, "GET", "/v1/stats", None).unwrap().body);
    let profile = doc.get("profile").unwrap();
    assert_eq!(profile.get("entries").unwrap().as_usize(), Some(1));
    let atoms = profile.get("atoms").unwrap().as_array().unwrap();
    assert_eq!(atoms.len(), 1);
    let row = &atoms[0];
    assert_eq!(row.get("backend").unwrap().as_str(), Some("MCS_M"));
    assert_eq!(row.get("live_runs").unwrap().as_usize(), Some(1));
    assert_eq!(row.get("results_total").unwrap().as_usize(), Some(14));
    assert!(row.get("predicted_wall_us").is_some());
    assert!(row.get("fingerprint").unwrap().as_str().is_some());
}

//! A minimal HTTP/1.1 layer over `std::net` — just enough protocol for
//! the JSON transport: request parsing with hard limits, keep-alive,
//! fixed-length and chunked responses. Hand-rolled because the
//! environment is offline (no hyper/axum), the same way rand/proptest
//! are shimmed elsewhere in the workspace.
//!
//! Every parse failure maps to a *structured* [`HttpError`] (status +
//! message) that the connection loop renders as a JSON error body; no
//! input, however malformed or oversized, may panic a worker.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Hard limits on what one request may occupy.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line + headers, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the request body, in bytes (enforced against
    /// `Content-Length` before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased by the client per the RFC; matched
    /// verbatim).
    pub method: String,
    /// The request target, e.g. `/v1/query` (query strings are kept
    /// verbatim; the API has none).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// `true` for an `HTTP/1.0` request (whose default is to close the
    /// connection after the response).
    pub http10: bool,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the client asked to close the connection after this
    /// exchange: `Connection: close`, or an HTTP/1.0 request without an
    /// explicit `Connection: keep-alive`.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http10,
        }
    }
}

/// A protocol-level failure: the HTTP status to answer with, and a
/// message for the structured JSON error body.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// Human-readable cause, embedded in the JSON error document.
    pub message: String,
    /// Extra numeric fields merged into the error document — e.g. a
    /// 503's `capacity`/`stored` pair, so clients can react to the cause
    /// without parsing the message string.
    pub detail: Vec<(&'static str, u64)>,
    /// Seconds for a `Retry-After` response header, when the condition
    /// is transient (503s).
    pub retry_after: Option<u64>,
}

impl HttpError {
    /// A client error with the given status.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
            detail: Vec::new(),
            retry_after: None,
        }
    }

    /// 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }

    /// Adds a structured numeric field to the error document.
    pub fn detail(mut self, key: &'static str, value: u64) -> Self {
        self.detail.push((key, value));
        self
    }

    /// Sets the `Retry-After` header on the response.
    pub fn retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }
}

/// The canonical reason phrase for the statuses this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request off the stream. `Ok(None)` means the client closed
/// the connection cleanly between requests (the keep-alive loop ends);
/// `Err` carries the status to answer before closing.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = match stream.read(&mut chunk) {
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.is_empty() {
                    return Ok(None); // idle keep-alive connection timed out
                }
                return Err(HttpError::new(408, "timed out reading the request"));
            }
            Err(e) => return Err(HttpError::bad_request(format!("read failed: {e}"))),
        };
        if n == 0 {
            if buf.is_empty() {
                return Ok(None); // clean close between requests
            }
            return Err(HttpError::bad_request("truncated request head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::bad_request("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(HttpError::bad_request(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::bad_request(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
        http10: version == "HTTP/1.0",
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::bad_request(
            "chunked request bodies are not supported; send Content-Length",
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::bad_request(format!("invalid Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "request body of {content_length} bytes exceeds the {}-byte cap",
                limits.max_body_bytes
            ),
        ));
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes would desynchronize the keep-alive loop;
        // this tiny server reads one request at a time.
        return Err(HttpError::bad_request(
            "request body longer than Content-Length",
        ));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::bad_request("truncated request body")),
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading the request body"))
            }
            Err(e) => return Err(HttpError::bad_request(format!("read failed: {e}"))),
        };
        body.extend_from_slice(&chunk[..n]);
    }
    request.body = body;
    Ok(Some(request))
}

/// Writes a complete JSON response with `Content-Length`.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, body, keep_alive, "application/json", &[])
}

/// [`write_response`] with an explicit content type and extra response
/// headers (e.g. the Prometheus text exposition, or a 503's
/// `Retry-After`).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    content_type: &str,
    extra_headers: &[(String, String)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        status_text(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Streams a response as `Transfer-Encoding: chunked` NDJSON: call
/// [`ChunkedWriter::line`] per document, then [`ChunkedWriter::finish`].
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn begin(stream: &'a mut TcpStream, keep_alive: bool) -> std::io::Result<Self> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: {connection}\r\n\r\n",
        )?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one JSON document as its own chunk, newline-terminated.
    pub fn line(&mut self, doc: &str) -> std::io::Result<()> {
        write!(self.stream, "{:x}\r\n{doc}\n\r\n", doc.len() + 1)?;
        self.stream.flush()
    }

    /// Writes the terminating zero chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_default_sanely() {
        let l = Limits::default();
        assert!(l.max_head_bytes >= 4096);
        assert!(l.max_body_bytes >= 1024 * 1024);
    }

    #[test]
    fn status_texts_cover_the_api() {
        for s in [200, 400, 404, 405, 408, 413, 431, 500, 503] {
            assert_ne!(status_text(s), "Error");
        }
        assert_eq!(status_text(418), "Error");
    }
}

//! The JSON API: five endpoints, zero task logic. Every handler only
//! (de)serializes with `mintri_core::json` and calls [`Engine::run`] —
//! budgets, best-k selection, decomposition expansion, replay and
//! cancellation all live behind the front door, exactly where the CLI
//! and library callers get them.
//!
//! | Method | Path         | Body                                        | Answer |
//! |--------|--------------|---------------------------------------------|--------|
//! | GET    | `/healthz`   | —                                           | `{"status":"ok",…}` |
//! | GET    | `/v1/stats`  | —                                           | sessions, graphs, memo counters, cost profiles |
//! | POST   | `/v1/graphs` | `{"nodes":N,"edges":[[u,v],…]}`             | `{"graph_id":…}` |
//! | POST   | `/v1/query`  | `{"graph_id"∣"graph", "query", ["timeout_ms"], ["stream"]}` | one response document (or NDJSON chunks) |
//! | POST   | `/v1/batch`  | `{"queries":[spec,…]}`                      | `{"responses":[…]}` |
//!
//! Errors are structured: `{"error":{"status":S,"message":…}}` with the
//! same status on the HTTP line — malformed input is a 4xx, never a
//! worker panic.

use crate::http::{HttpError, Request};
use mintri_core::json::{
    graph_from_json, graph_summary_json, outcome_json, query_from_json, JsonObject, JsonValue,
};
use mintri_core::query::{Query, QueryItem, Response, Task};
use mintri_engine::{graph_fingerprint, Engine, GraphSnapshot};
use mintri_graph::Graph;
use mintri_telemetry::{Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Caps on what remote clients may register and submit.
#[derive(Debug, Clone)]
pub struct ApiLimits {
    /// Largest graph (in nodes) `/v1/graphs` and inline `"graph"` fields
    /// accept (adjacency is quadratic in nodes).
    pub max_graph_nodes: usize,
    /// RAM capacity of the graph registry: past it the least recently
    /// used graph ages out of RAM under the same LRU policy the engine's
    /// sessions use. With a persistent store attached the aged entry
    /// stays on disk and rehydrates on its next use; uploads never see a
    /// capacity 503 — only exhausting the store's *disk budget* answers
    /// a structured 503.
    pub max_graphs: usize,
    /// Largest `/v1/batch` request, in queries.
    pub max_batch: usize,
    /// Default/maximum `max_results` budget imposed on **collected**
    /// queries (`/v1/query` without `"stream":true`, every batch slot):
    /// a collected response buffers every rendered item in memory, and
    /// enumerations are exponential, so an uncapped budget would let one
    /// small graph exhaust the server. Capped runs report
    /// `"completed":false`; streaming responses are O(1) memory and stay
    /// uncapped.
    pub max_collected_results: usize,
    /// Queries that take at least this long (wall clock, request start
    /// to stream end) land in the slow-query ring buffer surfaced under
    /// `/v1/stats`.
    pub slow_query_ms: u64,
}

impl Default for ApiLimits {
    fn default() -> Self {
        ApiLimits {
            max_graph_nodes: 4096,
            max_graphs: 1024,
            max_batch: 256,
            max_collected_results: 100_000,
            slow_query_ms: 250,
        }
    }
}

/// One endpoint's request counter and latency histogram — the same two
/// metric names for every endpoint, distinguished by the `endpoint`
/// label value.
struct EndpointMetrics {
    requests: Arc<Counter>,
    latency_us: Arc<Histogram>,
}

impl EndpointMetrics {
    fn new(registry: &mintri_telemetry::Registry, endpoint: &str) -> Self {
        let labels = &[("endpoint", endpoint)];
        EndpointMetrics {
            requests: registry.counter_with(
                "mintri_http_requests_total",
                "HTTP requests routed, by endpoint",
                labels,
            ),
            latency_us: registry.histogram_with(
                "mintri_http_request_microseconds",
                "Request handling wall time (collected queries include the full drain)",
                labels,
            ),
        }
    }

    fn observe(&self, elapsed: Duration) {
        self.requests.inc();
        self.latency_us.record_duration(elapsed);
    }
}

/// The transport's metric handles, registered into the **engine's**
/// registry — one Prometheus render covers engine and HTTP layer alike.
pub(crate) struct HttpMetrics {
    healthz: EndpointMetrics,
    stats: EndpointMetrics,
    metrics: EndpointMetrics,
    graphs: EndpointMetrics,
    query: EndpointMetrics,
    batch: EndpointMetrics,
    /// Unrouted paths / wrong methods.
    other: EndpointMetrics,
    /// Connections currently held by a worker.
    pub(crate) active_connections: Arc<Gauge>,
    /// Size of the connection worker pool.
    pub(crate) workers: Arc<Gauge>,
}

impl HttpMetrics {
    fn new(registry: &mintri_telemetry::Registry) -> Self {
        HttpMetrics {
            healthz: EndpointMetrics::new(registry, "/healthz"),
            stats: EndpointMetrics::new(registry, "/v1/stats"),
            metrics: EndpointMetrics::new(registry, "/v1/metrics"),
            graphs: EndpointMetrics::new(registry, "/v1/graphs"),
            query: EndpointMetrics::new(registry, "/v1/query"),
            batch: EndpointMetrics::new(registry, "/v1/batch"),
            other: EndpointMetrics::new(registry, "other"),
            active_connections: registry.gauge(
                "mintri_http_active_connections",
                "Connections currently held by a worker",
            ),
            workers: registry.gauge("mintri_http_workers", "Size of the connection worker pool"),
        }
    }

    fn endpoint(&self, path: &str) -> &EndpointMetrics {
        match path {
            "/healthz" => &self.healthz,
            "/v1/stats" => &self.stats,
            "/v1/metrics" => &self.metrics,
            "/v1/graphs" => &self.graphs,
            "/v1/query" => &self.query,
            "/v1/batch" => &self.batch,
            _ => &self.other,
        }
    }
}

/// One slow-query record: what ran, how long it took, and when (as an
/// uptime offset, so entries order without wall-clock reads).
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Wire name of the task.
    pub task: &'static str,
    /// Full wall time, request start to stream end, in ms.
    pub elapsed_ms: u64,
    /// Items the query produced.
    pub count: usize,
    /// Server uptime when the query finished, in ms.
    pub at_ms: u64,
}

/// Fixed-capacity ring of the most recent slow queries.
struct SlowLog {
    entries: Vec<SlowQuery>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

const SLOW_LOG_CAPACITY: usize = 32;

/// Most profile rows `/v1/stats` renders (hottest first — the views are
/// already sorted by predicted wall).
const PROFILE_STATS_ROWS: usize = 32;

/// Headroom multiplier on the predicted wall when the server arms a
/// default timeout for a known-slow graph: generous enough that an
/// honest run never trips it, tight enough that a wedged one does.
const AUTO_TIMEOUT_HEADROOM: u64 = 32;

/// Floor on the profile-driven default timeout, so a marginally-slow
/// prediction never arms a hair-trigger watchdog.
const AUTO_TIMEOUT_FLOOR: Duration = Duration::from_secs(5);

impl SlowLog {
    fn new() -> Self {
        SlowLog {
            entries: Vec::with_capacity(SLOW_LOG_CAPACITY),
            next: 0,
        }
    }

    fn push(&mut self, entry: SlowQuery) {
        if self.entries.len() < SLOW_LOG_CAPACITY {
            self.entries.push(entry);
        } else {
            self.entries[self.next] = entry;
            self.next = (self.next + 1) % SLOW_LOG_CAPACITY;
        }
    }

    /// Entries oldest-first.
    fn ordered(&self) -> Vec<SlowQuery> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.next..]);
        out.extend_from_slice(&self.entries[..self.next]);
        out
    }
}

/// The uploaded-graph registry: id → graph with a recency stamp, LRU-
/// aged at [`ApiLimits::max_graphs`] — the same unified eviction policy
/// the engine's session store applies, replacing the old hard-capped
/// 503-when-full behavior. Aging only frees RAM: with a persistent store
/// attached the entry's disk copy survives and rehydrates on its next
/// resolve.
struct GraphRegistry {
    by_id: HashMap<String, (u64, Arc<Graph>)>,
    clock: u64,
}

impl GraphRegistry {
    fn new() -> Self {
        GraphRegistry {
            by_id: HashMap::new(),
            clock: 0,
        }
    }

    /// Looks `id` up, refreshing its recency stamp on a hit.
    fn touch(&mut self, id: &str) -> Option<Arc<Graph>> {
        self.clock += 1;
        let clock = self.clock;
        let (stamp, g) = self.by_id.get_mut(id)?;
        *stamp = clock;
        Some(Arc::clone(g))
    }

    /// Inserts, aging the least recently used entries out of RAM past
    /// `cap`.
    fn insert(&mut self, id: String, g: Arc<Graph>, cap: usize) {
        self.clock += 1;
        self.by_id.insert(id, (self.clock, g));
        while self.by_id.len() > cap.max(1) {
            let Some(victim) = self
                .by_id
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(id, _)| id.clone())
            else {
                break;
            };
            self.by_id.remove(&victim);
        }
    }
}

/// Rebuilds a registry graph from its snapshot, rejecting out-of-range
/// endpoints instead of panicking (the checksum makes this unreachable
/// for files the store wrote, but a loader must not trust disk).
fn graph_from_snapshot(snap: &GraphSnapshot) -> Option<Graph> {
    let n = snap.nodes as usize;
    if snap
        .edges
        .iter()
        .any(|&(u, v)| u as usize >= n || v as usize >= n)
    {
        return None;
    }
    Some(Graph::from_edges(n, &snap.edges))
}

/// Shared server state: the engine (all warm sessions and replay caches
/// live there) plus the uploaded-graph registry.
pub struct AppState {
    engine: Arc<Engine>,
    graphs: Mutex<GraphRegistry>,
    limits: ApiLimits,
    started: Instant,
    metrics: HttpMetrics,
    slow: Mutex<SlowLog>,
}

impl AppState {
    /// Fresh state over a shared engine. The transport's metrics are
    /// registered into the engine's registry here.
    pub fn new(engine: Arc<Engine>, limits: ApiLimits) -> Self {
        let metrics = HttpMetrics::new(engine.registry());
        AppState {
            engine,
            graphs: Mutex::new(GraphRegistry::new()),
            limits,
            started: Instant::now(),
            metrics,
            slow: Mutex::new(SlowLog::new()),
        }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Number of graphs currently registered in RAM.
    pub fn graphs_registered(&self) -> usize {
        self.graphs.lock().unwrap().by_id.len()
    }

    /// The transport's metric handles (connection gauges for the server
    /// loop).
    pub(crate) fn http_metrics(&self) -> &HttpMetrics {
        &self.metrics
    }

    /// The slow-query entries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow.lock().unwrap().ordered()
    }

    /// Records a finished query's wall time; entries at or above
    /// [`ApiLimits::slow_query_ms`] land in the slow-query ring.
    pub(crate) fn observe_query(&self, task: &'static str, elapsed: Duration, count: usize) {
        let elapsed_ms = elapsed.as_millis() as u64;
        if elapsed_ms >= self.limits.slow_query_ms {
            self.slow.lock().unwrap().push(SlowQuery {
                task,
                elapsed_ms,
                count,
                at_ms: self.started.elapsed().as_millis() as u64,
            });
        }
    }
}

/// What a routed request produced: either a complete body, or a query
/// stream the connection loop writes out chunk by chunk.
pub enum Reply {
    /// A finished document.
    Full {
        /// HTTP status.
        status: u16,
        /// The response body.
        body: String,
        /// `Content-Type` of the body (`application/json` for every
        /// endpoint but `/v1/metrics`).
        content_type: &'static str,
        /// Extra response headers, e.g. a 503's `Retry-After`.
        headers: Vec<(String, String)>,
    },
    /// A live query to stream as NDJSON chunks (boxed: the running
    /// query dwarfs the other variant).
    Stream(Box<RunningQuery>),
}

impl Reply {
    fn ok(body: String) -> Reply {
        Reply::Full {
            status: 200,
            body,
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// A 200 with the Prometheus text exposition content type.
    fn prometheus(body: String) -> Reply {
        Reply::Full {
            status: 200,
            body,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
        }
    }
}

/// Renders the structured error document every non-2xx answer carries.
pub fn error_body(status: u16, message: &str) -> String {
    error_body_with(status, message, &[])
}

/// [`error_body`] with extra numeric fields merged into the error
/// object (a 503's `capacity`/`stored`, say).
pub fn error_body_with(status: u16, message: &str, detail: &[(&'static str, u64)]) -> String {
    let mut inner = JsonObject::new();
    inner.usize("status", status as usize);
    inner.str("message", message);
    for (key, value) in detail {
        inner.raw(key, value.to_string());
    }
    let mut doc = JsonObject::new();
    doc.raw("error", inner.finish());
    doc.finish()
}

impl From<HttpError> for Reply {
    fn from(e: HttpError) -> Reply {
        let headers = e
            .retry_after
            .map(|secs| ("Retry-After".to_string(), secs.to_string()))
            .into_iter()
            .collect();
        Reply::Full {
            status: e.status,
            body: error_body_with(e.status, &e.message, &e.detail),
            content_type: "application/json",
            headers,
        }
    }
}

/// A query mid-execution: the engine response stream plus the watchdog
/// keeping its per-request timeout armed. Dropping it (after draining or
/// mid-stream) cancels the watchdog and joins its thread.
pub struct RunningQuery {
    /// Wire name of the task, stamped on the response document.
    pub task_name: &'static str,
    /// The live response stream.
    pub response: Response<'static>,
    /// When the request started (for the slow-query log: a streamed
    /// query's wall time only closes when its drain does).
    pub(crate) started: Instant,
    _watchdog: Option<Watchdog>,
}

/// Cancels the query's [`CancelToken`](mintri_core::query::CancelToken)
/// if the request deadline passes before the stream ends.
struct Watchdog {
    /// Dropped first on teardown: disconnecting wakes the thread without
    /// waiting out the timeout.
    done: Option<mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.take();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn arm_watchdog(query: &Query, timeout: Duration) -> Watchdog {
    let token = query.cancel.clone();
    let (tx, rx) = mpsc::channel::<()>();
    let thread = std::thread::spawn(move || {
        if let Err(mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(timeout) {
            token.cancel();
        }
    });
    Watchdog {
        done: Some(tx),
        thread: Some(thread),
    }
}

/// The wire name of a task (also the `"task"` field of every response
/// document).
pub fn task_name(task: &Task) -> &'static str {
    match task {
        Task::Enumerate => "enumerate",
        Task::BestK { .. } => "best_k",
        Task::Decompose { .. } => "decompose",
        Task::Stats => "stats",
    }
}

/// Renders one streamed [`QueryItem`] the way the CLI renders the same
/// result kind (1-based vertices, 0-based bag indices).
pub fn render_item(item: &QueryItem) -> String {
    match item {
        QueryItem::Triangulation(t) => {
            let fill: Vec<String> = t
                .fill
                .iter()
                .map(|(u, v)| format!("[{},{}]", u + 1, v + 1))
                .collect();
            let mut doc = JsonObject::new();
            doc.usize("width", t.width());
            doc.usize("fill", t.fill_count());
            doc.raw("fill_edges", format!("[{}]", fill.join(",")));
            doc.finish()
        }
        QueryItem::Decomposition(d) => {
            let bags: Vec<String> = d
                .bags
                .iter()
                .map(|bag| {
                    let items: Vec<String> = bag.iter().map(|v| (v + 1).to_string()).collect();
                    format!("[{}]", items.join(","))
                })
                .collect();
            let edges: Vec<String> = d.edges.iter().map(|(a, b)| format!("[{a},{b}]")).collect();
            let mut doc = JsonObject::new();
            doc.usize("width", d.width());
            doc.raw("bags", format!("[{}]", bags.join(",")));
            doc.raw("edges", format!("[{}]", edges.join(",")));
            doc.finish()
        }
        QueryItem::Record(r) => {
            let mut doc = JsonObject::new();
            doc.usize("index", r.index);
            doc.raw("elapsed_us", r.at.as_micros().to_string());
            doc.usize("width", r.width);
            doc.usize("fill", r.fill);
            doc.finish()
        }
    }
}

/// The final document of a drained query: task, rendered items, replay
/// flag and the full outcome. `count` is the number of items produced —
/// `items.len()` for a collected response, the number of already-written
/// chunks for a streamed one (whose `items` array is empty here).
pub fn finish_document(
    task_name: &str,
    items: &[String],
    count: usize,
    response: &Response<'_>,
) -> String {
    let outcome = response.outcome();
    let mut doc = JsonObject::new();
    doc.str("task", task_name);
    doc.raw("items", format!("[{}]", items.join(",")));
    doc.usize("count", count);
    doc.bool("is_replay", response.is_replay());
    doc.raw("outcome", outcome_json(&outcome));
    doc.finish()
}

impl AppState {
    fn register_graph(&self, v: &JsonValue) -> Result<(String, Arc<Graph>), HttpError> {
        let g = graph_from_json(v, self.limits.max_graph_nodes).map_err(HttpError::bad_request)?;
        let g = Arc::new(g);
        let store = self.engine.store().cloned();
        let mut graphs = self.graphs.lock().unwrap();
        // Ids are the engine's own session fingerprint (one definition:
        // graph ids and session keys must never diverge), with equality
        // verified on collision — a clash costs a probe, never a wrong
        // graph.
        let base = format!("g{:016x}", graph_fingerprint(&g));
        for probe in 0.. {
            let id = if probe == 0 {
                base.clone()
            } else {
                format!("{base}-{probe}")
            };
            if let Some(existing) = graphs.touch(&id) {
                if *existing == *g {
                    return Ok((id, existing));
                }
                continue; // fingerprint collision: probe onward
            }
            // Not in RAM. A disk copy (this replica's LRU-aged entry, a
            // previous life's upload, or another replica's) settles the
            // probe the same way a RAM hit would.
            if let Some(store) = &store {
                if let Some(snap) = store.load_graph(&id) {
                    if snap.id != id {
                        continue; // name sanitation aliased two ids
                    }
                    match graph_from_snapshot(&snap) {
                        Some(disk) if disk == *g => {
                            graphs.insert(id.clone(), Arc::clone(&g), self.limits.max_graphs);
                            return Ok((id, g));
                        }
                        Some(_) => continue, // disk-recorded collision
                        None => {}           // unusable snapshot: treat as absent
                    }
                }
                // Genuinely new: persist before admitting. Disk budget is
                // the one remaining hard limit (RAM pressure just ages
                // the LRU); the 503 is structured so clients read
                // budget/stored (and honor Retry-After) instead of
                // parsing the message.
                let snap = GraphSnapshot {
                    id: id.clone(),
                    nodes: g.num_nodes() as u32,
                    edges: g.edges(),
                };
                let bytes = snap.encode();
                if store.would_exceed_budget(bytes.len() as u64) {
                    return Err(HttpError::new(503, "graph store disk budget exhausted")
                        .detail("budget_bytes", store.max_disk_bytes().unwrap_or(0))
                        .detail("stored_bytes", store.bytes_stored())
                        .retry_after(1));
                }
                store.put_graph(&snap);
            }
            graphs.insert(id.clone(), Arc::clone(&g), self.limits.max_graphs);
            return Ok((id, g));
        }
        unreachable!("the probe loop always returns")
    }

    fn resolve_graph(&self, spec: &JsonValue) -> Result<Arc<Graph>, HttpError> {
        match (spec.get("graph_id"), spec.get("graph")) {
            (Some(id), None) => {
                let id = id
                    .as_str()
                    .ok_or_else(|| HttpError::bad_request("`graph_id` must be a string"))?;
                if let Some(g) = self.graphs.lock().unwrap().touch(id) {
                    return Ok(g);
                }
                // RAM miss: rehydrate from the persistent registry — the
                // graph may have been LRU-aged out, uploaded before a
                // restart, or registered by another replica sharing the
                // store directory.
                if let Some(store) = self.engine.store() {
                    if let Some(snap) = store.load_graph(id) {
                        if snap.id == id {
                            if let Some(g) = graph_from_snapshot(&snap) {
                                let g = Arc::new(g);
                                self.graphs.lock().unwrap().insert(
                                    id.to_string(),
                                    Arc::clone(&g),
                                    self.limits.max_graphs,
                                );
                                return Ok(g);
                            }
                        }
                    }
                }
                Err(HttpError::new(404, format!("unknown graph_id {id:?}")))
            }
            (None, Some(inline)) => Ok(Arc::new(
                graph_from_json(inline, self.limits.max_graph_nodes)
                    .map_err(HttpError::bad_request)?,
            )),
            (Some(_), Some(_)) => Err(HttpError::bad_request(
                "give either `graph_id` or an inline `graph`, not both",
            )),
            (None, None) => Err(HttpError::bad_request(
                "query spec needs a `graph_id` or an inline `graph`",
            )),
        }
    }

    /// Parses one query spec and starts it on the engine. The returned
    /// [`RunningQuery`] has produced nothing yet; the caller drains it
    /// (collected or chunk by chunk). `collected` responses get the
    /// [`ApiLimits::max_collected_results`] budget clamp — they buffer
    /// every item, so an unbudgeted exponential enumeration must not be
    /// allowed to collect unboundedly.
    fn start_query(&self, spec: &JsonValue, collected: bool) -> Result<RunningQuery, HttpError> {
        if spec.entries().is_none() {
            return Err(HttpError::bad_request("query spec must be a JSON object"));
        }
        let graph = self.resolve_graph(spec)?;
        let query_field = spec
            .get("query")
            .ok_or_else(|| HttpError::bad_request("query spec needs a `query` object"))?;
        let mut query = query_from_json(query_field).map_err(HttpError::bad_request)?;
        if collected {
            let cap = self.limits.max_collected_results.max(1);
            query.budget.max_results = Some(match query.budget.max_results {
                Some(n) => n.min(cap),
                None => cap,
            });
        }
        let timeout = match spec.get("timeout_ms") {
            // No deadline from the client: a known-slow graph still gets
            // a server-side default so one request can't hold a worker
            // forever. An explicit `"timeout_ms": null` opts out.
            None => self.auto_timeout(&query, &graph),
            Some(JsonValue::Null) => None,
            Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                HttpError::bad_request("`timeout_ms` must be a non-negative integer")
            })?)),
        };
        let name = task_name(&query.task);
        let watchdog = timeout.map(|t| arm_watchdog(&query, t));
        let response = self.engine.run(&graph, query);
        Ok(RunningQuery {
            task_name: name,
            response,
            started: Instant::now(),
            _watchdog: watchdog,
        })
    }

    /// The profile-driven default timeout: under an `Auto` policy, if
    /// the learned cost profile predicts this graph's full wall at or
    /// above the slow-query threshold, arm a deadline with generous
    /// headroom. Cold profiles and `Fixed` queries change nothing.
    fn auto_timeout(&self, query: &Query, graph: &Graph) -> Option<Duration> {
        if !query.policy.is_auto() {
            return None;
        }
        let wall_us = self
            .engine
            .predicted_wall_us(graph, query.triangulator.name())?;
        if wall_us < self.limits.slow_query_ms.saturating_mul(1_000) {
            return None;
        }
        Some(
            Duration::from_micros(wall_us.saturating_mul(AUTO_TIMEOUT_HEADROOM))
                .max(AUTO_TIMEOUT_FLOOR),
        )
    }

    /// Runs one spec to completion and renders the response document.
    /// The full drain is timed; slow runs land in the slow-query log.
    fn run_collected(&self, spec: &JsonValue) -> Result<String, HttpError> {
        let started = Instant::now();
        let mut running = self.start_query(spec, true)?;
        let items: Vec<String> = running.response.by_ref().map(|i| render_item(&i)).collect();
        self.observe_query(running.task_name, started.elapsed(), items.len());
        Ok(finish_document(
            running.task_name,
            &items,
            items.len(),
            &running.response,
        ))
    }

    fn handle_healthz(&self) -> Reply {
        let mut doc = JsonObject::new();
        doc.str("status", "ok");
        doc.raw("uptime_ms", self.started.elapsed().as_millis().to_string());
        Reply::ok(doc.finish())
    }

    fn handle_stats(&self) -> Reply {
        let memo = self.engine.memo_stats();
        let mut memo_doc = JsonObject::new();
        memo_doc.usize("extends", memo.extends);
        memo_doc.usize("crossing_computed", memo.crossing_computed);
        memo_doc.usize("crossing_cached", memo.crossing_cached);
        memo_doc.usize("separators_interned", memo.separators_interned);
        let t = self.engine.telemetry();
        let mut engine_doc = JsonObject::new();
        engine_doc.raw("sessions_built", t.sessions_built.get().to_string());
        engine_doc.raw("sessions_evicted", t.sessions_evicted.get().to_string());
        engine_doc.raw("replay_hits", t.replay_hits.get().to_string());
        engine_doc.raw("replay_misses", t.replay_misses.get().to_string());
        engine_doc.raw("plans_computed", t.plans_computed.get().to_string());
        engine_doc.raw("plan_cache_hits", t.plan_cache_hits.get().to_string());
        let requests: Vec<String> = [
            ("/healthz", &self.metrics.healthz),
            ("/v1/stats", &self.metrics.stats),
            ("/v1/metrics", &self.metrics.metrics),
            ("/v1/graphs", &self.metrics.graphs),
            ("/v1/query", &self.metrics.query),
            ("/v1/batch", &self.metrics.batch),
            ("other", &self.metrics.other),
        ]
        .iter()
        .map(|(endpoint, m)| {
            let mut entry = JsonObject::new();
            entry.str("endpoint", endpoint);
            entry.raw("requests", m.requests.get().to_string());
            entry.finish()
        })
        .collect();
        let slow: Vec<String> = self
            .slow_queries()
            .iter()
            .map(|s| {
                let mut entry = JsonObject::new();
                entry.str("task", s.task);
                entry.raw("elapsed_ms", s.elapsed_ms.to_string());
                entry.usize("count", s.count);
                entry.raw("at_ms", s.at_ms.to_string());
                entry.finish()
            })
            .collect();
        let mut doc = JsonObject::new();
        doc.usize("sessions", self.engine.sessions_cached());
        doc.usize("graphs", self.graphs_registered());
        doc.raw("memo", memo_doc.finish());
        doc.raw("engine", engine_doc.finish());
        if let Some(store) = self.engine.store() {
            let stats = store.stats();
            let mut store_doc = JsonObject::new();
            store_doc.raw("bytes", stats.bytes.to_string());
            store_doc.raw("entries", stats.entries.to_string());
            store_doc.raw("writes", stats.writes.to_string());
            store_doc.raw("loads", stats.loads.to_string());
            store_doc.raw("load_misses", stats.load_misses.to_string());
            store_doc.raw("corrupt_quarantined", stats.corrupt_quarantined.to_string());
            store_doc.raw("hits", t.store_hits.get().to_string());
            store_doc.raw("misses", t.store_misses.get().to_string());
            store_doc.raw("spills", t.store_spills.get().to_string());
            doc.raw("store", store_doc.finish());
        }
        let views = self.engine.profile_views();
        let atoms: Vec<String> = views
            .iter()
            .take(PROFILE_STATS_ROWS)
            .map(|v| {
                let mut entry = JsonObject::new();
                entry.str("fingerprint", &format!("{:016x}", v.fingerprint));
                entry.str("backend", v.backend);
                entry.usize("nodes", v.nodes as usize);
                entry.raw("live_runs", v.live_runs.to_string());
                entry.raw("replay_hits", v.replay_hits.to_string());
                entry.raw("hydrate_hits", v.hydrate_hits.to_string());
                entry.raw("results_total", v.results_total.to_string());
                entry.raw("extends_total", v.extends_total.to_string());
                entry.raw("predicted_wall_us", v.predicted_wall_us.to_string());
                entry.raw("predicted_results", v.predicted_results.to_string());
                entry.raw("first_us_p50", v.first_us_p50.to_string());
                entry.raw("first_us_p99", v.first_us_p99.to_string());
                entry.raw("gap_us_p50", v.gap_us_p50.to_string());
                entry.finish()
            })
            .collect();
        let mut profile_doc = JsonObject::new();
        profile_doc.usize("entries", views.len());
        profile_doc.raw("atoms", format!("[{}]", atoms.join(",")));
        doc.raw("profile", profile_doc.finish());
        doc.raw("requests", format!("[{}]", requests.join(",")));
        doc.raw("slow_queries", format!("[{}]", slow.join(",")));
        doc.raw("slow_query_ms", self.limits.slow_query_ms.to_string());
        doc.raw("uptime_ms", self.started.elapsed().as_millis().to_string());
        Reply::ok(doc.finish())
    }

    /// `GET /v1/metrics`: the whole registry — engine counters and
    /// per-endpoint HTTP families alike — in Prometheus text exposition
    /// format. Gauge mirrors of pull-only state are refreshed first.
    fn handle_metrics(&self) -> Reply {
        self.engine.refresh_gauges();
        Reply::prometheus(self.engine.registry().render_prometheus())
    }

    fn handle_graphs(&self, body: &JsonValue) -> Result<Reply, HttpError> {
        let (id, g) = self.register_graph(body)?;
        let mut doc = JsonObject::new();
        doc.str("graph_id", &id);
        doc.raw("graph", graph_summary_json(&g));
        Ok(Reply::ok(doc.finish()))
    }

    fn handle_query(&self, body: &JsonValue) -> Result<Reply, HttpError> {
        let stream = match body.get("stream") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| HttpError::bad_request("`stream` must be a boolean"))?,
        };
        if stream {
            return Ok(Reply::Stream(Box::new(self.start_query(body, false)?)));
        }
        Ok(Reply::ok(self.run_collected(body)?))
    }

    fn handle_batch(&self, body: &JsonValue) -> Result<Reply, HttpError> {
        let specs = body
            .get("queries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| HttpError::bad_request("batch needs a `queries` array"))?;
        if specs.len() > self.limits.max_batch {
            return Err(HttpError::bad_request(format!(
                "batch of {} queries exceeds the cap of {}",
                specs.len(),
                self.limits.max_batch
            )));
        }
        // One connection, many queries; a bad spec fails its own slot,
        // not the batch.
        let responses: Vec<String> = specs
            .iter()
            .map(|spec| {
                // Batch answers are one collected document per slot; a
                // requested stream can't be honored here, so validate the
                // field exactly like /v1/query does and reject it rather
                // than silently dropping the delivery mode.
                match spec.get("stream") {
                    Some(JsonValue::Bool(true)) => {
                        return error_body(400, "streaming is not supported inside /v1/batch")
                    }
                    Some(v) if v.as_bool().is_none() => {
                        return error_body(400, "`stream` must be a boolean")
                    }
                    _ => {}
                }
                match self.run_collected(spec) {
                    Ok(doc) => doc,
                    Err(e) => error_body(e.status, &e.message),
                }
            })
            .collect();
        let mut doc = JsonObject::new();
        doc.raw("responses", format!("[{}]", responses.join(",")));
        doc.usize("count", responses.len());
        Ok(Reply::ok(doc.finish()))
    }

    /// Routes one parsed request. Infallible: every error is already a
    /// structured [`Reply::Full`]. Each route lands in its endpoint's
    /// request counter and latency histogram (collected queries time the
    /// full drain; streamed ones only the setup — the drain happens in
    /// the connection loop).
    pub fn route(&self, req: &Request) -> Reply {
        let started = Instant::now();
        let result = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Ok(self.handle_healthz()),
            ("GET", "/v1/stats") => Ok(self.handle_stats()),
            ("GET", "/v1/metrics") => Ok(self.handle_metrics()),
            ("POST", "/v1/graphs") => self.parse_body(req).and_then(|v| self.handle_graphs(&v)),
            ("POST", "/v1/query") => self.parse_body(req).and_then(|v| self.handle_query(&v)),
            ("POST", "/v1/batch") => self.parse_body(req).and_then(|v| self.handle_batch(&v)),
            (
                _,
                "/healthz" | "/v1/stats" | "/v1/metrics" | "/v1/graphs" | "/v1/query" | "/v1/batch",
            ) => Err(HttpError::new(
                405,
                format!("{} is not valid here", req.method),
            )),
            (_, path) => Err(HttpError::new(404, format!("no route for {path:?}"))),
        };
        let endpoint = match (req.method.as_str(), req.path.as_str()) {
            ("GET", p @ ("/healthz" | "/v1/stats" | "/v1/metrics"))
            | ("POST", p @ ("/v1/graphs" | "/v1/query" | "/v1/batch")) => p,
            _ => "other",
        };
        self.metrics.endpoint(endpoint).observe(started.elapsed());
        result.unwrap_or_else(Reply::from)
    }

    fn parse_body(&self, req: &Request) -> Result<JsonValue, HttpError> {
        let text = std::str::from_utf8(&req.body)
            .map_err(|_| HttpError::bad_request("request body is not valid UTF-8"))?;
        JsonValue::parse(text).map_err(|e| HttpError::bad_request(e.to_string()))
    }
}

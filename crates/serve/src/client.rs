//! A minimal HTTP/1.1 client for the transport's own tests, benches and
//! smoke tooling — connect, send one JSON request, read one response
//! (fixed-length or chunked). Not a general-purpose client; just enough
//! to drive `mintri-serve` without external tooling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body (chunked transfer already decoded).
    pub body: String,
}

impl HttpResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to the server.
pub struct Client {
    reader: BufReader<TcpStream>,
    host: String,
}

impl Client {
    /// Connects (10 s timeouts on both directions).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> std::io::Result<Client> {
        let host = addr.to_string();
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream),
            host,
        })
    }

    /// Sends `method path` with an optional JSON body and reads the
    /// response. The connection stays usable afterwards (keep-alive).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            self.host,
            body.len(),
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// Sends raw bytes verbatim (for malformed-input tests) and reads
    /// whatever single response comes back.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<HttpResponse> {
        let stream = self.reader.get_mut();
        stream.write_all(bytes)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let header = |name: &str| {
            headers
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.as_str())
        };

        let body = if header("transfer-encoding")
            .map(|v| v.eq_ignore_ascii_case("chunked"))
            .unwrap_or(false)
        {
            let mut out = Vec::new();
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("malformed chunk size {size_line:?}"),
                    )
                })?;
                let mut chunk = vec![0u8; size + 2]; // data + CRLF
                self.reader.read_exact(&mut chunk)?;
                if size == 0 {
                    break;
                }
                out.extend_from_slice(&chunk[..size]);
            }
            out
        } else {
            let length = header("content-length")
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(0);
            let mut out = vec![0u8; length];
            self.reader.read_exact(&mut out)?;
            out
        };
        Ok(HttpResponse {
            status,
            headers,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// One-shot convenience: fresh connection, one request, response.
pub fn request(
    addr: impl ToSocketAddrs + std::fmt::Display,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    Client::connect(addr)?.request(method, path, body)
}

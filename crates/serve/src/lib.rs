//! # mintri-serve — the HTTP/batch transport for the `Query` front door
//!
//! `mintri_core::query::Query` is plain serializable data and
//! [`Engine::run`] is the one entry point — so an HTTP server is nothing
//! but a (de)serialization layer plus an engine. This crate is that
//! layer: a threaded HTTP/1.1 JSON server on [`std::net::TcpListener`],
//! hand-rolled end to end (the environment is offline; no axum/hyper —
//! the same shimming discipline as the vendored rand/proptest).
//!
//! The server owns one shared [`Arc<Engine>`], so **every remote query
//! benefits from the engine's per-atom warm sessions and replay
//! caches**: the first query over a graph pays for its atoms'
//! enumerations, every later one — from any connection, even over a
//! *different* graph sharing an atom — replays with zero `Extend` calls
//! and reports `"is_replay": true`.
//!
//! ```no_run
//! use mintri_engine::Engine;
//! use mintri_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! let server = Server::bind(ServeConfig::default(), Arc::new(Engine::new())).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.run().unwrap(); // blocks; shut down via a handle from another thread
//! ```
//!
//! The endpoint table, wire format and the zero-task-logic invariant are
//! documented in the workspace `ARCHITECTURE.md` ("The transport
//! layer"); the request/response schemas live in [`api`].

pub mod api;
pub mod client;
pub mod http;

use api::{error_body, finish_document, render_item, ApiLimits, AppState, Reply};
use http::{ChunkedWriter, HttpError, Limits};
use mintri_engine::Engine;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Server configuration: where to listen, how many connection workers,
/// and the protocol / API limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port `0` picks a free one).
    pub addr: String,
    /// Connection worker threads (each serves one connection at a time;
    /// queries may additionally use the engine's own thread pool).
    pub workers: usize,
    /// Per-connection idle/read timeout; a stalled client frees its
    /// worker after this long.
    pub read_timeout: Duration,
    /// Protocol limits (head/body size caps).
    pub limits: Limits,
    /// API limits (graph size, registry and batch caps).
    pub api: ApiLimits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            read_timeout: Duration::from_secs(30),
            limits: Limits::default(),
            api: ApiLimits::default(),
        }
    }
}

/// The listening server. [`Server::run`] blocks serving connections
/// until a [`ServerHandle::shutdown`] arrives.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    stop: Arc<AtomicBool>,
    config: ServeConfig,
}

/// A cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Asks the accept loop to stop. Idempotent; `run()` returns after
    /// in-flight connections finish their current request.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds the listener and prepares the shared state. The engine is
    /// taken as an `Arc` so the caller can keep a handle (e.g. to watch
    /// [`Engine::memo_stats`] from outside).
    pub fn bind(config: ServeConfig, engine: Arc<Engine>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(AppState::new(engine, config.api.clone()));
        Ok(Server {
            listener,
            state,
            stop: Arc::new(AtomicBool::new(false)),
            config,
        })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            stop: Arc::clone(&self.stop),
            addr: self.local_addr()?,
        })
    }

    /// The shared state (for in-process observation in tests/benches).
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Serves connections until shutdown: a blocking accept loop feeding
    /// a fixed pool of connection workers over a bounded channel.
    pub fn run(self) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        self.state.http_metrics().workers.set(workers as i64);
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let config = self.config.clone();
            pool.push(
                std::thread::Builder::new()
                    .name(format!("mintri-serve-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().unwrap().recv() {
                            Ok(s) => s,
                            Err(_) => return, // accept loop gone: drain out
                        };
                        serve_connection(&state, &config, stream);
                    })?,
            );
        }
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    // A full queue applies backpressure on accept.
                    let _ = tx.send(s);
                }
                Err(_) => continue,
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serves one connection: a keep-alive loop of read → route → write.
/// Every failure path answers with a structured JSON error when the
/// socket still permits it; a handler panic becomes a 500, never a dead
/// worker.
fn serve_connection(state: &Arc<AppState>, config: &ServeConfig, mut stream: TcpStream) {
    let connections = Arc::clone(&state.http_metrics().active_connections);
    connections.add(1);
    // Balance the gauge on every exit path (including worker panics the
    // catch_unwind below cannot see, e.g. in the write path).
    struct ConnectionGuard(Arc<mintri_telemetry::Gauge>);
    impl Drop for ConnectionGuard {
        fn drop(&mut self) {
            self.0.sub(1);
        }
    }
    let _guard = ConnectionGuard(connections);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    // A client that stops *reading* must not wedge a worker either: once
    // the kernel send buffer fills, writes time out and the connection
    // is dropped.
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match http::read_request(&mut stream, &config.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close / idle timeout
            Err(e) => {
                let _ = http::write_response(
                    &mut stream,
                    e.status,
                    &error_body(e.status, &e.message),
                    false,
                );
                return;
            }
        };
        let keep_alive = !request.wants_close();
        // The route + collection path never *should* panic; if malformed
        // input finds a way, the worker answers 500 and lives on.
        let reply = std::panic::catch_unwind(AssertUnwindSafe(|| state.route(&request)))
            .unwrap_or_else(|_| {
                Reply::from(HttpError::new(500, "internal error handling the request"))
            });
        let ok = match reply {
            Reply::Full {
                status,
                body,
                content_type,
                headers,
            } => http::write_response_with(
                &mut stream,
                status,
                &body,
                keep_alive,
                content_type,
                &headers,
            )
            .is_ok(),
            Reply::Stream(running) => {
                stream_query(state, &mut stream, keep_alive, *running).is_ok()
            }
        };
        if !ok || !keep_alive {
            return;
        }
    }
}

/// Streams a running query as chunked NDJSON: one `{"item":…}` line per
/// result, then a final `{"done":…}` line carrying the outcome. The
/// drained wall time feeds the slow-query log, same as collected runs.
fn stream_query(
    state: &Arc<AppState>,
    stream: &mut TcpStream,
    keep_alive: bool,
    mut running: api::RunningQuery,
) -> std::io::Result<()> {
    let mut writer = ChunkedWriter::begin(stream, keep_alive)?;
    let mut streamed = 0usize;
    loop {
        let item = std::panic::catch_unwind(AssertUnwindSafe(|| running.response.next()));
        match item {
            Ok(Some(item)) => {
                let mut doc = mintri_core::json::JsonObject::new();
                doc.raw("item", render_item(&item));
                writer.line(&doc.finish())?;
                streamed += 1;
            }
            Ok(None) => break,
            Err(_) => {
                writer.line(&error_body(500, "internal error mid-stream"))?;
                return writer.finish();
            }
        }
    }
    state.observe_query(running.task_name, running.started.elapsed(), streamed);
    let done = finish_document(running.task_name, &[], streamed, &running.response);
    let mut doc = mintri_core::json::JsonObject::new();
    doc.raw("done", done);
    writer.line(&doc.finish())?;
    writer.finish()
}

//! Offline stand-in for the subset of the `criterion` crate this
//! workspace's benchmarks use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness with the same API shape: [`Criterion`],
//! benchmark groups, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical
//! analysis it runs a fixed warm-up plus a time-boxed measurement loop and
//! prints mean time per iteration — enough to compare runs by eye and to
//! keep `cargo bench` working end to end.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported with criterion's signature.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly inside the measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unmeasured calls.
        for _ in 0..3 {
            black_box(f());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if started.elapsed() >= self.measure_for {
                break;
            }
        }
        self.elapsed = started.elapsed();
        self.iters_done = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c Criterion,
    name: String,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure_for: self.measurement_time,
        };
        f(&mut b);
        let per_iter = if b.iters_done == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters_done as u32
        };
        println!(
            "{}/{}: {:>12.3} µs/iter ({} iters)",
            self.name,
            id,
            per_iter.as_secs_f64() * 1e6,
            b.iters_done
        );
        self
    }

    /// Shrinks or grows this group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; warm-up is a fixed 3 iterations.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; sampling is time-boxed instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group (prints nothing; criterion renders summaries here).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: these benches exist for relative comparisons.
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time,
        }
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 3, "warm-up plus at least one measured iteration");
    }
}

//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its property tests rely on: the
//! [`proptest!`] macro, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, ranges and tuples as strategies,
//! [`collection::vec`], [`any`], [`prop_oneof!`], [`Just`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with its case index and the
//!   generating seed, which reproduces exactly (generation is
//!   deterministic in the test-function name and case index);
//! * `prop_assert!` panics instead of returning `Err`, so `proptest!`
//!   bodies behave like plain `#[test]` bodies;
//! * value distributions are uniform rather than proptest's biased ones.

use std::rc::Rc;

pub mod test_runner {
    /// Runner configuration: only the `cases` knob is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// The deterministic source of randomness handed to strategies.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// RNG for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.0)
    }
}

/// A generator of test values. Upstream proptest separates strategies from
/// value trees (for shrinking); without shrinking a strategy is just a
/// deterministic function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`]: a type-erased strategy.
#[allow(clippy::type_complexity)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy (upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: uniform values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runs `cases` deterministic cases of a closure taking a [`TestRng`];
/// the engine behind [`proptest!`]. Panics carry the failing case index.
pub fn run_cases(test_name: &str, cases: u32, body: impl Fn(&mut TestRng)) {
    for case in 0..cases {
        let mut rng = TestRng::for_case(test_name, case);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest failure: test {test_name:?}, case {case}/{cases} (deterministic; re-run reproduces)");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies, and the body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($( $weight:literal => $strat:expr ),+ $(,)?) => {{
        let options = vec![ $( ($weight as u32, $crate::Strategy::boxed($strat)) ),+ ];
        $crate::OneOf { options }
    }};
    ($( $strat:expr ),+ $(,)?) => {{
        let options = vec![ $( (1u32, $crate::Strategy::boxed($strat)) ),+ ];
        $crate::OneOf { options }
    }};
}

/// See [`prop_oneof!`].
pub struct OneOf<T> {
    /// `(weight, strategy)` pairs; weights are relative.
    pub options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.next_u64() % total;
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum mismatch")
    }
}

/// Discards the current case when the assumption does not hold. Upstream
/// retries with a fresh input; this shim simply skips the case (case
/// counts are fixed, so heavy use of assumptions thins coverage).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Asserts a condition inside a property test (panics on failure; upstream
/// returns an error for shrinking, which this shim does not do).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..100, 0..20);
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0usize..n, n))
        })) {
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn oneof_picks_all_arms(x in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }
}

//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it needs: a seedable deterministic
//! generator ([`rngs::StdRng`]) plus [`Rng::gen_range`] / [`Rng::gen_bool`].
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for workload generation, deterministic in the seed on every
//! platform, and **not** bit-compatible with upstream `rand` (the golden
//! values in `tests/determinism.rs` pin *this* implementation's streams).

pub mod rngs {
    /// Deterministic xoshiro256++ generator, the stand-in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding, matching the signature of `rand::SeedableRng` for the
/// constructors the workspace calls.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Copy {
    fn from_u64(value: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn from_u64(value: u64) -> Self {
                value as $t
            }
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A half-open or inclusive integer range, as accepted by
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Low bound and number of representable values (must be > 0).
    fn bounds(&self) -> (T, u64);
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn bounds(&self) -> (T, u64) {
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        assert!(span > 0, "cannot sample from empty range");
        (self.start, span)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, u64) {
        let span = self
            .end()
            .to_u64()
            .wrapping_sub(self.start().to_u64())
            .wrapping_add(1);
        assert!(span > 0, "cannot sample from empty range");
        (*self.start(), span)
    }
}

/// The subset of `rand::Rng` the workload generators call.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`0..n` or `a..=b`).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (low, span) = range.bounds();
        // Modulo bias is < 2^-32 for the small spans used here; two's
        // complement wrapping makes the offset correct for signed types.
        T::from_u64(low.to_u64().wrapping_add(self.next_u64() % span))
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the standard u64 → f64 conversion.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl Rng for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        rngs::StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z: u32 = rng.gen_range(0..1u32);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(!StdRng::seed_from_u64(2).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(2).gen_bool(1.0));
    }
}

//! The dataset registry: named instance suites matching the evaluation
//! section, consumed by the benchmark harness.

use crate::{pgm, random};
use mintri_graph::Graph;

/// A named benchmark graph.
#[derive(Debug, Clone)]
pub struct DatasetInstance {
    /// Instance name, e.g. `promedas_03`.
    pub name: String,
    /// The graph to triangulate.
    pub graph: Graph,
}

/// The six probabilistic-graphical-model dataset families of Section 6.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PgmFamily {
    /// Medical-diagnosis noisy-or networks (26–1039 nodes in the paper).
    Promedas,
    /// Part-based object-detection MRFs (60 nodes, 135–180 edges).
    ObjectDetection,
    /// Image-segmentation networks (226–235 nodes, 617–647 edges).
    Segmentation,
    /// N×N grids (N ∈ {10, 20}).
    Grids,
    /// Genetic-linkage pedigrees (385 nodes, 930 edges).
    Pedigree,
    /// Constraint-satisfaction networks (67–100 nodes, 226–619 edges).
    Csp,
}

impl PgmFamily {
    /// All six families, in the paper's table order.
    pub const ALL: [PgmFamily; 6] = [
        PgmFamily::Promedas,
        PgmFamily::ObjectDetection,
        PgmFamily::Segmentation,
        PgmFamily::Grids,
        PgmFamily::Pedigree,
        PgmFamily::Csp,
    ];

    /// The family name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PgmFamily::Promedas => "Promedas",
            PgmFamily::ObjectDetection => "Obj. Detection",
            PgmFamily::Segmentation => "Segmentation",
            PgmFamily::Grids => "Grids",
            PgmFamily::Pedigree => "Pedigree",
            PgmFamily::Csp => "CSP",
        }
    }

    /// Number of instances the paper evaluated for this family.
    pub fn paper_instance_count(self) -> usize {
        match self {
            PgmFamily::Promedas => 28,
            PgmFamily::ObjectDetection => 79,
            PgmFamily::Segmentation => 5,
            PgmFamily::Grids => 8,
            PgmFamily::Pedigree => 3,
            PgmFamily::Csp => 2,
        }
    }

    /// Generates `count` seeded instances of this family, spanning the
    /// family's published size range.
    pub fn instances(self, count: usize, seed: u64) -> Vec<DatasetInstance> {
        (0..count)
            .map(|i| {
                let s = seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9);
                let graph = match self {
                    PgmFamily::Promedas => {
                        // sweep sizes across the 26–1039 node range
                        let scale = 1 + i % 6;
                        pgm::promedas(8 * scale, 24 * scale, 4, s)
                    }
                    PgmFamily::ObjectDetection => pgm::object_detection(s),
                    PgmFamily::Segmentation => pgm::segmentation(s),
                    PgmFamily::Grids => {
                        if i % 2 == 0 {
                            random::grid_with_holes(10, 10, i / 2, s)
                        } else {
                            random::grid_with_holes(20, 20, i / 2, s)
                        }
                    }
                    PgmFamily::Pedigree => pgm::pedigree(s),
                    PgmFamily::Csp => {
                        let n = 67 + (i * 11) % 34; // 67..100
                        let m = 226 + (i * 131) % 394; // 226..619
                        pgm::csp(n, m, s)
                    }
                };
                DatasetInstance {
                    name: format!("{}_{:02}", self.name().replace([' ', '.'], ""), i),
                    graph,
                }
            })
            .collect()
    }
}

/// The random-graph sweep of Section 6.2.2: `n` from 30 to `max_n` in steps
/// of `step`, for `p ∈ {0.3, 0.5, 0.7}` — the paper's 54 graphs use
/// `max_n = 200`.
pub fn random_suite(max_n: usize, step: usize, seed: u64) -> Vec<(f64, DatasetInstance)> {
    let mut out = Vec::new();
    for &p in &[0.3, 0.5, 0.7] {
        let mut n = 30;
        while n <= max_n {
            let s = seed ^ ((n as u64) << 8) ^ ((p * 10.0) as u64);
            out.push((
                p,
                DatasetInstance {
                    name: format!("gnp_n{n}_p{p}"),
                    graph: random::erdos_renyi(n, p, s),
                },
            ));
            n += step;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_requested_count() {
        for fam in PgmFamily::ALL {
            let instances = fam.instances(4, 42);
            assert_eq!(instances.len(), 4);
            for inst in &instances {
                assert!(inst.graph.num_nodes() > 0, "{}", inst.name);
                assert!(inst.graph.num_edges() > 0, "{}", inst.name);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PgmFamily::Promedas.instances(3, 7);
        let b = PgmFamily::Promedas.instances(3, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
        }
    }

    #[test]
    fn random_suite_covers_the_sweep() {
        let suite = random_suite(200, 10, 1);
        assert_eq!(suite.len(), 3 * 18); // 30,40,...,200 per p
        assert!(suite.iter().any(|(p, _)| *p == 0.7));
    }

    #[test]
    fn paper_instance_counts_total_125() {
        let total: usize = PgmFamily::ALL
            .iter()
            .map(|f| f.paper_instance_count())
            .sum();
        assert_eq!(total, 125);
    }

    #[test]
    fn grid_instances_alternate_sizes() {
        let grids = PgmFamily::Grids.instances(4, 0);
        assert_eq!(grids[0].graph.num_nodes(), 100);
        assert_eq!(grids[1].graph.num_nodes(), 400);
        assert_eq!(grids[2].graph.num_nodes(), 100);
    }
}

//! Synthetic stand-ins for the UAI probabilistic-inference benchmarks of
//! Section 6.1.3 (the original network files are not redistributable; see
//! DESIGN.md's substitution table). Each generator reproduces the topology
//! class and published node/edge ranges of its dataset:
//!
//! * **Promedas** — layered noisy-or Bayesian networks (diseases →
//!   findings), moralized; 26–1039 nodes and 36–1696 edges in the paper.
//! * **Object detection** — dense part-based Markov random fields; 60 nodes
//!   and 135–180 edges.
//! * **Image segmentation** — superpixel adjacency meshes; 226–235 nodes,
//!   617–647 edges.
//! * **Pedigree** — moralized inheritance networks; 385 nodes, 930 edges.
//! * **CSP** — random binary constraint networks; 67–100 nodes, 226–619
//!   edges.

use mintri_graph::{Graph, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Promedas-style moralized two-layer noisy-or network: `diseases`
/// parents, `findings` children, each finding wired to a small random
/// parent set; moralization saturates every parent set.
pub fn promedas(diseases: usize, findings: usize, max_parents: usize, seed: u64) -> Graph {
    assert!(max_parents >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = diseases + findings;
    let mut g = Graph::new(n);
    for f in 0..findings {
        let child = (diseases + f) as Node;
        let k = rng.gen_range(1..=max_parents.min(diseases));
        // draw k distinct parents
        let mut parents: Vec<Node> = Vec::with_capacity(k);
        while parents.len() < k {
            let p = rng.gen_range(0..diseases) as Node;
            if !parents.contains(&p) {
                parents.push(p);
            }
        }
        for (i, &p) in parents.iter().enumerate() {
            g.add_edge(child, p);
            // moralization: co-parents become adjacent
            for &q in &parents[i + 1..] {
                g.add_edge(p, q);
            }
        }
    }
    g
}

/// An object-detection-style MRF: `n` part variables arranged on a ring,
/// each connected to its `k` nearest ring neighbors per side, plus
/// `long_range` random chords — a dense, small, cyclic network. With the
/// defaults of [`object_detection`], lands in the paper's 60-node /
/// 135–180-edge envelope.
pub fn ring_mrf(n: usize, k: usize, long_range: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for d in 1..=k {
            g.add_edge(u as Node, ((u + d) % n) as Node);
        }
    }
    let mut added = 0;
    while added < long_range {
        let u = rng.gen_range(0..n) as Node;
        let v = rng.gen_range(0..n) as Node;
        if u != v && g.add_edge(u, v) {
            added += 1;
        }
    }
    g
}

/// The paper-sized object-detection instance: 60 nodes, 135–180 edges.
pub fn object_detection(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let extra = rng.gen_range(15..=55); // 120 ring edges + extra ∈ [135, 175]
    ring_mrf(60, 2, extra, seed.wrapping_add(1))
}

/// An image-segmentation-style network: a triangulated superpixel mesh —
/// a `rows × cols` grid plus one random diagonal per face plus a few
/// boundary pendants. With [`segmentation`]'s defaults: 226–235 nodes,
/// 617–647 edges.
pub fn mesh(rows: usize, cols: usize, pendants: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = rows * cols;
    let mut g = Graph::new(base + pendants);
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                // one diagonal per face, random orientation
                if rng.gen_bool(0.5) {
                    g.add_edge(id(r, c), id(r + 1, c + 1));
                } else {
                    g.add_edge(id(r, c + 1), id(r + 1, c));
                }
            }
        }
    }
    for p in 0..pendants {
        let anchor = rng.gen_range(0..base) as Node;
        g.add_edge((base + p) as Node, anchor);
    }
    g
}

/// The paper-sized segmentation instance: 15×15 mesh + up to 10 pendants.
pub fn segmentation(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pendants = rng.gen_range(1..=10);
    mesh(15, 15, pendants, seed.wrapping_add(1))
}

/// A pedigree-style moralized Bayesian network: `founders` initial
/// individuals, then `children` individuals each with two parents drawn
/// from the preceding population; moralization links the two parents.
/// With [`pedigree`]'s defaults: 385 nodes, ~930 edges.
pub fn pedigree_network(founders: usize, children: usize, seed: u64) -> Graph {
    assert!(founders >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = founders + children;
    let mut g = Graph::new(n);
    for c in 0..children {
        let child = (founders + c) as Node;
        let pool = founders + c; // any earlier individual can be a parent
        let a = rng.gen_range(0..pool) as Node;
        let mut b = rng.gen_range(0..pool) as Node;
        while b == a {
            b = rng.gen_range(0..pool) as Node;
        }
        g.add_edge(child, a);
        g.add_edge(child, b);
        g.add_edge(a, b); // marriage (moral) edge
    }
    g
}

/// The paper-sized pedigree instance: 385 individuals.
pub fn pedigree(seed: u64) -> Graph {
    pedigree_network(35, 350, seed)
}

/// A random binary CSP constraint graph: `n` variables, `m` distinct
/// constraints (edges) drawn uniformly. The paper's instances have 67–100
/// nodes and 226–619 edges.
pub fn csp(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "cannot place {m} edges in a {n}-node graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    while g.num_edges() < m {
        let u = rng.gen_range(0..n) as Node;
        let v = rng.gen_range(0..n) as Node;
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promedas_is_deterministic_and_sized() {
        let g = promedas(40, 80, 4, 11);
        assert_eq!(g, promedas(40, 80, 4, 11));
        assert_eq!(g.num_nodes(), 120);
        assert!(g.num_edges() >= 80, "every finding has at least one parent");
    }

    #[test]
    fn promedas_moralization_creates_parent_cliques() {
        // With max_parents = diseases small, co-parents must be adjacent:
        // check that for every finding, its neighbors among diseases form a clique.
        let diseases = 5;
        let g = promedas(diseases, 20, 3, 5);
        for f in diseases..g.num_nodes() {
            let mut parents = g.neighbors(f as Node).clone();
            let disease_set = mintri_graph::NodeSet::from_iter(g.num_nodes(), 0..diseases as Node);
            parents.intersect_with(&disease_set);
            assert!(g.is_clique(&parents), "parents of {f} must be saturated");
        }
    }

    #[test]
    fn object_detection_matches_paper_envelope() {
        for seed in 0..10 {
            let g = object_detection(seed);
            assert_eq!(g.num_nodes(), 60);
            assert!(
                (135..=180).contains(&g.num_edges()),
                "seed {seed}: {} edges",
                g.num_edges()
            );
        }
    }

    #[test]
    fn segmentation_matches_paper_envelope() {
        for seed in 0..10 {
            let g = segmentation(seed);
            assert!(
                (226..=235).contains(&g.num_nodes()),
                "seed {seed}: {} nodes",
                g.num_nodes()
            );
            assert!(
                (617..=647).contains(&g.num_edges()),
                "seed {seed}: {} edges",
                g.num_edges()
            );
        }
    }

    #[test]
    fn pedigree_matches_paper_envelope() {
        for seed in 0..5 {
            let g = pedigree(seed);
            assert_eq!(g.num_nodes(), 385);
            // 3 edges per child minus collisions with existing marriage edges
            assert!(
                (900..=1050).contains(&g.num_edges()),
                "seed {seed}: {} edges",
                g.num_edges()
            );
        }
    }

    #[test]
    fn csp_has_exact_edge_count() {
        let g = csp(80, 400, 3);
        assert_eq!(g.num_nodes(), 80);
        assert_eq!(g.num_edges(), 400);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn csp_rejects_impossible_density() {
        csp(5, 100, 0);
    }
}

//! Parser for the UAI inference-competition model format — so that the
//! *actual* benchmark networks of Section 6.1.3 (Promedas, grids, pedigree,
//! …) can be loaded when their files are available, complementing the
//! synthetic stand-ins of [`crate::pgm`].
//!
//! The format (MARKOV/BAYES variant): a preamble token, the variable count,
//! the variable cardinalities, the factor count, then one scope per factor
//! (`arity v1 v2 …`). Function tables follow the scopes but are irrelevant
//! for triangulation, so parsing stops after the scopes. The *primal graph*
//! connects every pair of variables sharing a factor scope; for BAYES
//! networks this is exactly the moral graph.

use mintri_graph::{Graph, Node};

/// Parses the preamble + scopes of a `.uai` file into the primal graph.
/// Accepts both `MARKOV` and `BAYES` preambles.
pub fn parse_uai(input: &str) -> Result<Graph, String> {
    let mut tokens = input.split_whitespace();
    let mut next = |what: &str| -> Result<&str, String> {
        tokens
            .next()
            .ok_or_else(|| format!("unexpected end of input, expected {what}"))
    };

    let kind = next("preamble")?;
    if kind != "MARKOV" && kind != "BAYES" {
        return Err(format!("unsupported network type {kind:?}"));
    }
    let n: usize = next("variable count")?
        .parse()
        .map_err(|_| "bad variable count".to_string())?;
    for i in 0..n {
        let card: usize = next("cardinality")?
            .parse()
            .map_err(|_| format!("bad cardinality for variable {i}"))?;
        if card == 0 {
            return Err(format!("variable {i} has cardinality 0"));
        }
    }
    let factors: usize = next("factor count")?
        .parse()
        .map_err(|_| "bad factor count".to_string())?;

    let mut g = Graph::new(n);
    for f in 0..factors {
        let arity: usize = next("factor arity")?
            .parse()
            .map_err(|_| format!("bad arity for factor {f}"))?;
        let mut scope: Vec<Node> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let v: usize = next("scope variable")?
                .parse()
                .map_err(|_| format!("bad scope entry in factor {f}"))?;
            if v >= n {
                return Err(format!("factor {f} references variable {v} >= {n}"));
            }
            scope.push(v as Node);
        }
        for (i, &u) in scope.iter().enumerate() {
            for &v in &scope[i + 1..] {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 grid MRF in UAI MARKOV format: 4 binary variables, 4 pairwise
    /// factors (function tables omitted — the parser stops at the scopes).
    const GRID_2X2: &str = "MARKOV
4
2 2 2 2
4
2 0 1
2 1 3
2 2 3
2 0 2
";

    #[test]
    fn parses_a_grid_mrf() {
        let g = parse_uai(GRID_2X2).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
        assert!(!mintri_chordal::is_chordal(&g)); // it's a C4
    }

    #[test]
    fn bayes_scopes_form_cliques() {
        // a noisy-or style family: child 3 with parents 0, 1, 2 — the scope
        // clique is exactly moralization
        let text = "BAYES\n4\n2 2 2 2\n1\n4 0 1 2 3\n";
        let g = parse_uai(text).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_clique(&mintri_graph::NodeSet::from_iter(4, [0, 1, 2, 3])));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_uai("FACTOR 3").is_err());
        assert!(parse_uai("MARKOV 2 2 2 1 2 0 5").is_err()); // var out of range
        assert!(parse_uai("MARKOV 2 2").is_err()); // truncated
        assert!(parse_uai("MARKOV 1 0 0").is_err()); // zero cardinality
    }

    #[test]
    fn trailing_function_tables_are_ignored() {
        let text = format!("{GRID_2X2}\n4 1.0 0.5 0.5 1.0\n");
        assert!(parse_uai(&text).is_ok());
    }
}

//! Random and regular synthetic graphs: Erdős–Rényi `G(n, p)` and grids
//! (Section 6.1.3's "Random" and "Grids" datasets).

use mintri_graph::{Graph, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Erdős–Rényi `G(n, p)` graph: every pair is an edge independently with
/// probability `p`. Deterministic in `seed`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// An `rows × cols` grid graph (4-neighborhood), the structure of the UAI
/// grid networks. Node `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as Node;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Cycles of the given lengths chained through shared cut vertices —
/// the canonical multi-atom workload: each cut vertex is a clique
/// minimal separator, so the atom decomposition is exactly one atom per
/// cycle and the minimal-triangulation count is the product of the
/// per-cycle Catalan numbers. Used by the planning-layer tests and the
/// `reduction_gain` benchmark (keep them measuring the same family).
pub fn chained_cycles(lengths: &[usize]) -> Graph {
    let n: usize = lengths.iter().map(|l| l - 1).sum::<usize>() + 1;
    let mut g = Graph::new(n);
    let mut anchor = 0 as Node;
    let mut next = 1 as Node;
    for &len in lengths {
        assert!(len >= 3, "a cycle needs at least 3 nodes");
        let mut prev = anchor;
        for _ in 0..len - 1 {
            g.add_edge(prev, next);
            prev = next;
            next += 1;
        }
        g.add_edge(prev, anchor);
        anchor = prev;
    }
    g
}

/// An `n`-cycle plus the single chord `(0, j)` — a cheap family of
/// pairwise distinct non-chordal graphs (vary `j`), used by the serving
/// benchmark's cold-request pool and the engine eviction stress tests
/// (keep them hammering the same family).
pub fn chord_cycle(n: usize, j: Node) -> Graph {
    assert!(
        (2..n as Node - 1).contains(&j),
        "chord (0,{j}) must not be a cycle edge"
    );
    let mut g = Graph::cycle(n);
    g.add_edge(0, j);
    g
}

/// A grid with `holes` random edges removed (still connected retries are
/// *not* attempted; the enumeration stack handles disconnection), used to
/// vary the 8 grid instances of the dataset.
pub fn grid_with_holes(rows: usize, cols: usize, holes: usize, seed: u64) -> Graph {
    let mut g = grid(rows, cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = g.edges();
    for _ in 0..holes.min(edges.len()) {
        let i = rng.gen_range(0..edges.len());
        let (u, v) = edges.swap_remove(i);
        g.remove_edge(u, v);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_is_deterministic_in_seed() {
        let a = erdos_renyi(30, 0.3, 7);
        let b = erdos_renyi(30, 0.3, 7);
        let c = erdos_renyi(30, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn er_edge_counts_are_plausible() {
        let n = 100;
        let g = erdos_renyi(n, 0.5, 1);
        let total = n * (n - 1) / 2;
        let m = g.num_edges();
        // 0.5 ± generous slack
        assert!(m > total / 3 && m < 2 * total / 3, "m = {m} of {total}");
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn grid_shape() {
        let g = grid(10, 10);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 180); // 2 * 10 * 9, matching the paper's N=10 grids
        let g20 = grid(20, 20);
        assert_eq!(g20.num_nodes(), 400);
        assert_eq!(g20.num_edges(), 760);
        assert!(mintri_graph::traversal::is_connected(&g));
    }

    #[test]
    fn grid_neighborhood_structure() {
        let g = grid(3, 4);
        // corner has 2 neighbors, center has 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4); // (1,1)
    }

    #[test]
    fn holes_remove_edges() {
        let g = grid_with_holes(10, 10, 10, 3);
        assert_eq!(g.num_edges(), 170);
        assert_eq!(g.num_nodes(), 100);
    }
}

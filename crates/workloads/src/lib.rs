//! # mintri-workloads — the paper's evaluation workloads
//!
//! Seeded generators for every dataset family of Section 6.1.3:
//!
//! * [`pgm`] — synthetic stand-ins for the UAI probabilistic-inference
//!   benchmarks (Promedas, object detection, segmentation, pedigree, CSP);
//! * [`random`] — Erdős–Rényi `G(n, p)` graphs and grids;
//! * [`tpch`] — the 22 TPC-H queries as join hypergraphs with their primal
//!   graphs;
//! * [`registry`] — named instance suites sized like the paper's tables;
//! * [`uai`] — a parser for real UAI-competition network files.
//!
//! All generators are deterministic in their seed.
//!
//! ```
//! use mintri_workloads::{tpch_query, random::grid, pgm::promedas};
//!
//! // TPC-H Q7, the paper's headline query: a 12-variable cyclic join
//! let q7 = tpch_query(7);
//! assert_eq!(q7.graph.num_nodes(), 12);
//! assert!(!mintri_chordal::is_chordal(&q7.graph));
//!
//! // the paper's 10×10 grid benchmark: 100 nodes, 180 edges
//! let g = grid(10, 10);
//! assert_eq!((g.num_nodes(), g.num_edges()), (100, 180));
//!
//! // a seeded medical-diagnosis-style network
//! let net = promedas(24, 72, 4, 7);
//! assert_eq!(net.num_nodes(), 96);
//! ```

pub mod hypergraph;
pub mod pgm;
pub mod random;
pub mod registry;
pub mod tpch;
pub mod uai;

pub use hypergraph::Hypergraph;
pub use registry::{random_suite, DatasetInstance, PgmFamily};
pub use tpch::{all_queries, tpch_query, TpchQuery};
pub use uai::parse_uai;

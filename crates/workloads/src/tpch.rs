//! The 22 TPC-H benchmark queries as join hypergraphs, and their primal
//! (Gaifman) graphs — the "database queries" dataset of Section 6.1.3.
//!
//! The paper used the LogiQL encodings provided privately by LogicBlox;
//! these hand encodings are derived from the public TPC-H query
//! definitions instead (see DESIGN.md's substitution table). The published
//! shape properties hold: every query graph has at most 23 nodes and at
//! most 46 edges, the largest relation has arity 8, roughly half of the
//! graphs are chordal (a single minimal triangulation), most of the rest
//! have at most a handful of minimal triangulations, and Q7/Q9 are the two
//! outliers with hundreds (the workload tests pin the exact counts).
//!
//! Encoding conventions: one variable per attribute that participates in a
//! join, selection, aggregation or output; one atom per relation occurrence
//! (correlated subqueries repeat relations with fresh variables); derived
//! per-tuple expressions (`volume`, `profit`, disjunctive filters over
//! several variables) become additional atoms over the variables they read,
//! exactly as a Datalog/LogiQL rule body would.

use crate::hypergraph::Hypergraph;
use mintri_graph::Graph;

/// A TPC-H query: its number, the join hypergraph, and the primal graph.
#[derive(Debug, Clone)]
pub struct TpchQuery {
    /// Query number, 1–22.
    pub number: u8,
    /// The join hypergraph.
    pub hypergraph: Hypergraph,
    /// The primal (Gaifman) graph of the hypergraph.
    pub graph: Graph,
}

fn query(number: u8, atoms: &[(&str, &[&str])]) -> TpchQuery {
    let hypergraph = Hypergraph::new(atoms);
    let (graph, _) = hypergraph.primal_graph();
    TpchQuery {
        number,
        hypergraph,
        graph,
    }
}

/// All 22 TPC-H query graphs, in query order.
pub fn all_queries() -> Vec<TpchQuery> {
    vec![
        // Q1: pricing summary report — single scan of lineitem.
        query(
            1,
            &[(
                "lineitem",
                &[
                    "l_rf", "l_ls", "l_qty", "l_ep", "l_disc", "l_tax", "l_sd", "l_ok",
                ],
            )],
        ),
        // Q2: minimum cost supplier; correlated min-cost subquery over the
        // same part.
        query(
            2,
            &[
                ("part", &["p_pk", "p_mfgr", "p_size", "p_type"]),
                ("partsupp", &["p_pk", "s_sk", "ps_cost"]),
                ("supplier", &["s_sk", "s_name", "s_acct", "s_nk"]),
                ("nation", &["s_nk", "n_name", "n_rk"]),
                ("region", &["n_rk", "r_name"]),
                ("partsupp2", &["p_pk", "s_sk2", "ps_cost2"]),
                ("supplier2", &["s_sk2", "s_nk2"]),
                ("nation2", &["s_nk2", "n_rk2"]),
                ("region2", &["n_rk2", "r_name2"]),
                ("minagg", &["ps_cost2", "min_c"]),
                ("mincost", &["ps_cost", "min_c"]),
            ],
        ),
        // Q3: shipping priority — per-tuple revenue plus the group-by head
        // over (orderdate, shippriority).
        query(
            3,
            &[
                ("customer", &["c_ck", "c_mkt"]),
                ("orders", &["o_ok", "c_ck", "o_od", "o_sp"]),
                ("lineitem", &["o_ok", "l_ep", "l_disc", "l_sd"]),
                ("volume", &["l_ep", "l_disc", "l_rev"]),
                ("head", &["o_od", "o_sp", "l_rev"]),
            ],
        ),
        // Q4: order priority checking (EXISTS lineitem).
        query(
            4,
            &[
                ("orders", &["o_ok", "o_od", "o_op"]),
                ("lineitem", &["o_ok", "l_cd", "l_rd"]),
            ],
        ),
        // Q5: local supplier volume — customer and supplier share a nation.
        query(
            5,
            &[
                ("customer", &["c_ck", "n_nk"]),
                ("orders", &["o_ok", "c_ck", "o_od"]),
                ("lineitem", &["o_ok", "s_sk", "l_ep", "l_disc"]),
                ("supplier", &["s_sk", "n_nk"]),
                ("nation", &["n_nk", "n_rk"]),
                ("region", &["n_rk", "r_name"]),
            ],
        ),
        // Q6: forecasting revenue change — single scan.
        query(6, &[("lineitem", &["l_sd", "l_disc", "l_qty", "l_ep"])]),
        // Q7: volume shipping — two nations with a disjunctive cross
        // condition, plus the per-tuple shipping volume/year aggregation.
        query(
            7,
            &[
                ("supplier", &["s_sk", "n1_nk"]),
                ("lineitem", &["l_ok", "s_sk", "l_ep", "l_disc", "l_sd"]),
                ("orders", &["l_ok", "c_ck"]),
                ("customer", &["c_ck", "n2_nk"]),
                ("nation1", &["n1_nk", "n1_name"]),
                ("nation2", &["n2_nk", "n2_name"]),
                ("natpair", &["n1_name", "n2_name"]),
                ("year", &["l_sd", "l_year"]),
                ("volume", &["l_ep", "l_disc", "l_vol"]),
                ("shipping", &["n1_name", "n2_name", "l_year", "l_vol"]),
            ],
        ),
        // Q8: national market share — two nation chains meeting at region /
        // all-nations aggregation.
        query(
            8,
            &[
                ("part", &["p_pk", "p_type"]),
                ("lineitem", &["l_ok", "p_pk", "s_sk", "l_ep", "l_disc"]),
                ("supplier", &["s_sk", "n2_nk"]),
                ("orders", &["l_ok", "c_ck", "o_od"]),
                ("customer", &["c_ck", "n1_nk"]),
                ("nation1", &["n1_nk", "n1_rk"]),
                ("region", &["n1_rk", "r_name"]),
                ("nation2", &["n2_nk", "n2_name"]),
                ("year", &["o_od", "o_year"]),
                ("volume", &["l_ep", "l_disc", "l_vol"]),
                ("head", &["o_year", "l_vol"]),
            ],
        ),
        // Q9: product type profit — lineitem joins part, supplier and
        // partsupp (two paths to the same keys) plus the profit expression.
        query(
            9,
            &[
                ("part", &["p_pk", "p_name"]),
                ("supplier", &["s_sk", "n_nk"]),
                (
                    "lineitem",
                    &["l_ok", "p_pk", "s_sk", "l_qty", "l_ep", "l_disc"],
                ),
                ("partsupp", &["p_pk", "s_sk", "ps_cost"]),
                ("orders", &["l_ok", "o_od"]),
                ("nation", &["n_nk", "n_name"]),
                ("year", &["o_od", "o_year"]),
                (
                    "profit",
                    &["l_ep", "l_disc", "ps_cost", "l_qty", "p_amount"],
                ),
                ("output", &["n_name", "o_year", "p_amount"]),
            ],
        ),
        // Q10: returned item reporting — revenue per customer attributes.
        query(
            10,
            &[
                ("customer", &["c_ck", "c_acct", "n_nk"]),
                ("orders", &["o_ok", "c_ck", "o_od"]),
                ("lineitem", &["o_ok", "l_ep", "l_disc", "l_rf"]),
                ("nation", &["n_nk", "n_name"]),
                ("volume", &["l_ep", "l_disc", "l_rev"]),
                ("head", &["c_acct", "l_rev"]),
            ],
        ),
        // Q11: important stock identification (decorrelated HAVING).
        query(
            11,
            &[
                ("partsupp", &["ps_pk", "s_sk", "ps_cost", "ps_aq"]),
                ("supplier", &["s_sk", "n_nk"]),
                ("nation", &["n_nk", "n_name"]),
                ("value", &["ps_cost", "ps_aq", "v_val"]),
            ],
        ),
        // Q12: shipping modes and order priority.
        query(
            12,
            &[
                ("orders", &["o_ok", "o_op"]),
                ("lineitem", &["o_ok", "l_sm", "l_cd", "l_rd", "l_sd"]),
            ],
        ),
        // Q13: customer distribution (left outer join).
        query(
            13,
            &[
                ("customer", &["c_ck"]),
                ("orders", &["o_ok", "c_ck", "o_cmt"]),
            ],
        ),
        // Q14: promotion effect — the CASE on part type reads the revenue.
        query(
            14,
            &[
                ("lineitem", &["l_ok", "p_pk", "l_ep", "l_disc", "l_sd"]),
                ("part", &["p_pk", "p_type"]),
                ("volume", &["l_ep", "l_disc", "l_rev"]),
                ("promo", &["p_type", "l_rev"]),
            ],
        ),
        // Q15: top supplier (revenue view + max join).
        query(
            15,
            &[
                ("supplier", &["s_sk", "s_name"]),
                ("revenue", &["s_sk", "r_total"]),
                ("maxrev", &["r_total"]),
            ],
        ),
        // Q16: parts/supplier relationship (NOT IN supplier).
        query(
            16,
            &[
                ("partsupp", &["p_pk", "s_sk"]),
                ("part", &["p_pk", "p_brand", "p_type", "p_size"]),
                ("badsupp", &["s_sk"]),
            ],
        ),
        // Q17: small-quantity-order revenue (correlated AVG over the same
        // part).
        query(
            17,
            &[
                ("lineitem", &["l_ok", "p_pk", "l_qty", "l_ep"]),
                ("part", &["p_pk", "p_brand", "p_cont"]),
                ("lineitem2", &["p_pk", "l_qty2"]),
                ("threshold", &["l_qty", "l_qty2"]),
            ],
        ),
        // Q18: large volume customer (HAVING sum(qty), output per customer
        // name).
        query(
            18,
            &[
                ("customer", &["c_ck", "c_name"]),
                ("orders", &["o_ok", "c_ck", "o_od", "o_tp"]),
                ("lineitem", &["o_ok", "l_qty"]),
                ("bigsum", &["o_ok", "l_sum"]),
                ("head", &["c_name", "l_sum"]),
            ],
        ),
        // Q19: discounted revenue — disjunction over part and lineitem
        // attributes together.
        query(
            19,
            &[
                (
                    "lineitem",
                    &["l_ok", "p_pk", "l_qty", "l_ep", "l_disc", "l_sm"],
                ),
                ("part", &["p_pk", "p_brand", "p_cont", "p_size"]),
                (
                    "disjunct",
                    &["p_brand", "p_cont", "p_size", "l_qty", "l_sm"],
                ),
            ],
        ),
        // Q20: potential part promotion (nested IN over partsupp/lineitem).
        query(
            20,
            &[
                ("supplier", &["s_sk", "s_name", "n_nk"]),
                ("nation", &["n_nk", "n_name"]),
                ("partsupp", &["p_pk", "s_sk", "ps_aq"]),
                ("part", &["p_pk", "p_name"]),
                ("lineitem", &["p_pk", "s_sk", "l_qty", "l_sd"]),
                ("halfsum", &["ps_aq", "l_qty"]),
            ],
        ),
        // Q21: suppliers who kept orders waiting (EXISTS / NOT EXISTS on the
        // same order with different suppliers).
        query(
            21,
            &[
                ("supplier", &["s_sk", "s_name", "n_nk"]),
                ("lineitem1", &["l_ok", "s_sk", "l_rd1", "l_cd1"]),
                ("orders", &["l_ok", "o_st"]),
                ("nation", &["n_nk", "n_name"]),
                ("lineitem2", &["l_ok", "s_sk2"]),
                ("lineitem3", &["l_ok", "s_sk3", "l_rd3", "l_cd3"]),
            ],
        ),
        // Q22: global sales opportunity.
        query(
            22,
            &[
                ("customer", &["c_ck", "c_phone", "c_acct"]),
                ("orders", &["o_ok", "c_ck"]),
                ("avgbal", &["a_avg"]),
                ("cmp", &["c_acct", "a_avg"]),
            ],
        ),
    ]
}

/// A single query by number (1–22).
pub fn tpch_query(number: u8) -> TpchQuery {
    assert!((1..=22).contains(&number), "TPC-H queries are 1–22");
    all_queries().swap_remove(number as usize - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_chordal::is_chordal;

    #[test]
    fn there_are_22_queries_in_order() {
        let qs = all_queries();
        assert_eq!(qs.len(), 22);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.number as usize, i + 1);
        }
    }

    #[test]
    fn shape_bounds_match_the_paper() {
        for q in all_queries() {
            assert!(
                q.graph.num_nodes() <= 23,
                "Q{}: {} nodes",
                q.number,
                q.graph.num_nodes()
            );
            assert!(
                q.graph.num_edges() <= 46,
                "Q{}: {} edges",
                q.number,
                q.graph.num_edges()
            );
            assert!(q.hypergraph.max_arity() <= 8, "Q{}", q.number);
        }
    }

    #[test]
    fn roughly_half_the_queries_are_chordal() {
        let chordal = all_queries()
            .iter()
            .filter(|q| is_chordal(&q.graph))
            .count();
        assert!(
            (10..=14).contains(&chordal),
            "{chordal} of 22 queries are chordal"
        );
    }

    #[test]
    fn q7_and_q9_are_the_two_outliers() {
        // Section 6.2.3's shape: all non-chordal queries except Q7 and Q9
        // have at most a handful of minimal triangulations; Q7 and Q9 have
        // hundreds.
        for q in all_queries() {
            let count = mintri_core::MinimalTriangulationsEnumerator::new(&q.graph)
                .take(2000)
                .count();
            match q.number {
                7 | 9 => assert!(count >= 100, "Q{} has only {count}", q.number),
                _ => assert!(count <= 5, "Q{} has {count}", q.number),
            }
        }
    }

    #[test]
    fn chordal_queries_have_one_triangulation() {
        for q in all_queries() {
            if is_chordal(&q.graph) {
                assert_eq!(
                    mintri_core::MinimalTriangulationsEnumerator::new(&q.graph).count(),
                    1,
                    "Q{}",
                    q.number
                );
            }
        }
    }

    #[test]
    fn single_query_accessor() {
        let q7 = tpch_query(7);
        assert_eq!(q7.number, 7);
        assert!(!is_chordal(&q7.graph));
    }

    #[test]
    #[should_panic(expected = "1–22")]
    fn query_numbers_are_validated() {
        tpch_query(0);
    }
}

//! Hypergraphs (relational atoms over named variables) and their primal
//! (Gaifman) graphs — how the TPC-H join queries of Section 6.1.3 become
//! graphs to triangulate.

use mintri_graph::{Graph, Node};
use std::collections::BTreeMap;

/// A named hypergraph: each atom is a relation name plus its variables.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    /// `(relation, variables)` pairs.
    pub atoms: Vec<(String, Vec<String>)>,
}

impl Hypergraph {
    /// Builds from `(relation, vars)` literals.
    pub fn new(atoms: &[(&str, &[&str])]) -> Self {
        Hypergraph {
            atoms: atoms
                .iter()
                .map(|(r, vs)| (r.to_string(), vs.iter().map(|v| v.to_string()).collect()))
                .collect(),
        }
    }

    /// All distinct variables, in first-appearance order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = BTreeMap::new();
        let mut order = Vec::new();
        for (_, vs) in &self.atoms {
            for v in vs {
                if seen.insert(v.clone(), ()).is_none() {
                    order.push(v.clone());
                }
            }
        }
        order
    }

    /// The primal (Gaifman) graph: one node per variable, an edge between
    /// every two variables sharing an atom. Returns the graph and the node
    /// index of each variable.
    pub fn primal_graph(&self) -> (Graph, BTreeMap<String, Node>) {
        let vars = self.variables();
        let index: BTreeMap<String, Node> = vars
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as Node))
            .collect();
        let mut g = Graph::new(vars.len());
        for (_, vs) in &self.atoms {
            for (i, a) in vs.iter().enumerate() {
                for b in &vs[i + 1..] {
                    let (u, v) = (index[a], index[b]);
                    if u != v {
                        g.add_edge(u, v);
                    }
                }
            }
        }
        (g, index)
    }

    /// The largest atom arity (distinct variables per atom).
    pub fn max_arity(&self) -> usize {
        self.atoms
            .iter()
            .map(|(_, vs)| {
                let mut d = vs.clone();
                d.sort();
                d.dedup();
                d.len()
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_query() {
        // R(a,b), S(b,c), T(c,a): the classic triangle join
        let h = Hypergraph::new(&[("R", &["a", "b"]), ("S", &["b", "c"]), ("T", &["c", "a"])]);
        let (g, idx) = h.primal_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(idx["a"], idx["b"]));
    }

    #[test]
    fn atoms_become_cliques() {
        let h = Hypergraph::new(&[("R", &["a", "b", "c", "d"])]);
        let (g, _) = h.primal_graph();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(h.max_arity(), 4);
    }

    #[test]
    fn shared_variables_are_single_nodes() {
        let h = Hypergraph::new(&[("R", &["x", "y"]), ("S", &["y", "z"])]);
        let (g, _) = h.primal_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(h.variables(), vec!["x", "y", "z"]);
    }

    #[test]
    fn repeated_variables_in_an_atom() {
        let h = Hypergraph::new(&[("R", &["x", "x", "y"])]);
        let (g, _) = h.primal_graph();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(h.max_arity(), 2);
    }
}

//! Property tests for the workload generators: structural invariants that
//! every generated instance must satisfy regardless of seed.

use mintri_graph::NodeSet;
use mintri_workloads::hypergraph::Hypergraph;
use mintri_workloads::{pgm, random};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn erdos_renyi_respects_bounds(n in 1usize..40, seed in any::<u64>()) {
        let g = random::erdos_renyi(n, 0.4, seed);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    #[test]
    fn grids_are_connected_and_bipartite_sized(r in 2usize..8, c in 2usize..8) {
        let g = random::grid(r, c);
        prop_assert_eq!(g.num_nodes(), r * c);
        prop_assert_eq!(g.num_edges(), r * (c - 1) + c * (r - 1));
        prop_assert!(mintri_graph::traversal::is_connected(&g));
    }

    #[test]
    fn promedas_findings_have_parents(d in 2usize..10, f in 1usize..30, seed in any::<u64>()) {
        let g = pgm::promedas(d, f, 3, seed);
        prop_assert_eq!(g.num_nodes(), d + f);
        // every finding node has at least one disease neighbor
        for finding in d..(d + f) {
            let nbrs = g.neighbors(finding as u32);
            let diseases = NodeSet::from_iter(d + f, 0..d as u32);
            prop_assert!(nbrs.intersects(&diseases), "finding {finding} is orphaned");
        }
    }

    #[test]
    fn pedigree_children_have_two_parents(seed in any::<u64>()) {
        let founders = 5;
        let g = pgm::pedigree_network(founders, 20, seed);
        for child in founders..g.num_nodes() {
            // at least 2 neighbors among strictly earlier individuals
            let earlier = NodeSet::from_iter(g.num_nodes(), 0..child as u32);
            prop_assert!(g.neighbors(child as u32).intersection_len(&earlier) >= 2);
        }
    }

    #[test]
    fn csp_meets_exact_edge_budget(n in 10usize..40, seed in any::<u64>()) {
        let m = n; // sparse enough to always fit
        let g = pgm::csp(n, m, seed);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn primal_graphs_saturate_atoms(vars in 2usize..6, atoms in 1usize..4) {
        // build a hypergraph over variables v0..v_{vars-1} with `atoms`
        // rotating scopes; every atom must induce a clique
        let names: Vec<String> = (0..vars).map(|i| format!("v{i}")).collect();
        let scopes: Vec<(String, Vec<String>)> = (0..atoms)
            .map(|a| {
                let scope: Vec<String> =
                    (0..=a.min(vars - 1)).map(|i| names[(a + i) % vars].clone()).collect();
                (format!("R{a}"), scope)
            })
            .collect();
        let h = Hypergraph {
            atoms: scopes,
        };
        let (g, idx) = h.primal_graph();
        for (_, scope) in &h.atoms {
            let set = NodeSet::from_iter(
                g.num_nodes(),
                scope.iter().map(|v| idx[v]),
            );
            prop_assert!(g.is_clique(&set));
        }
    }
}

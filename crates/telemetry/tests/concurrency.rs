//! Concurrency contract of the metric primitives: eight threads hammer
//! shared counters, gauges and histograms, and the quiescent totals are
//! *exact* — every increment lands, no torn reads, no lost updates.

use mintri_telemetry::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 8;
const OPS: u64 = 50_000;

#[test]
fn eight_threads_hammering_one_counter_total_is_exact() {
    let counter = Arc::new(Counter::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                for i in 0..OPS {
                    // mix of inc and add so both entry points are raced
                    if (i + t as u64).is_multiple_of(2) {
                        counter.inc();
                    } else {
                        counter.add(2);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // each thread contributes OPS/2 * 1 + OPS/2 * 2
    assert_eq!(counter.get(), THREADS as u64 * (OPS / 2) * 3);
}

#[test]
fn eight_threads_hammering_one_histogram_count_and_sum_are_exact() {
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                let mut local_sum = 0u64;
                for i in 0..OPS {
                    // spread values across many buckets
                    let v = (i % 20) * (t as u64 + 1) + 1;
                    hist.record(v);
                    local_sum += v;
                }
                local_sum
            })
        })
        .collect();
    let expected_sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(hist.count(), THREADS as u64 * OPS);
    assert_eq!(hist.sum(), expected_sum);
    // snapshot agrees with the live view once quiescent
    let snap = hist.snapshot();
    assert_eq!(snap.count(), hist.count());
    assert_eq!(snap.sum, hist.sum());
    assert_eq!(snap.counts.len(), HISTOGRAM_BUCKETS);
}

#[test]
fn gauge_adds_and_subs_balance_out_across_threads() {
    let gauge = Arc::new(Gauge::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let gauge = Arc::clone(&gauge);
            thread::spawn(move || {
                for _ in 0..OPS {
                    gauge.add(3);
                    gauge.sub(3);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(gauge.get(), 0);
}

#[test]
fn registry_get_or_create_is_thread_safe_and_returns_one_series() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // every thread re-registers the same families, then writes
                let c = registry.counter_with("shared_total", "shared", &[("who", "test")]);
                let h = registry.histogram("shared_us", "shared latency");
                for i in 0..OPS {
                    c.inc();
                    h.record(i % 100 + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let c = registry.counter_with("shared_total", "shared", &[("who", "test")]);
    assert_eq!(c.get(), THREADS as u64 * OPS, "all threads hit one series");
    assert_eq!(
        registry.histogram("shared_us", "").count(),
        THREADS as u64 * OPS
    );
    // and the rendered exposition reflects the exact totals
    let text = registry.render_prometheus();
    assert!(text.contains(&format!(
        "shared_total{{who=\"test\"}} {}",
        THREADS as u64 * OPS
    )));
    assert!(text.contains(&format!("shared_us_count {}", THREADS as u64 * OPS)));
}

//! Property tests pinning the Prometheus text exposition round trip:
//! whatever family/label/value mix the registry is fed, every line it
//! renders parses back, and the parsed samples agree with the live
//! metric values.

use mintri_telemetry::{promtext, Registry};
use proptest::prelude::*;

/// A valid metric-name fragment (the grammar the registry enforces).
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..27, 1..12).prop_map(|picks| {
        let mut s = String::from("m_");
        for p in picks {
            let c = if p == 26 {
                '_'
            } else {
                (b'a' + p as u8) as char
            };
            s.push(c);
        }
        s
    })
}

/// Arbitrary label values, including escape-worthy characters.
fn label_value_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just('/'),
            Just(' '),
            Just('\\'),
            Just('"'),
            Just('\n'),
            Just('{'),
            Just('}'),
            Just(','),
            Just('λ'),
        ],
        0..16,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

#[derive(Debug, Clone)]
enum Entry {
    Counter {
        name: String,
        label: Option<String>,
        value: u64,
    },
    Gauge {
        name: String,
        value: i64,
    },
    Histogram {
        name: String,
        samples: Vec<u64>,
    },
}

fn entry_strategy() -> impl Strategy<Value = Entry> {
    prop_oneof![
        (
            name_strategy(),
            prop_oneof![Just(None), label_value_strategy().prop_map(Some)],
            any::<u64>()
        )
            .prop_map(|(name, label, value)| Entry::Counter {
                name: format!("c_{name}"),
                label,
                value: value % 1_000_000,
            }),
        (name_strategy(), any::<i64>()).prop_map(|(name, value)| Entry::Gauge {
            name: format!("g_{name}"),
            value: value % 1_000_000,
        }),
        (
            name_strategy(),
            proptest::collection::vec(0u64..200_000_000, 0..20)
        )
            .prop_map(|(name, samples)| Entry::Histogram {
                name: format!("h_{name}"),
                samples
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_rendered_line_parses_and_values_agree(entries in proptest::collection::vec(entry_strategy(), 0..8)) {
        let registry = Registry::new();
        for e in &entries {
            match e {
                Entry::Counter { name, label, value } => {
                    let c = match label {
                        Some(v) => registry.counter_with(name, "a counter", &[("tag", v)]),
                        None => registry.counter(name, "a counter"),
                    };
                    c.add(*value);
                }
                Entry::Gauge { name, value } => {
                    registry.gauge(name, "a gauge").set(*value);
                }
                Entry::Histogram { name, samples } => {
                    let h = registry.histogram(name, "a histogram");
                    for s in samples {
                        h.record(*s);
                    }
                }
            }
        }

        let text = registry.render_prometheus();
        let samples = promtext::parse(&text)
            .unwrap_or_else(|e| panic!("render must parse: {e}\n---\n{text}"));

        for e in &entries {
            match e {
                Entry::Counter { name, label, .. } => {
                    let sample = samples
                        .iter()
                        .find(|s| {
                            s.name == *name
                                && s.labels.iter().map(|(_, v)| v.clone()).next()
                                    == label.clone()
                        })
                        .unwrap_or_else(|| panic!("missing counter {name}"));
                    // the same (name, labels) may appear in several generated
                    // entries; the registry merges them, so compare to the
                    // live metric rather than the raw entry value
                    let live = match label {
                        Some(v) => registry.counter_with(name, "", &[("tag", v)]),
                        None => registry.counter(name, ""),
                    };
                    prop_assert_eq!(sample.value, live.get() as f64);
                    if let Some(v) = label {
                        prop_assert_eq!(sample.label("tag"), Some(v.as_str()));
                    }
                }
                Entry::Gauge { name, .. } => {
                    let sample = samples.iter().find(|s| s.name == *name)
                        .unwrap_or_else(|| panic!("missing gauge {name}"));
                    prop_assert_eq!(sample.value, registry.gauge(name, "").get() as f64);
                }
                Entry::Histogram { name, .. } => {
                    let live = registry.histogram(name, "");
                    let count_name = format!("{name}_count");
                    let sum_name = format!("{name}_sum");
                    let bucket_name = format!("{name}_bucket");
                    let count = samples.iter().find(|s| s.name == count_name)
                        .unwrap_or_else(|| panic!("missing {count_name}"));
                    prop_assert_eq!(count.value, live.count() as f64);
                    let sum = samples.iter().find(|s| s.name == sum_name)
                        .unwrap_or_else(|| panic!("missing {sum_name}"));
                    prop_assert_eq!(sum.value, live.sum() as f64);
                    // buckets are cumulative, monotone, and end at count
                    let buckets: Vec<f64> = samples
                        .iter()
                        .filter(|s| s.name == bucket_name)
                        .map(|s| s.value)
                        .collect();
                    prop_assert!(!buckets.is_empty());
                    for pair in buckets.windows(2) {
                        prop_assert!(pair[0] <= pair[1], "cumulative buckets are monotone");
                    }
                    prop_assert_eq!(*buckets.last().unwrap(), count.value);
                    let last = samples.iter().rfind(|s| s.name == bucket_name).unwrap();
                    prop_assert_eq!(last.label("le"), Some("+Inf"));
                }
            }
        }
    }
}

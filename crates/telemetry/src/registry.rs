//! The metrics registry: named families of [`Counter`]/[`Gauge`]/
//! [`Histogram`] series, rendered in the Prometheus text exposition
//! format — plus [`promtext`], a parser for that format so tests can pin
//! "everything we emit parses back".
//!
//! Registration takes the registry lock once and hands back an `Arc`
//! handle; after that, hot paths touch only the metric's own atomics.
//! The lock is never held while user code runs (the workspace
//! invariant: no telemetry lock is held across enumeration).

use crate::metrics::{bucket_le, Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Label pairs as given at registration time.
pub type Labels = Vec<(String, String)>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Labels,
    metric: Metric,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A registry of metric families. Get-or-create semantics: asking for
/// the same `(name, labels)` twice returns the same underlying metric,
/// so layers can share one registry without coordinating registration
/// order. Registering one name as two different kinds is a programming
/// error and panics.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// `true` for names matching the Prometheus metric/label grammar
/// (`[a-zA-Z_][a-zA-Z0-9_]*`; the optional colon is reserved for rules,
/// so this stack never emits it).
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    #[allow(clippy::too_many_arguments)]
    fn get_or_create<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        fresh: impl FnOnce() -> Arc<T>,
        pick: impl Fn(&Metric) -> Option<Arc<T>>,
        wrap: impl FnOnce(Arc<T>) -> Metric,
    ) -> Arc<T> {
        assert!(valid_name(name), "invalid metric name {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "invalid label name in {labels:?}"
        );
        let labels: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap();
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            assert!(
                family.kind == kind,
                "metric {name:?} registered as {} and {}",
                family.kind.name(),
                kind.name()
            );
            if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
                return pick(&series.metric).expect("kind verified above");
            }
            let metric = fresh();
            family.series.push(Series {
                labels,
                metric: wrap(Arc::clone(&metric)),
            });
            return metric;
        }
        let metric = fresh();
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            series: vec![Series {
                labels,
                metric: wrap(Arc::clone(&metric)),
            }],
        });
        metric
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_create(
            name,
            help,
            labels,
            Kind::Counter,
            || Arc::new(Counter::new()),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            Metric::Counter,
        )
    }

    /// The unlabeled gauge `name`, created on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_create(
            name,
            help,
            labels,
            Kind::Gauge,
            || Arc::new(Gauge::new()),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            Metric::Gauge,
        )
    }

    /// The unlabeled histogram `name`, created on first use.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        self.get_or_create(
            name,
            help,
            labels,
            Kind::Histogram,
            || Arc::new(Histogram::new()),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            Metric::Histogram,
        )
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` comments per family, one
    /// sample line per counter/gauge series, and the cumulative
    /// `_bucket{le=…}` / `_sum` / `_count` triplet per histogram series.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap();
        let mut out = String::new();
        for family in families.iter() {
            if !family.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            }
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.name());
            for series in &family.series {
                match &series.metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            c.get()
                        );
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            g.get()
                        );
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for i in 0..HISTOGRAM_BUCKETS {
                            cum += snap.counts[i];
                            let le = match bucket_le(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                family.name,
                                render_labels(&series.labels, Some(&le)),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            snap.sum
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            family.name,
                            render_labels(&series.labels, None),
                            cum
                        );
                    }
                }
            }
        }
        out
    }
}

/// Renders `{k="v",…,le="…"}`, or nothing when there are no labels.
fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and line feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a HELP text: backslash and line feed (quotes stay verbatim).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A parser for the Prometheus text exposition format — the other half
/// of [`Registry::render_prometheus`], used by tests and smoke checks to
/// assert that every emitted line is well-formed and to read sample
/// values back out.
pub mod promtext {
    use super::valid_name;

    /// One parsed sample line.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Sample {
        /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
        pub name: String,
        /// Label pairs in source order.
        pub labels: Vec<(String, String)>,
        /// The sample value (`+Inf`/`-Inf`/`NaN` accepted).
        pub value: f64,
    }

    impl Sample {
        /// The first value of label `key`.
        pub fn label(&self, key: &str) -> Option<&str> {
            self.labels
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Parses a full exposition document: every non-comment, non-blank
    /// line must be a valid sample, every `#` line a well-formed `HELP`
    /// or `TYPE` comment. Returns the samples, or a message naming the
    /// offending line.
    pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                parse_comment(comment).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                continue;
            }
            samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(samples)
    }

    fn parse_comment(rest: &str) -> Result<(), String> {
        let rest = rest.trim_start();
        if let Some(help) = rest.strip_prefix("HELP ") {
            let name = help.split(' ').next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("HELP names invalid metric {name:?}"));
            }
            return Ok(());
        }
        if let Some(ty) = rest.strip_prefix("TYPE ") {
            let mut parts = ty.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !valid_name(name) {
                return Err(format!("TYPE names invalid metric {name:?}"));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("unknown TYPE {kind:?}"));
            }
            return Ok(());
        }
        // Other comments are allowed by the format and carry no samples.
        Ok(())
    }

    fn parse_sample(line: &str) -> Result<Sample, String> {
        let bytes = line.as_bytes();
        let mut pos = 0;
        while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
            pos += 1;
        }
        let name = &line[..pos];
        if !valid_name(name) {
            return Err(format!("invalid metric name in {line:?}"));
        }
        let mut labels = Vec::new();
        if pos < bytes.len() && bytes[pos] == b'{' {
            pos += 1;
            loop {
                if pos >= bytes.len() {
                    return Err("unterminated label set".into());
                }
                if bytes[pos] == b'}' {
                    pos += 1;
                    break;
                }
                let key_start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let key = &line[key_start..pos];
                if !valid_name(key) {
                    return Err(format!("invalid label name in {line:?}"));
                }
                if bytes.get(pos) != Some(&b'=') || bytes.get(pos + 1) != Some(&b'"') {
                    return Err(format!("expected ={{\"}} after label {key:?}"));
                }
                pos += 2;
                let mut value = String::new();
                loop {
                    match bytes.get(pos) {
                        None => return Err("unterminated label value".into()),
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            pos += 1;
                            match bytes.get(pos) {
                                Some(b'\\') => value.push('\\'),
                                Some(b'"') => value.push('"'),
                                Some(b'n') => value.push('\n'),
                                _ => return Err("invalid escape in label value".into()),
                            }
                            pos += 1;
                        }
                        Some(_) => {
                            // Step one UTF-8 scalar, not one byte.
                            let rest = &line[pos..];
                            let c = rest.chars().next().unwrap();
                            value.push(c);
                            pos += c.len_utf8();
                        }
                    }
                }
                labels.push((key.to_string(), value));
                match bytes.get(pos) {
                    Some(b',') => pos += 1,
                    Some(b'}') => {}
                    _ => return Err("expected `,` or `}` in label set".into()),
                }
            }
        }
        let rest = line[pos..].trim();
        let mut parts = rest.split_whitespace();
        let value_text = parts.next().ok_or("missing sample value")?;
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            t => t
                .parse::<f64>()
                .map_err(|_| format!("invalid sample value {t:?}"))?,
        };
        // An optional timestamp may follow; anything further is garbage.
        if let Some(ts) = parts.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("invalid timestamp {ts:?}"))?;
        }
        if parts.next().is_some() {
            return Err(format!("trailing garbage in {line:?}"));
        }
        Ok(Sample {
            name: name.to_string(),
            labels,
            value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("requests_total", "requests");
        let b = r.counter("requests_total", "requests");
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), 3);
        // distinct labels are distinct series
        let c = r.counter_with("requests_total", "requests", &[("endpoint", "/x")]);
        c.add(10);
        assert_eq!(a.get(), 3);
        assert_eq!(c.get(), 10);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("thing", "");
        let _ = r.gauge("thing", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        let _ = Registry::new().counter("bad-name", "");
    }

    #[test]
    fn render_includes_every_kind_and_parses_back() {
        let r = Registry::new();
        r.counter_with("hits_total", "hit count", &[("endpoint", "/v1/query")])
            .add(7);
        r.gauge("live_sessions", "live").set(3);
        r.histogram("latency_microseconds", "request latency")
            .record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"));
        assert!(text.contains("hits_total{endpoint=\"/v1/query\"} 7"));
        assert!(text.contains("# TYPE live_sessions gauge"));
        assert!(text.contains("# TYPE latency_microseconds histogram"));
        assert!(text.contains("latency_microseconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("latency_microseconds_sum 100"));
        assert!(text.contains("latency_microseconds_count 1"));

        let samples = promtext::parse(&text).expect("our own rendering must parse");
        let hit = samples.iter().find(|s| s.name == "hits_total").unwrap();
        assert_eq!(hit.value, 7.0);
        assert_eq!(hit.label("endpoint"), Some("/v1/query"));
        // Histogram buckets are cumulative and end at the count.
        let buckets: Vec<&promtext::Sample> = samples
            .iter()
            .filter(|s| s.name == "latency_microseconds_bucket")
            .collect();
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        let mut prev = 0.0;
        for b in &buckets {
            assert!(b.value >= prev, "bucket counts are cumulative");
            prev = b.value;
        }
        assert_eq!(buckets.last().unwrap().value, 1.0);
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
    }

    #[test]
    fn label_values_escape_and_round_trip() {
        let r = Registry::new();
        let hostile = "we\\ird\"value\nwith everything";
        r.counter_with("odd_total", "", &[("k", hostile)]).inc();
        let text = r.render_prometheus();
        let samples = promtext::parse(&text).unwrap();
        let s = samples.iter().find(|s| s.name == "odd_total").unwrap();
        assert_eq!(s.label("k"), Some(hostile));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "1leading_digit 3",
            "name{unterminated=\"x 3",
            "name{k=\"v\"",
            "name{k=v} 3",
            "name",
            "name notanumber",
            "name 3 4 5",
            "name{k=\"\\q\"} 1",
        ] {
            assert!(promtext::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // but valid corner cases pass
        assert!(
            promtext::parse("x 3 1700000000000").is_ok(),
            "timestamps are legal"
        );
        assert!(promtext::parse("x{} 3").is_ok(), "empty label set is legal");
        assert!(promtext::parse("# arbitrary comment\nx 1").is_ok());
    }
}

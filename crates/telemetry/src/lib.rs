//! Zero-dependency observability primitives for the mintri workspace.
//!
//! Three pieces, composable and individually small:
//!
//! - [`metrics`] — lock-striped [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log-scale [`Histogram`]s with p50/p95/p99 extraction.
//!   Recording is a handful of `Relaxed` atomic ops; aggregation cost is
//!   paid by the reader.
//! - [`registry`] — a named [`Registry`] of metric families rendered in
//!   the Prometheus text exposition format (plus [`registry::promtext`],
//!   a parser for that format so tests can pin render → parse).
//! - [`trace`] — opt-in per-query span trees: a [`TraceBuilder`] handed
//!   down through the layers, [`SpanHandle`]s opened and finished per
//!   stage, frozen into an immutable [`TraceNode`] tree on completion.
//!
//! The workspace invariant this crate exists to uphold: **telemetry is
//! write-only from hot paths**. Enumeration loops touch only atomics;
//! the registry lock is taken at registration time (returning `Arc`
//! handles) and at render time, never while results are being produced;
//! tracing is per-query opt-in and its brief span-list lock is held only
//! around a `Vec` push.

pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_le, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::{promtext, Labels, Registry};
pub use trace::{SpanHandle, TraceBuilder, TraceNode};

//! The three metric primitives: [`Counter`], [`Gauge`] and [`Histogram`].
//!
//! All three are plain clusters of atomics — recording is a handful of
//! `Relaxed` fetch-adds, never a lock — which is what lets the hot
//! enumeration paths carry them (the workspace invariant: telemetry is
//! *write-only* from hot paths; aggregation cost is paid by the reader).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Stripes per [`Counter`]. A power of two so the stripe pick is a mask.
const STRIPES: usize = 16;

/// One cache line per stripe, so two cores bumping the same counter
/// don't ping-pong a shared line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

/// The calling thread's stripe: assigned round-robin on first use, so
/// up to [`STRIPES`] concurrent writers touch distinct cache lines.
fn stripe_index() -> usize {
    thread_local! {
        static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s) & (STRIPES - 1)
}

/// A monotonically increasing counter, lock-striped across cache-padded
/// atomics. [`Counter::add`] is wait-free; [`Counter::get`] sums the
/// stripes (reads may race writes, but every increment lands in exactly
/// one stripe, so quiescent totals are exact — no torn reads).
#[derive(Default)]
pub struct Counter {
    stripes: [PaddedCell; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the calling thread's stripe.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total (sum over stripes).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A settable signed value (live sessions, active connections, worker
/// count). One atomic — gauges are low-frequency by nature.
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// Bucket count of every [`Histogram`]: boundaries `le = 2^0 … 2^26`
/// microseconds (1 µs to ~67 s) plus the final `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// The bucket a value lands in: the smallest `i` with `v <= 2^i`,
/// clamped into the `+Inf` bucket past the last finite boundary.
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let i = 64 - (v - 1).leading_zeros() as usize; // ceil(log2(v))
    i.min(HISTOGRAM_BUCKETS - 1)
}

/// The inclusive upper bound (`le`) of bucket `i`, `None` for `+Inf`.
pub fn bucket_le(i: usize) -> Option<u64> {
    (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
}

/// A fixed-bucket, log-scale latency histogram over microsecond values:
/// power-of-two boundaries from 1 µs to ~67 s, one atomic fetch-add per
/// [`Histogram::record`]. Percentiles come from
/// [`HistogramSnapshot::quantile`] with log-linear interpolation inside
/// the winning bucket, so the p50/p95/p99 estimates carry at most one
/// octave of bucket error.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (microseconds by convention).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in counts.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// The `q`-quantile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// An immutable copy of a [`Histogram`]'s state; what renderers and
/// percentile extraction work from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts.
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q ∈ [0, 1]` quantile estimate: finds the bucket holding the
    /// target rank and interpolates linearly between its bounds (the
    /// `+Inf` bucket reports its finite lower bound). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let below = cum;
            cum += c;
            if cum >= target {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = bucket_le(i).unwrap_or(lower);
                let frac = (target - below) as f64 / c as f64;
                return Some(lower + ((upper - lower) as f64 * frac).round() as u64);
            }
        }
        None
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_adds_and_subtracts() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
        g.sub(20);
        assert_eq!(g.get(), -12, "gauges go negative without clamping");
    }

    #[test]
    fn bucket_boundaries_bracket_every_value() {
        // Every value must satisfy lower < v <= le for its bucket (the
        // defining property of the `le` exposition).
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            9,
            1000,
            1 << 20,
            (1 << 26) - 1,
            1 << 26,
        ] {
            let i = bucket_index(v);
            let le = bucket_le(i).expect("finite bucket");
            assert!(v <= le, "v={v} bucket={i} le={le}");
            if i > 0 {
                let lower = 1u64 << (i - 1);
                assert!(v > lower, "v={v} bucket={i} lower={lower}");
            }
        }
        // Past the last finite boundary everything lands in +Inf.
        assert_eq!(bucket_index((1 << 26) + 1), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert!(bucket_le(HISTOGRAM_BUCKETS - 1).is_none());
    }

    #[test]
    fn bucket_boundaries_are_strictly_increasing_powers_of_two() {
        let mut prev = 0u64;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let le = bucket_le(i).unwrap();
            assert!(le > prev);
            assert!(le.is_power_of_two());
            prev = le;
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let h = Histogram::new();
        assert!(
            h.quantile(0.5).is_none(),
            "empty histogram has no quantiles"
        );
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1111);
        h.record_duration(Duration::from_millis(2));
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1111 + 2000);
    }

    #[test]
    fn quantiles_of_a_point_mass_stay_in_its_bucket() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(10);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            // 10 lands in bucket (8, 16]; every estimate must too.
            assert!((8..=16).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn quantiles_of_a_uniform_range_are_octave_accurate() {
        let h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.p50().unwrap();
        let p95 = s.p95().unwrap();
        let p99 = s.p99().unwrap();
        // True values 512 / ~973 / ~1014; log buckets bound the error by
        // one octave on each side.
        assert!((256..=1024).contains(&p50), "p50={p50}");
        assert!((512..=1024).contains(&p95), "p95={p95}");
        assert!((512..=1024).contains(&p99), "p99={p99}");
        assert!(p50 <= p95 && p95 <= p99, "quantiles are monotone");
    }

    #[test]
    fn overflow_values_report_the_last_finite_boundary() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(1.0), Some(1 << 26));
        assert_eq!(h.sum(), u64::MAX);
    }
}

//! Per-query span-tree tracing.
//!
//! A [`TraceBuilder`] is created at the start of a traced query and
//! handed down through the layers; each layer opens named
//! [`SpanHandle`]s ([`TraceBuilder::root_span`] /
//! [`SpanHandle::child`]), attaches string attributes, and finishes
//! them. When the query completes, [`TraceBuilder::snapshot`] freezes
//! everything into an immutable [`TraceNode`] tree that rides on the
//! query outcome.
//!
//! Tracing is opt-in per query: untraced queries never allocate a
//! builder, so the hot path stays atomics-only. When tracing *is* on,
//! each span open/finish takes one brief mutex lock on the builder's
//! span list — never held across enumeration, only around a `Vec` push
//! or field write.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Index of a span inside the builder's arena. `usize::MAX` = no parent.
const NO_PARENT: usize = usize::MAX;

struct SpanRec {
    name: &'static str,
    parent: usize,
    start_us: u64,
    duration_us: Option<u64>,
    attrs: Vec<(&'static str, String)>,
}

struct Inner {
    started: Instant,
    spans: Mutex<Vec<SpanRec>>,
}

/// Collects spans for one traced query. Cheap to clone (an `Arc`);
/// clones feed the same span arena, so a builder can be handed to the
/// planner, per-atom streams and the drain loop simultaneously.
#[derive(Clone)]
pub struct TraceBuilder {
    inner: Arc<Inner>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceBuilder {
    /// A fresh builder; its clock starts now. All span timestamps are
    /// microseconds relative to this instant.
    pub fn new() -> Self {
        TraceBuilder {
            inner: Arc::new(Inner {
                started: Instant::now(),
                spans: Mutex::new(Vec::new()),
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.inner
            .started
            .elapsed()
            .as_micros()
            .min(u64::MAX as u128) as u64
    }

    fn open(&self, name: &'static str, parent: usize) -> SpanHandle {
        let start_us = self.now_us();
        let mut spans = self.inner.spans.lock().unwrap();
        let index = spans.len();
        spans.push(SpanRec {
            name,
            parent,
            start_us,
            duration_us: None,
            attrs: Vec::new(),
        });
        SpanHandle {
            builder: self.clone(),
            index,
        }
    }

    /// Opens a top-level span (no parent).
    pub fn root_span(&self, name: &'static str) -> SpanHandle {
        self.open(name, NO_PARENT)
    }

    /// Freezes the current span arena into an immutable tree. Spans
    /// still open are closed *in the snapshot* at the current clock
    /// (their live handles keep working and may finish later — a later
    /// snapshot would then show the real duration). Top-level spans
    /// become children of a synthetic root named `trace`.
    pub fn snapshot(&self) -> Arc<TraceNode> {
        let now = self.now_us();
        let spans = self.inner.spans.lock().unwrap();
        // Build children lists; spans were pushed in open order, so
        // children always follow parents and index order is start order.
        let mut nodes: Vec<TraceNode> = spans
            .iter()
            .map(|s| TraceNode {
                name: s.name,
                start_us: s.start_us,
                duration_us: s
                    .duration_us
                    .unwrap_or_else(|| now.saturating_sub(s.start_us)),
                attrs: s.attrs.clone(),
                children: Vec::new(),
            })
            .collect();
        let mut root = TraceNode {
            name: "trace",
            start_us: 0,
            duration_us: now,
            attrs: Vec::new(),
            children: Vec::new(),
        };
        // Attach bottom-up: walking indices in reverse keeps each
        // parent's children in start order after the final reverse.
        for i in (0..nodes.len()).rev() {
            let node = std::mem::replace(
                &mut nodes[i],
                TraceNode {
                    name: "",
                    start_us: 0,
                    duration_us: 0,
                    attrs: Vec::new(),
                    children: Vec::new(),
                },
            );
            let parent = spans[i].parent;
            if parent == NO_PARENT {
                root.children.push(node);
            } else {
                nodes[parent].children.push(node);
            }
        }
        fn order(n: &mut TraceNode) {
            n.children.reverse();
            n.children.iter_mut().for_each(order);
        }
        order(&mut root);
        Arc::new(root)
    }
}

/// A live handle on one span. Finish it explicitly with
/// [`SpanHandle::finish`], or let it drop — dropping an unfinished
/// handle records the duration at drop time.
pub struct SpanHandle {
    builder: TraceBuilder,
    index: usize,
}

impl SpanHandle {
    /// Opens a child span under this one.
    pub fn child(&self, name: &'static str) -> SpanHandle {
        self.builder.open(name, self.index)
    }

    /// Attaches a string attribute (key is static; value is rendered
    /// into the trace verbatim).
    pub fn attr(&self, key: &'static str, value: impl Into<String>) {
        let value = value.into();
        let mut spans = self.builder.inner.spans.lock().unwrap();
        spans[self.index].attrs.push((key, value));
    }

    /// Closes the span, recording its duration. Idempotent: the first
    /// close wins.
    pub fn finish(&self) {
        let now = self.builder.now_us();
        let mut spans = self.builder.inner.spans.lock().unwrap();
        let rec = &mut spans[self.index];
        if rec.duration_us.is_none() {
            rec.duration_us = Some(now.saturating_sub(rec.start_us));
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// One node of a frozen trace: a named span with its start offset and
/// duration in microseconds, attributes, and child spans in start
/// order. Produced by [`TraceBuilder::snapshot`]; immutable thereafter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name (e.g. `query`, `plan`, `atom`, `first_result`, `drain`).
    pub name: &'static str,
    /// Microseconds from trace start to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Attribute pairs in attachment order.
    pub attrs: Vec<(&'static str, String)>,
    /// Child spans in start order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// The first value of attribute `key` on this node.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Depth-first search for the first descendant (or self) named
    /// `name`.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Renders the tree as indented text for terminal display:
    /// one line per span — `name  +start  dur  [k=v …]`.
    pub fn render_text(&self) -> String {
        fn us(v: u64) -> String {
            if v >= 1_000_000 {
                format!("{:.2}s", v as f64 / 1e6)
            } else if v >= 1_000 {
                format!("{:.2}ms", v as f64 / 1e3)
            } else {
                format!("{v}us")
            }
        }
        fn walk(n: &TraceNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(n.name);
            out.push_str(&format!("  +{}  {}", us(n.start_us), us(n.duration_us)));
            for (k, v) in &n.attrs {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_snapshot_in_start_order() {
        let tb = TraceBuilder::new();
        let q = tb.root_span("query");
        q.attr("task", "enumerate");
        let p = q.child("plan");
        p.attr("atoms", "3");
        p.finish();
        let a0 = q.child("atom");
        a0.attr("index", "0");
        a0.finish();
        let a1 = q.child("atom");
        a1.attr("index", "1");
        a1.finish();
        q.finish();

        let t = tb.snapshot();
        assert_eq!(t.name, "trace");
        assert_eq!(t.children.len(), 1);
        let query = &t.children[0];
        assert_eq!(query.name, "query");
        assert_eq!(query.attr("task"), Some("enumerate"));
        let names: Vec<&str> = query.children.iter().map(|c| c.name).collect();
        assert_eq!(names, ["plan", "atom", "atom"]);
        assert_eq!(query.children[1].attr("index"), Some("0"));
        assert_eq!(query.children[2].attr("index"), Some("1"));
        assert_eq!(t.find("plan").unwrap().attr("atoms"), Some("3"));
    }

    #[test]
    fn dropping_a_handle_finishes_the_span() {
        let tb = TraceBuilder::new();
        {
            let _s = tb.root_span("scoped");
        }
        let t = tb.snapshot();
        assert_eq!(t.children[0].name, "scoped");
        // finished at drop, so a later snapshot sees a fixed duration
        let again = tb.snapshot();
        assert_eq!(
            t.children[0].duration_us, again.children[0].duration_us,
            "drop froze the duration"
        );
    }

    #[test]
    fn unfinished_spans_are_closed_in_the_snapshot_only() {
        let tb = TraceBuilder::new();
        let s = tb.root_span("open");
        let first = tb.snapshot();
        assert_eq!(first.children.len(), 1, "open span still appears");
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.finish();
        let second = tb.snapshot();
        assert!(
            second.children[0].duration_us >= first.children[0].duration_us,
            "live handle kept running after the first snapshot"
        );
    }

    #[test]
    fn finish_is_idempotent() {
        let tb = TraceBuilder::new();
        let s = tb.root_span("once");
        s.finish();
        let d1 = tb.snapshot().children[0].duration_us;
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.finish();
        let d2 = tb.snapshot().children[0].duration_us;
        assert_eq!(d1, d2);
    }

    #[test]
    fn render_text_indents_children() {
        let tb = TraceBuilder::new();
        let q = tb.root_span("query");
        let a = q.child("atom");
        a.attr("index", "0");
        a.finish();
        q.finish();
        let text = tb.snapshot().render_text();
        assert!(
            text.contains("\n  query"),
            "query indented under trace:\n{text}"
        );
        assert!(
            text.contains("\n    atom"),
            "atom indented under query:\n{text}"
        );
        assert!(text.contains("index=0"), "{text}");
    }

    #[test]
    fn builder_clones_share_one_arena_across_threads() {
        let tb = TraceBuilder::new();
        let root = tb.root_span("query");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let root = root.child("atom");
                std::thread::spawn(move || {
                    root.attr("index", i.to_string());
                    root.finish();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        root.finish();
        let t = tb.snapshot();
        assert_eq!(t.children[0].children.len(), 4);
    }
}

//! A small, fast, non-cryptographic hasher for hot hash maps.
//!
//! The enumeration stack hashes millions of short integer keys (interned
//! separator ids, answer vectors). The std SipHash is measurably slow for
//! such keys, so we bundle the Firefox/rustc "Fx" multiply-rotate hash —
//! reimplemented here because external hashing crates are not on the offline
//! dependency allowlist (see DESIGN.md). HashDoS resistance is irrelevant:
//! all keys are internally generated.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher (word-at-a-time).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(t)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn discriminates() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u32, 2]), hash_of(&vec![2u32, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn usable_in_maps() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 1);
        m.insert(vec![], 2);
        assert_eq!(m[&vec![1, 2, 3]], 1);
        assert_eq!(m[&vec![]], 2);

        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i % 100);
        }
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn odd_length_byte_streams() {
        // exercise the chunk remainder path
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 7].as_slice()), hash_of(&[0u8; 9].as_slice()));
    }
}

//! Reading and writing graphs: DIMACS `.col` and plain edge lists.
//!
//! The enumeration stack is most useful on *your* graphs; these parsers
//! cover the two formats ubiquitous in the treewidth/coloring communities.

use crate::{Graph, Node};
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a DIMACS `.col` graph: `c` comment lines, one `p edge <n> <m>`
/// problem line, and `e <u> <v>` edge lines with **1-based** endpoints.
/// Duplicate edges and self-loops are rejected.
pub fn parse_dimacs(input: &str) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    let mut declared_edges = 0usize;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("p") => {
                if graph.is_some() {
                    return Err(err(lineno, "duplicate problem line"));
                }
                let kind = parts.next().ok_or_else(|| err(lineno, "missing format"))?;
                if kind != "edge" && kind != "col" {
                    return Err(err(lineno, format!("unsupported format {kind:?}")));
                }
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad node count"))?;
                declared_edges = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad edge count"))?;
                graph = Some(Graph::new(n));
            }
            Some("e") => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge before problem line"))?;
                let u: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad endpoint"))?;
                let v: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad endpoint"))?;
                if u == 0 || v == 0 || u > g.num_nodes() || v > g.num_nodes() {
                    return Err(err(lineno, "endpoint out of range (DIMACS is 1-based)"));
                }
                if u == v {
                    return Err(err(lineno, "self-loop"));
                }
                g.add_edge((u - 1) as Node, (v - 1) as Node);
            }
            Some(other) => return Err(err(lineno, format!("unknown directive {other:?}"))),
            None => unreachable!("blank lines are skipped"),
        }
    }
    let g = graph.ok_or_else(|| err(0, "no problem line"))?;
    if g.num_edges() != declared_edges {
        // tolerated in the wild (duplicate e-lines), but worth flagging
        // only when fewer edges than declared appeared
        if g.num_edges() < declared_edges {
            return Err(err(
                0,
                format!(
                    "problem line declares {declared_edges} edges but {} were parsed",
                    g.num_edges()
                ),
            ));
        }
    }
    Ok(g)
}

/// Serializes to DIMACS `.col` (1-based endpoints).
pub fn to_dimacs(g: &Graph) -> String {
    let mut out = format!("p edge {} {}\n", g.num_nodes(), g.num_edges());
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u + 1, v + 1));
    }
    out
}

/// Parses a plain edge list: `#` comments; an optional first data line `n
/// <count>` fixing the node count; then `u v` pairs with **0-based**
/// endpoints. Without an `n` line the node count is `max endpoint + 1`.
pub fn parse_edge_list(input: &str) -> Result<Graph, ParseError> {
    let mut edges: Vec<(Node, Node)> = Vec::new();
    let mut fixed_n: Option<usize> = None;
    let mut max_node = 0 as Node;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("n ") {
            if fixed_n.is_some() || !edges.is_empty() {
                return Err(err(lineno, "n line must come first"));
            }
            fixed_n = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad node count"))?,
            );
            continue;
        }
        let mut parts = line.split_whitespace();
        let u: Node = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(lineno, "bad endpoint"))?;
        let v: Node = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(lineno, "bad endpoint"))?;
        if parts.next().is_some() {
            return Err(err(lineno, "expected exactly two endpoints"));
        }
        if u == v {
            return Err(err(lineno, "self-loop"));
        }
        max_node = max_node.max(u).max(v);
        edges.push((u, v));
    }
    let n = fixed_n.unwrap_or_else(|| {
        if edges.is_empty() {
            0
        } else {
            max_node as usize + 1
        }
    });
    if max_node as usize >= n && !edges.is_empty() {
        return Err(err(0, "endpoint exceeds declared node count"));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Serializes to the edge-list format (with an `n` line, 0-based).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("n {}\n", g.num_nodes());
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let g = Graph::cycle(5);
        let text = to_dimacs(&g);
        assert_eq!(parse_dimacs(&text).unwrap(), g);
    }

    #[test]
    fn dimacs_with_comments_and_blank_lines() {
        let text = "c a triangle\n\np edge 3 3\ne 1 2\ne 2 3\ne 1 3\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(parse_dimacs("e 1 2\n").is_err()); // edge before p
        assert!(parse_dimacs("p edge 2 1\ne 1 3\n").is_err()); // out of range
        assert!(parse_dimacs("p edge 2 1\ne 1 1\n").is_err()); // self loop
        assert!(parse_dimacs("p edge 2 2\ne 1 2\n").is_err()); // fewer edges than declared
        assert!(parse_dimacs("p matrix 2 1\n").is_err()); // unknown format
        assert!(parse_dimacs("").is_err()); // no problem line
        let e = parse_dimacs("p edge 2 1\nx 1 2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = Graph::from_edges(6, &[(0, 5), (1, 2)]);
        let text = to_edge_list(&g);
        assert_eq!(parse_edge_list(&text).unwrap(), g);
    }

    #[test]
    fn edge_list_infers_node_count() {
        let g = parse_edge_list("# comment\n0 1\n1 4\n").unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_malformed_input() {
        assert!(parse_edge_list("0 0\n").is_err()); // self loop
        assert!(parse_edge_list("n 2\n0 5\n").is_err()); // exceeds count
        assert!(parse_edge_list("0 1 2\n").is_err()); // three endpoints
        assert!(parse_edge_list("0 1\nn 5\n").is_err()); // n after edges
        assert!(parse_edge_list("a b\n").is_err());
    }

    #[test]
    fn empty_edge_list_is_the_empty_graph() {
        assert_eq!(parse_edge_list("").unwrap().num_nodes(), 0);
        assert_eq!(parse_edge_list("n 4\n").unwrap().num_nodes(), 4);
    }
}

//! Graph traversal: connected components and reachability, restricted to
//! arbitrary node subsets.
//!
//! The separator machinery constantly asks for the connected components of
//! `g \ U` (Section 2.2's `C(U)`), so everything here takes an explicit
//! *allowed* set rather than mutating the graph.

use crate::{Graph, Node, NodeSet};

/// Connected components of the subgraph induced by `allowed`.
///
/// Each returned [`NodeSet`] is one component; components are ordered by
/// their smallest node, and the union of all components is `allowed`.
pub fn components_within(g: &Graph, allowed: &NodeSet) -> Vec<NodeSet> {
    let mut remaining = allowed.clone();
    let mut out = Vec::new();
    while let Some(start) = remaining.first() {
        let comp = component_of(g, start, allowed);
        remaining.difference_with(&comp);
        out.push(comp);
    }
    out
}

/// Connected components of `g \ removed` (the paper's `C(U)` for `U =
/// removed`).
pub fn components_after_removing(g: &Graph, removed: &NodeSet) -> Vec<NodeSet> {
    let mut allowed = g.node_set();
    allowed.difference_with(removed);
    components_within(g, &allowed)
}

/// The connected component of `start` inside the subgraph induced by
/// `allowed`. `start` must be in `allowed`.
pub fn component_of(g: &Graph, start: Node, allowed: &NodeSet) -> NodeSet {
    debug_assert!(allowed.contains(start));
    let n = g.num_nodes();
    let mut comp = NodeSet::new(n);
    comp.insert(start);
    let mut frontier = NodeSet::new(n);
    frontier.insert(start);
    // Breadth-first expansion a whole frontier at a time: the next frontier
    // is N(frontier) ∩ allowed \ comp, all word-parallel.
    while !frontier.is_empty() {
        let mut next = g.neighborhood_of_set(&frontier);
        next.intersect_with(allowed);
        next.difference_with(&comp);
        comp.union_with(&next);
        frontier = next;
    }
    comp
}

/// `true` iff the subgraph induced by `allowed` is connected (vacuously true
/// when `allowed` is empty).
pub fn is_connected_within(g: &Graph, allowed: &NodeSet) -> bool {
    match allowed.first() {
        None => true,
        Some(start) => component_of(g, start, allowed) == *allowed,
    }
}

/// `true` iff `g` is connected (vacuously true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    is_connected_within(g, &g.node_set())
}

/// `true` iff `sep` is a `(u, v)`-separator: `u` and `v` lie in distinct
/// components of `g \ sep`. Nodes inside `sep` separate nothing.
pub fn separates(g: &Graph, sep: &NodeSet, u: Node, v: Node) -> bool {
    if sep.contains(u) || sep.contains(v) {
        return false;
    }
    let mut allowed = g.node_set();
    allowed.difference_with(sep);
    !component_of(g, u, &allowed).contains(v)
}

/// Number of distinct components of `g \ sep` that `targets \ sep` meets.
///
/// This is the primitive behind the crossing test: `S` crosses `T` iff
/// `T` meets at least two components of `g \ S`.
pub fn count_components_meeting(g: &Graph, sep: &NodeSet, targets: &NodeSet) -> usize {
    let mut allowed = g.node_set();
    allowed.difference_with(sep);
    let mut pending = targets.difference(sep);
    let mut count = 0;
    while let Some(start) = pending.first() {
        let comp = component_of(g, start, &allowed);
        pending.difference_with(&comp);
        count += 1;
    }
    count
}

/// Reusable buffers for the restricted-component searches above.
///
/// One per worker or sequential stream; the five sets grow to the ambient
/// graph size the first time and are reused thereafter, making the
/// steady-state traversals allocation-free. The crossing test — the
/// innermost loop of the enumeration — runs through these.
#[derive(Default)]
pub struct BfsScratch {
    allowed: NodeSet,
    pending: NodeSet,
    comp: NodeSet,
    frontier: NodeSet,
    next: NodeSet,
}

impl BfsScratch {
    /// [`count_components_meeting`] without per-call allocations. Computes
    /// exactly the same quantity: the number of distinct components of
    /// `g \ sep` that `targets \ sep` meets.
    pub fn count_components_meeting(
        &mut self,
        g: &Graph,
        sep: &NodeSet,
        targets: &NodeSet,
    ) -> usize {
        let n = g.num_nodes();
        self.allowed.reset_full(n);
        self.allowed.difference_with(sep);
        self.pending.clone_from(targets);
        self.pending.difference_with(sep);
        let mut count = 0;
        while let Some(start) = self.pending.first() {
            // Inlined `component_of` over the scratch sets: the next
            // frontier is N(frontier) ∩ allowed \ comp, word-parallel.
            self.comp.reset(n);
            self.comp.insert(start);
            self.frontier.reset(n);
            self.frontier.insert(start);
            while !self.frontier.is_empty() {
                g.neighborhood_of_set_into(&self.frontier, &mut self.next);
                self.next.intersect_with(&self.allowed);
                self.next.difference_with(&self.comp);
                self.comp.union_with(&self.next);
                std::mem::swap(&mut self.frontier, &mut self.next);
            }
            self.pending.difference_with(&self.comp);
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // 0-1-2 triangle, 3-4-5 triangle, no connection
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles();
        let comps = components_within(&g, &g.node_set());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0, 1, 2]);
        assert_eq!(comps[1].to_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn components_after_removal() {
        let g = Graph::path(5); // 0-1-2-3-4
        let removed = NodeSet::from_iter(5, [2]);
        let comps = components_after_removing(&g, &removed);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].to_vec(), vec![0, 1]);
        assert_eq!(comps[1].to_vec(), vec![3, 4]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&Graph::cycle(5)));
        assert!(!is_connected(&two_triangles()));
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }

    #[test]
    fn component_of_respects_allowed() {
        let g = Graph::cycle(6);
        let allowed = NodeSet::from_iter(6, [0, 1, 2, 4]);
        let comp = component_of(&g, 0, &allowed);
        assert_eq!(comp.to_vec(), vec![0, 1, 2]); // 4 is cut off (3 and 5 not allowed)
    }

    #[test]
    fn separator_detection() {
        let g = Graph::path(5);
        let mid = NodeSet::from_iter(5, [2]);
        assert!(separates(&g, &mid, 0, 4));
        assert!(separates(&g, &mid, 1, 3));
        assert!(!separates(&g, &mid, 0, 1));
        // a node inside the separator is not separated from anything
        assert!(!separates(&g, &mid, 2, 4));
        let end = NodeSet::from_iter(5, [4]);
        assert!(!separates(&g, &end, 0, 3));
    }

    #[test]
    fn counting_components_meeting_targets() {
        let g = Graph::cycle(6);
        let sep = NodeSet::from_iter(6, [0, 3]);
        // removing {0,3} splits C6 into {1,2} and {4,5}
        let t1 = NodeSet::from_iter(6, [1, 4]);
        assert_eq!(count_components_meeting(&g, &sep, &t1), 2);
        let t2 = NodeSet::from_iter(6, [1, 2]);
        assert_eq!(count_components_meeting(&g, &sep, &t2), 1);
        // targets inside the separator do not count
        let t3 = NodeSet::from_iter(6, [0, 3]);
        assert_eq!(count_components_meeting(&g, &sep, &t3), 0);
    }

    #[test]
    fn scratch_counting_matches_allocating_version() {
        let mut ws = BfsScratch::default();
        let graphs = [
            Graph::cycle(6),
            Graph::path(5),
            two_triangles(),
            Graph::complete(4),
            Graph::new(3),
        ];
        for g in &graphs {
            let n = g.num_nodes();
            // every pair of singleton-ish subsets, reusing one scratch across
            // graphs of different sizes
            for a in 0..n as Node {
                for b in 0..n as Node {
                    let sep = NodeSet::from_iter(n, [a]);
                    let targets = NodeSet::from_iter(n, [b, (b + 1) % n.max(1) as Node]);
                    assert_eq!(
                        ws.count_components_meeting(g, &sep, &targets),
                        count_components_meeting(g, &sep, &targets),
                    );
                }
            }
        }
    }

    #[test]
    fn vacuous_cases() {
        let g = Graph::new(3);
        assert!(is_connected_within(&g, &NodeSet::new(3)));
        assert_eq!(components_within(&g, &NodeSet::new(3)).len(), 0);
    }
}

//! # mintri-graph — the graph substrate
//!
//! Undirected graphs over dense node ids `0..n` with bitset adjacency, plus
//! the traversal primitives the triangulation stack is built on:
//! components of `g \ U`, reachability inside restricted node sets, and
//! saturation.
//!
//! Everything in this workspace represents node sets as [`NodeSet`] bitsets:
//! unions, intersections, subset tests and component expansion are all
//! word-parallel, which dominates the running time of the enumeration stack.
//!
//! ```
//! use mintri_graph::{Graph, NodeSet, traversal};
//!
//! let mut g = Graph::cycle(6);
//! assert_eq!(g.num_edges(), 6);
//!
//! // saturating {0, 2, 4} adds the three "long" chords
//! let s = NodeSet::from_iter(6, [0, 2, 4]);
//! assert_eq!(g.saturate(&s), 3);
//! assert!(g.is_clique(&s));
//!
//! // components of g \ {0, 3}
//! let cut = NodeSet::from_iter(6, [0, 3]);
//! let comps = traversal::components_after_removing(&g, &cut);
//! assert_eq!(comps.len(), 1); // the chords keep the rest connected
//! ```

mod fxhash;
mod graph;
pub mod io;
mod nodeset;
pub mod traversal;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use graph::Graph;
pub use nodeset::{NodeSet, NodeSetIter};

/// Node identifier. Graphs in this workspace are dense and small enough that
/// `u32` halves the footprint of every edge list and ordering relative to
/// `usize` (per the performance guide's "smaller integers" advice).
pub type Node = u32;

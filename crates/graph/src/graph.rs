//! The undirected graph type used throughout the workspace.

use crate::{Node, NodeSet};
use std::fmt;

/// A simple undirected graph over nodes `0..n`, stored as one adjacency
/// bitset per node.
///
/// The representation favors the operations the enumeration stack is hot on:
/// neighborhood unions, saturation of node sets, and induced-component
/// searches — all word-parallel on [`NodeSet`]s. Edge insertion is `O(1)`;
/// adjacency queries are `O(1)`.
#[derive(PartialEq, Eq, Default)]
pub struct Graph {
    adj: Vec<NodeSet>,
    num_edges: usize,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            adj: self.adj.clone(),
            num_edges: self.num_edges,
        }
    }

    /// Element-wise `clone_from` over the adjacency rows, so repeatedly
    /// cloning same-sized graphs into the same buffer (the saturation
    /// scratch) allocates nothing.
    fn clone_from(&mut self, other: &Self) {
        self.adj.clone_from(&other.adj);
        self.num_edges = other.num_edges;
    }
}

impl Graph {
    /// Creates an edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: (0..n).map(|_| NodeSet::new(n)).collect(),
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Self-loops are rejected.
    ///
    /// # Panics
    /// Panics if an endpoint is `>= n` or if `u == v`.
    pub fn from_edges(n: usize, edges: &[(Node, Node)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds the complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Builds the cycle `C_n` (for `n >= 3`).
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a cycle needs at least 3 nodes");
        let mut g = Graph::new(n);
        for u in 0..n {
            g.add_edge(u as Node, ((u + 1) % n) as Node);
        }
        g
    }

    /// Builds the path `P_n`.
    pub fn path(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 1..n {
            g.add_edge((u - 1) as Node, u as Node);
        }
        g
    }

    /// Number of nodes (`|V(g)|`).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (`|E(g)|`).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        0..self.adj.len() as Node
    }

    /// The open neighborhood `N(v)` as a bitset.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &NodeSet {
        &self.adj[v as usize]
    }

    /// The closed neighborhood `N[v] = N(v) ∪ {v}`.
    pub fn closed_neighborhood(&self, v: Node) -> NodeSet {
        let mut s = self.adj[v as usize].clone();
        s.insert(v);
        s
    }

    /// The open neighborhood of a set: `N(U) = (⋃_{v∈U} N(v)) \ U`.
    pub fn neighborhood_of_set(&self, us: &NodeSet) -> NodeSet {
        let mut s = NodeSet::new(self.num_nodes());
        self.neighborhood_of_set_into(us, &mut s);
        s
    }

    /// [`Graph::neighborhood_of_set`] into a caller-supplied set, which is
    /// reset to this graph's capacity first. The BFS kernels call this once
    /// per frontier; with a warm buffer it never allocates.
    pub fn neighborhood_of_set_into(&self, us: &NodeSet, out: &mut NodeSet) {
        out.reset(self.num_nodes());
        for v in us {
            out.union_with(&self.adj[v as usize]);
        }
        out.difference_with(us);
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        self.adj[v as usize].len()
    }

    /// Adjacency test.
    #[inline]
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        u != v && self.adj[u as usize].contains(v)
    }

    /// Adds the edge `{u, v}`; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics on self-loops.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        assert_ne!(u, v, "self-loops are not allowed");
        let fresh = self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        if fresh {
            self.num_edges += 1;
        }
        fresh
    }

    /// Removes the edge `{u, v}`; returns `true` if it was present.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        let present = self.adj[u as usize].remove(v);
        self.adj[v as usize].remove(u);
        if present {
            self.num_edges -= 1;
        }
        present
    }

    /// All edges as `(u, v)` pairs with `u < v`, in lexicographic order.
    pub fn edges(&self) -> Vec<(Node, Node)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for u in self.nodes() {
            for v in self.adj[u as usize].iter() {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Adds an edge between every non-adjacent pair in `clique` — the
    /// *saturation* operation of Section 2.1. Returns the number of edges
    /// added.
    pub fn saturate(&mut self, clique: &NodeSet) -> usize {
        let mut members = Vec::new();
        self.saturate_with(clique, &mut members)
    }

    /// [`Graph::saturate`] with a caller-supplied member buffer, so the
    /// saturation loop of `Extend` allocates nothing once the buffer is
    /// warm. `members` is overwritten with the clique's sorted node list.
    pub fn saturate_with(&mut self, clique: &NodeSet, members: &mut Vec<Node>) -> usize {
        let mut added = 0;
        members.clear();
        members.extend(clique.iter());
        // Index-based so `members` stays borrowed immutably while
        // `add_edge` borrows `self` mutably.
        for i in 0..members.len() {
            let u = members[i];
            for &v in &members[i + 1..] {
                if self.add_edge(u, v) {
                    added += 1;
                }
            }
        }
        added
    }

    /// `true` iff `us` induces a clique.
    pub fn is_clique(&self, us: &NodeSet) -> bool {
        let mut missing = us.clone();
        for u in us {
            missing.remove(u);
            if !missing.is_subset(&self.adj[u as usize]) {
                return false;
            }
        }
        true
    }

    /// Number of edges missing for `us` to be a clique (its *deficiency*).
    pub fn fill_cost(&self, us: &NodeSet) -> usize {
        let k = us.len();
        if k < 2 {
            return 0;
        }
        let mut present = 0;
        for u in us {
            present += self.adj[u as usize].intersection_len(us);
        }
        // every present edge inside `us` is counted from both endpoints
        k * (k - 1) / 2 - present / 2
    }

    /// The subgraph induced by `us`, *keeping node ids* (nodes outside `us`
    /// become isolated). Useful when set-compatibility with the parent graph
    /// matters more than compactness.
    pub fn induced_subgraph_same_ids(&self, us: &NodeSet) -> Graph {
        let n = self.num_nodes();
        let mut g = Graph::new(n);
        for u in us {
            let mut row = self.adj[u as usize].clone();
            row.intersect_with(us);
            g.num_edges += row.len();
            g.adj[u as usize] = row;
        }
        g.num_edges /= 2;
        g
    }

    /// The subgraph induced by `keep`, with nodes renumbered to
    /// `0..keep.len()`. Returns the graph and the mapping `new -> old`.
    pub fn induced_subgraph(&self, keep: &NodeSet) -> (Graph, Vec<Node>) {
        let old_of: Vec<Node> = keep.to_vec();
        let mut new_of = vec![Node::MAX; self.num_nodes()];
        for (new, &old) in old_of.iter().enumerate() {
            new_of[old as usize] = new as Node;
        }
        let mut g = Graph::new(old_of.len());
        for (new_u, &old_u) in old_of.iter().enumerate() {
            for old_v in self.adj[old_u as usize].intersection(keep).iter() {
                let new_v = new_of[old_v as usize];
                if (new_u as Node) < new_v {
                    g.add_edge(new_u as Node, new_v);
                }
            }
        }
        (g, old_of)
    }

    /// `true` iff `other` has the same nodes and a superset of the edges.
    pub fn is_supergraph_of(&self, other: &Graph) -> bool {
        self.num_nodes() == other.num_nodes()
            && other
                .adj
                .iter()
                .zip(&self.adj)
                .all(|(small, big)| small.is_subset(big))
    }

    /// The edges of `self` that are not in `base` (`E(self) \ E(base)`), i.e.
    /// the *fill edges* when `self` is a triangulation of `base`.
    pub fn fill_edges_over(&self, base: &Graph) -> Vec<(Node, Node)> {
        assert_eq!(self.num_nodes(), base.num_nodes());
        self.edges()
            .into_iter()
            .filter(|&(u, v)| !base.has_edge(u, v))
            .collect()
    }

    /// The full node set `V(g)` as a bitset.
    pub fn node_set(&self) -> NodeSet {
        NodeSet::full(self.num_nodes())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, edges={:?})",
            self.num_nodes(),
            self.num_edges(),
            self.edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1).to_vec(), vec![0, 2]);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn complete_cycle_path() {
        assert_eq!(Graph::complete(5).num_edges(), 10);
        assert_eq!(Graph::cycle(5).num_edges(), 5);
        assert_eq!(Graph::path(5).num_edges(), 4);
        let c = Graph::cycle(4);
        assert!(c.has_edge(3, 0));
    }

    #[test]
    fn neighborhood_of_set_excludes_the_set() {
        let g = Graph::cycle(6);
        let u = NodeSet::from_iter(6, [0, 1]);
        assert_eq!(g.neighborhood_of_set(&u).to_vec(), vec![2, 5]);
    }

    #[test]
    fn saturation_makes_cliques() {
        let mut g = Graph::cycle(5);
        let s = NodeSet::from_iter(5, [0, 2, 4]);
        assert!(!g.is_clique(&s));
        assert_eq!(g.fill_cost(&s), 2); // 0-2 and 2-4 are missing; 4-0 is an edge
        let added = g.saturate(&s);
        assert_eq!(added, 2);
        assert!(g.is_clique(&s));
        assert_eq!(g.fill_cost(&s), 0);
    }

    #[test]
    fn edge_list_is_sorted_and_complete() {
        let g = Graph::from_edges(4, &[(2, 3), (0, 1), (1, 3)]);
        assert_eq!(g.edges(), vec![(0, 1), (1, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::cycle(5);
        let keep = NodeSet::from_iter(5, [0, 1, 3]);
        let (h, old_of) = g.induced_subgraph(&keep);
        assert_eq!(old_of, vec![0, 1, 3]);
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.edges(), vec![(0, 1)]); // only edge among {0,1,3} is 0-1
    }

    #[test]
    fn induced_subgraph_same_ids_isolates_rest() {
        let g = Graph::cycle(5);
        let keep = NodeSet::from_iter(5, [0, 1, 2]);
        let h = g.induced_subgraph_same_ids(&keep);
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn supergraph_and_fill_edges() {
        let g = Graph::cycle(4);
        let mut h = g.clone();
        h.add_edge(0, 2);
        assert!(h.is_supergraph_of(&g));
        assert!(!g.is_supergraph_of(&h));
        assert_eq!(h.fill_edges_over(&g), vec![(0, 2)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn is_clique_on_small_sets() {
        let g = Graph::complete(4);
        assert!(g.is_clique(&NodeSet::from_iter(4, [0, 1, 2, 3])));
        assert!(g.is_clique(&NodeSet::from_iter(4, [2])));
        assert!(g.is_clique(&NodeSet::new(4)));
    }
}

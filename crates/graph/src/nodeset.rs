//! Fixed-capacity bitsets over graph nodes.
//!
//! Every set-valued object in this workspace — separators, connected
//! components, neighborhoods, cliques, bags — is a [`NodeSet`]: a bitset with
//! capacity fixed at the number of nodes of the ambient graph. All binary
//! operations are word-parallel, which is the single most important
//! performance property of the enumeration stack (the crossing test and
//! clique extraction are dominated by subset/intersection checks).

use crate::Node;
use std::fmt;

/// Number of bits per storage word.
const BITS: usize = u64::BITS as usize;

/// A set of graph nodes backed by a `Vec<u64>` bitmap.
///
/// The word vector always has length `ceil(capacity / 64)` and any bits at
/// positions `>= capacity` are zero, so `Eq`, `Ord` and `Hash` agree with
/// set equality for sets created with the same capacity.
///
/// `Ord` is an arbitrary-but-total order (lexicographic on words); it exists
/// so `NodeSet`s can key `BTreeMap`s and be sorted deterministically.
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: u32,
}

impl Clone for NodeSet {
    fn clone(&self) -> Self {
        NodeSet {
            words: self.words.clone(),
            capacity: self.capacity,
        }
    }

    /// Reuses the existing word buffer — allocation-free whenever `self`
    /// has ever held a set at least as large. The scratch kernels lean on
    /// this: a derived `clone_from` would discard the buffer.
    fn clone_from(&mut self, other: &Self) {
        self.words.clone_from(&other.words);
        self.capacity = other.capacity;
    }
}

impl NodeSet {
    /// Creates an empty set able to hold nodes `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(BITS)],
            capacity: capacity as u32,
        }
    }

    /// Creates a set holding all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_iter<I: IntoIterator<Item = Node>>(capacity: usize, nodes: I) -> Self {
        let mut s = Self::new(capacity);
        for v in nodes {
            s.insert(v);
        }
        s
    }

    /// The fixed capacity (number of addressable nodes), *not* the cardinality.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Zeroes any bits at positions `>= capacity` to keep the representation
    /// canonical.
    #[inline]
    fn trim(&mut self) {
        let cap = self.capacity as usize;
        if !cap.is_multiple_of(BITS) {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << (cap % BITS)) - 1;
            }
        }
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: Node) -> bool {
        let v = v as usize;
        debug_assert!(v < self.capacity as usize);
        (self.words[v / BITS] >> (v % BITS)) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: Node) -> bool {
        let v = v as usize;
        debug_assert!(v < self.capacity as usize);
        let w = &mut self.words[v / BITS];
        let mask = 1u64 << (v % BITS);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: Node) -> bool {
        let v = v as usize;
        debug_assert!(v < self.capacity as usize);
        let w = &mut self.words[v / BITS];
        let mask = 1u64 << (v % BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Re-purposes the set as an empty set over `0..capacity`, reusing the
    /// word buffer (allocation-free once the buffer has grown to the
    /// largest capacity seen).
    pub fn reset(&mut self, capacity: usize) {
        self.capacity = capacity as u32;
        self.words.clear();
        self.words.resize(capacity.div_ceil(BITS), 0);
    }

    /// Like [`NodeSet::reset`] but filled with all of `0..capacity`.
    pub fn reset_full(&mut self, capacity: usize) {
        self.capacity = capacity as u32;
        self.words.clear();
        self.words.resize(capacity.div_ceil(BITS), u64::MAX);
        self.trim();
    }

    /// In-place union: `self ∪= other`.
    #[inline]
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    #[inline]
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Cardinality of `self ∩ other` without materializing the set.
    #[inline]
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `true` iff the sets share no element.
    #[inline]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        other.is_subset(self)
    }

    /// `true` iff `self ∩ other` has at least one element that is also in
    /// neither set's complement — i.e. whether any element of `other` lies in
    /// `self` (alias for `!is_disjoint`).
    #[inline]
    pub fn intersects(&self, other: &NodeSet) -> bool {
        !self.is_disjoint(other)
    }

    /// The smallest element, if any.
    #[inline]
    pub fn first(&self) -> Option<Node> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * BITS + w.trailing_zeros() as usize) as Node);
            }
        }
        None
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<Node> {
        self.iter().collect()
    }

    /// Pops an arbitrary element (the smallest), removing it from the set.
    pub fn pop(&mut self) -> Option<Node> {
        let v = self.first()?;
        self.remove(v);
        Some(v)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = Node;
    type IntoIter = NodeSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Node> for NodeSet {
    /// Builds a set whose capacity is one more than the largest element.
    /// Prefer [`NodeSet::from_iter`] with an explicit capacity when the
    /// ambient graph is known.
    fn from_iter<I: IntoIterator<Item = Node>>(iter: I) -> Self {
        let nodes: Vec<Node> = iter.into_iter().collect();
        let cap = nodes.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        NodeSet::from_iter(cap, nodes)
    }
}

/// Iterator over the elements of a [`NodeSet`] in increasing order.
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = Node;

    #[inline]
    fn next(&mut self) -> Option<Node> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * BITS + bit) as Node);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = NodeSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.to_vec(), vec![0, 129]);
    }

    #[test]
    fn full_and_trim() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        // Canonical representation: equal to an explicitly constructed set.
        let t = NodeSet::from_iter(70, 0..70);
        assert_eq!(s, t);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(10, [1, 2, 3, 7]);
        let b = NodeSet::from_iter(10, [2, 3, 4]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 7]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 7]);
        assert_eq!(a.intersection_len(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&NodeSet::from_iter(10, [0, 9])));
    }

    #[test]
    fn subset_relations() {
        let a = NodeSet::from_iter(200, [3, 100, 150]);
        let b = NodeSet::from_iter(200, [3, 100, 150, 199]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s = NodeSet::from_iter(300, [250, 3, 64, 65, 127, 128]);
        assert_eq!(s.to_vec(), vec![3, 64, 65, 127, 128, 250]);
    }

    #[test]
    fn pop_drains_in_order() {
        let mut s = NodeSet::from_iter(80, [5, 70, 12]);
        assert_eq!(s.pop(), Some(5));
        assert_eq!(s.pop(), Some(12));
        assert_eq!(s.pop(), Some(70));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn eq_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = NodeSet::from_iter(65, [0, 64]);
        let mut b = NodeSet::new(65);
        b.insert(64);
        b.insert(0);
        assert_eq!(a, b);
        let mut h = HashSet::new();
        h.insert(a);
        assert!(h.contains(&b));
    }

    #[test]
    fn reset_changes_capacity_and_empties() {
        let mut s = NodeSet::from_iter(200, [3, 100, 150]);
        s.reset(70);
        assert_eq!(s.capacity(), 70);
        assert!(s.is_empty());
        s.insert(69);
        assert_eq!(s.to_vec(), vec![69]);
        s.reset_full(10);
        assert_eq!(s, NodeSet::full(10));
    }

    #[test]
    fn clone_from_matches_clone() {
        let src = NodeSet::from_iter(130, [0, 64, 129]);
        let mut dst = NodeSet::from_iter(300, 0..300);
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.capacity(), src.capacity());
        let mut small = NodeSet::new(0);
        small.clone_from(&src);
        assert_eq!(small, src);
    }

    #[test]
    fn zero_capacity() {
        let s = NodeSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let t = NodeSet::full(0);
        assert_eq!(s, t);
    }
}

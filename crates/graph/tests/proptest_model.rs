//! Model-based property tests: `NodeSet` against `BTreeSet<u32>`, `Graph`
//! against a naive edge-set model, and the traversal primitives against
//! reference implementations.

use mintri_graph::traversal::{components_within, is_connected_within, separates};
use mintri_graph::{Graph, Node, NodeSet};
use proptest::prelude::*;
use std::collections::BTreeSet;

const CAP: usize = 100;

/// Operations on a set, driven by proptest.
#[derive(Debug, Clone)]
enum Op {
    Insert(Node),
    Remove(Node),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..CAP as Node).prop_map(Op::Insert),
        4 => (0..CAP as Node).prop_map(Op::Remove),
        1 => Just(Op::Clear),
    ]
}

fn set_pair() -> impl Strategy<Value = (NodeSet, BTreeSet<Node>)> {
    proptest::collection::vec(0..CAP as Node, 0..40).prop_map(|nodes| {
        let ns = NodeSet::from_iter(CAP, nodes.iter().copied());
        let bt: BTreeSet<Node> = nodes.into_iter().collect();
        (ns, bt)
    })
}

proptest! {
    #[test]
    fn nodeset_follows_the_btreeset_model(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut ns = NodeSet::new(CAP);
        let mut model: BTreeSet<Node> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    prop_assert_eq!(ns.insert(v), model.insert(v));
                }
                Op::Remove(v) => {
                    prop_assert_eq!(ns.remove(v), model.remove(&v));
                }
                Op::Clear => {
                    ns.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(ns.len(), model.len());
            prop_assert_eq!(ns.is_empty(), model.is_empty());
            prop_assert_eq!(ns.to_vec(), model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(ns.first(), model.first().copied());
        }
    }

    #[test]
    fn set_algebra_matches_the_model((a, ma) in set_pair(), (b, mb) in set_pair()) {
        let union: Vec<Node> = ma.union(&mb).copied().collect();
        let inter: Vec<Node> = ma.intersection(&mb).copied().collect();
        let diff: Vec<Node> = ma.difference(&mb).copied().collect();
        prop_assert_eq!(a.union(&b).to_vec(), union);
        prop_assert_eq!(a.intersection(&b).to_vec(), inter.clone());
        prop_assert_eq!(a.difference(&b).to_vec(), diff);
        prop_assert_eq!(a.intersection_len(&b), inter.len());
        prop_assert_eq!(a.is_subset(&b), ma.is_subset(&mb));
        prop_assert_eq!(a.is_superset(&b), ma.is_superset(&mb));
        prop_assert_eq!(a.is_disjoint(&b), ma.is_disjoint(&mb));
    }

    #[test]
    fn graph_edge_bookkeeping(edges in proptest::collection::vec((0..20u32, 0..20u32), 0..60)) {
        let mut g = Graph::new(20);
        let mut model: BTreeSet<(Node, Node)> = BTreeSet::new();
        for (u, v) in edges {
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            prop_assert_eq!(g.add_edge(u, v), model.insert(key));
            prop_assert_eq!(g.num_edges(), model.len());
        }
        prop_assert_eq!(g.edges(), model.iter().copied().collect::<Vec<_>>());
        // degree = number of incident model edges
        for v in 0..20u32 {
            let deg = model.iter().filter(|&&(a, b)| a == v || b == v).count();
            prop_assert_eq!(g.degree(v), deg);
        }
    }

    #[test]
    fn components_partition_the_allowed_set(
        edges in proptest::collection::vec((0..12u32, 0..12u32), 0..30),
        allowed_bits in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let mut g = Graph::new(12);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let allowed = NodeSet::from_iter(12, (0..12u32).filter(|&v| allowed_bits[v as usize]));
        let comps = components_within(&g, &allowed);
        // disjoint, nonempty, union = allowed
        let mut union = NodeSet::new(12);
        for c in &comps {
            prop_assert!(!c.is_empty());
            prop_assert!(c.is_subset(&allowed));
            prop_assert!(union.is_disjoint(c));
            union.union_with(c);
            // each component is internally connected
            prop_assert!(is_connected_within(&g, c));
        }
        prop_assert_eq!(union, allowed);
        // no edges between different components
        for (i, c1) in comps.iter().enumerate() {
            for c2 in &comps[i + 1..] {
                for u in c1.iter() {
                    prop_assert!(g.neighbors(u).is_disjoint(c2));
                }
            }
        }
    }

    #[test]
    fn separates_agrees_with_component_search(
        edges in proptest::collection::vec((0..10u32, 0..10u32), 0..25),
        sep_bits in proptest::collection::vec(any::<bool>(), 10),
        u in 0..10u32,
        v in 0..10u32,
    ) {
        prop_assume!(u != v);
        let mut g = Graph::new(10);
        for (a, b) in edges {
            if a != b {
                g.add_edge(a, b);
            }
        }
        let sep = NodeSet::from_iter(10, (0..10u32).filter(|&x| sep_bits[x as usize]));
        let expected = if sep.contains(u) || sep.contains(v) {
            false
        } else {
            // BFS avoiding sep
            let mut allowed = g.node_set();
            allowed.difference_with(&sep);
            let comps = components_within(&g, &allowed);
            !comps.iter().any(|c| c.contains(u) && c.contains(v))
        };
        prop_assert_eq!(separates(&g, &sep, u, v), expected);
    }

    #[test]
    fn saturate_then_is_clique((a, _) in set_pair(), edges in proptest::collection::vec((0..CAP as Node, 0..CAP as Node), 0..50)) {
        let mut g = Graph::new(CAP);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let before = g.fill_cost(&a);
        let added = g.saturate(&a);
        prop_assert_eq!(before, added);
        prop_assert!(g.is_clique(&a));
        prop_assert_eq!(g.fill_cost(&a), 0);
    }

    #[test]
    fn dimacs_roundtrip_is_identity(edges in proptest::collection::vec((0..15u32, 0..15u32), 0..40)) {
        let mut g = Graph::new(15);
        for (u, v) in edges {
            if u != v {
                g.add_edge(u, v);
            }
        }
        let text = mintri_graph::io::to_dimacs(&g);
        prop_assert_eq!(mintri_graph::io::parse_dimacs(&text).unwrap(), g.clone());
        let text2 = mintri_graph::io::to_edge_list(&g);
        prop_assert_eq!(mintri_graph::io::parse_edge_list(&text2).unwrap(), g);
    }
}

//! The snapshot wire primitives: LEB128 varints, length-prefixed
//! strings, and the FNV-1a 64 checksum the file header carries.
//!
//! Decoding is total: every read is bounds-checked, every length is
//! validated against the bytes actually remaining (a corrupt length
//! field must not drive an allocation), and failure is a typed error —
//! never a panic. The corruption tests in `lib.rs` flip arbitrary bits
//! and expect exactly this contract.

use std::fmt;

/// Why a snapshot failed to decode. The store treats every variant the
/// same way — quarantine the file and report a miss — but the message
/// lands in the quarantine log for post-mortems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the field needs.
    Truncated,
    /// A varint ran past 10 bytes (no valid u64 does).
    VarintOverflow,
    /// A length prefix exceeds the bytes remaining.
    LengthOverrun,
    /// A string field is not UTF-8.
    BadString,
    /// The file header's magic bytes are wrong.
    BadMagic,
    /// The header names a format version this build does not read.
    BadVersion(u16),
    /// The header names an unknown entry kind.
    BadKind(u8),
    /// The payload checksum does not match the header.
    BadChecksum,
    /// A field holds a value outside its domain (e.g. an order tag).
    BadValue,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated input"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::LengthOverrun => write!(f, "length prefix exceeds remaining bytes"),
            CodecError::BadString => write!(f, "string field is not UTF-8"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::BadKind(k) => write!(f, "unknown entry kind {k}"),
            CodecError::BadChecksum => write!(f, "payload checksum mismatch"),
            CodecError::BadValue => write!(f, "field value outside its domain"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64: the header checksum. Not cryptographic — it guards against
/// torn writes and bit rot, not adversaries; the store's threat model is
/// a crashed process, not a hostile disk.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only payload encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// LEB128 unsigned varint.
    pub fn u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    pub fn u32(&mut self, v: u32) {
        self.u64(v as u64);
    }

    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked payload decoder over a borrowed byte slice.
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..70).step_by(7) {
            if shift >= 64 {
                return Err(CodecError::VarintOverflow);
            }
            let byte = self.u8()?;
            let low = (byte & 0x7f) as u64;
            // The 10th byte may only carry the u64's top bit.
            if shift == 63 && low > 1 {
                return Err(CodecError::VarintOverflow);
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::VarintOverflow)
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.u64()?).map_err(|_| CodecError::BadValue)
    }

    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::BadValue)
    }

    /// A length prefix about to drive `n` reads of at least one byte
    /// each: validated against the bytes remaining, so a corrupt length
    /// can never trigger a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize, CodecError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(CodecError::LengthOverrun);
        }
        Ok(n)
    }

    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len_prefix()?;
        let bytes = &self.data[self.pos..self.pos + n];
        self.pos += n;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadString)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut e = Enc::new();
        for &v in &values {
            e.u64(v);
        }
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        for &v in &values {
            assert_eq!(d.u64().unwrap(), v);
        }
        assert!(d.is_empty());
    }

    #[test]
    fn strings_round_trip() {
        let mut e = Enc::new();
        e.str("mcs-m");
        e.str("");
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.str().unwrap(), "mcs-m");
        assert_eq!(d.str().unwrap(), "");
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(1 << 40);
        e.str("backend");
        let buf = e.finish();
        for cut in 0..buf.len() {
            let mut d = Dec::new(&buf[..cut]);
            let a = d.u64();
            let b = d.str();
            assert!(a.is_err() || b.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_length_cannot_drive_a_huge_allocation() {
        let mut e = Enc::new();
        e.u64(u64::MAX - 1); // a length prefix no buffer can satisfy
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(matches!(
            d.len_prefix(),
            Err(CodecError::LengthOverrun | CodecError::BadValue)
        ));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0x80u8; 11];
        assert_eq!(Dec::new(&buf).u64(), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

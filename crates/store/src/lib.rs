//! # mintri-store — the persistent warm-state tier
//!
//! Everything the engine wins at runtime — per-atom completed-answer
//! replay caches, memoized plans, the serve graph registry — is RAM
//! that dies with the process. This crate is the disk tier underneath:
//! a directory of versioned, checksummed snapshot files
//! ([`AnswerSnapshot`], [`PlanSnapshot`], [`GraphSnapshot`]) keyed the
//! same way the RAM caches are (graph fingerprint + backend + recorded
//! order), so a restarted — or *different* — process rebuilds warm
//! state by reading instead of re-enumerating.
//!
//! **The invariant the whole tier rests on:** disk is a cache of proven
//! results addressed by fingerprint, with graph equality verified by
//! the loader. A store miss, a corrupt entry, a version bump, a deleted
//! directory — all of them are *safe*; they only cost recomputation.
//! Nothing above this layer may treat a store answer as authoritative
//! without the equality proof carried inside the snapshot.
//!
//! Mechanics:
//!
//! * **Write-behind.** [`Store::put_answers`] & friends enqueue onto an
//!   unbounded channel and return immediately; one worker thread owns
//!   every file write. A query never blocks on `fsync` (and by default
//!   the worker doesn't fsync either — crash-safety comes from
//!   publication, not durability-at-all-costs).
//! * **Crash-safe publication.** The worker writes `.name.tmp` in the
//!   destination directory, then `rename`s over the final name —
//!   readers see the old complete file or the new complete file, never
//!   a torn one. Stale `.tmp` files from a crashed writer are swept on
//!   [`Store::open`].
//! * **Quarantine on corrupt load.** A file that fails magic, version,
//!   length, checksum or payload validation is moved into `quarantine/`
//!   (keeping the evidence) and reported as a miss.
//! * **Budget.** With [`StoreConfig::max_disk_bytes`] set, writes that
//!   would exceed the budget are skipped (counted, not errored), and
//!   serving layers can ask [`Store::would_exceed_budget`] *before*
//!   accepting an upload.
//!
//! Zero dependencies; the snapshot payloads speak primitive types only
//! (vertex lists, not interner ids), which is what makes entries
//! process- and replica-portable.

mod codec;
mod snapshot;

pub use codec::{fnv1a64, CodecError};
pub use snapshot::{
    AnswerSnapshot, DigestSnapshot, EntryKind, GraphSnapshot, MemoSummary, PlanSnapshot,
    ProfileSnapshot, StoredOrder, HEADER_LEN, MAGIC, VERSION,
};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

/// Where and how a [`Store`] keeps its files.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory; created (with its subdirectories) on open.
    pub root: PathBuf,
    /// Disk budget over all entries, in bytes. `None` = unbounded.
    pub max_disk_bytes: Option<u64>,
    /// `true` makes the worker fsync each file before publishing it.
    /// Off by default: the tier is a cache, and rename-publication
    /// already guarantees no torn reads.
    pub fsync: bool,
}

impl StoreConfig {
    /// Unbounded, non-fsyncing store under `root`.
    pub fn at(root: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            root: root.into(),
            max_disk_bytes: None,
            fsync: false,
        }
    }
}

/// A consistent read of the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entry files currently published.
    pub entries: u64,
    /// Bytes across all published entry files.
    pub bytes: u64,
    /// Files written (publications, including overwrites).
    pub writes: u64,
    /// Writes skipped: entry already present (`overwrite = false`) or
    /// the disk budget would be exceeded.
    pub skipped_writes: u64,
    /// Writes that failed with an I/O error.
    pub write_errors: u64,
    /// Load attempts.
    pub loads: u64,
    /// Loads that found no (valid) entry.
    pub load_misses: u64,
    /// Corrupt files moved to `quarantine/`.
    pub corrupt_quarantined: u64,
}

#[derive(Default)]
struct Counters {
    entries: AtomicU64,
    bytes: AtomicU64,
    writes: AtomicU64,
    skipped_writes: AtomicU64,
    write_errors: AtomicU64,
    loads: AtomicU64,
    load_misses: AtomicU64,
    corrupt_quarantined: AtomicU64,
    quarantine_seq: AtomicU64,
}

/// State shared between the front (`&self` API) and the worker thread.
struct Shared {
    root: PathBuf,
    max_disk_bytes: Option<u64>,
    fsync: bool,
    counters: Counters,
}

enum Job {
    Write {
        subdir: &'static str,
        name: String,
        bytes: Vec<u8>,
        overwrite: bool,
    },
    Remove {
        subdir: &'static str,
        name: String,
    },
    /// Barrier: ack once every job enqueued before it has been handled.
    Flush(mpsc::SyncSender<()>),
}

const ANSWERS_DIR: &str = "answers";
const PLANS_DIR: &str = "plans";
const GRAPHS_DIR: &str = "graphs";
const PROFILES_DIR: &str = "profiles";
const QUARANTINE_DIR: &str = "quarantine";
const ENTRY_EXT: &str = "mts";

/// The disk tier. Cheap to share behind an `Arc`; all methods take
/// `&self`. Loads are synchronous reads; puts are write-behind.
/// Dropping the last handle joins the worker after it drains the queue,
/// so a clean shutdown publishes everything enqueued (a crash simply
/// loses the tail — which, by the invariant above, is safe).
pub struct Store {
    shared: Arc<Shared>,
    tx: Option<mpsc::Sender<Job>>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Store {
    /// Opens (creating if needed) the store under `config.root`,
    /// sweeping stale temp files and scanning the published entries
    /// into the byte/entry counters.
    pub fn open(config: StoreConfig) -> io::Result<Store> {
        let shared = Arc::new(Shared {
            root: config.root,
            max_disk_bytes: config.max_disk_bytes,
            fsync: config.fsync,
            counters: Counters::default(),
        });
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for subdir in [
            ANSWERS_DIR,
            PLANS_DIR,
            GRAPHS_DIR,
            PROFILES_DIR,
            QUARANTINE_DIR,
        ] {
            let dir = shared.root.join(subdir);
            fs::create_dir_all(&dir)?;
            if subdir == QUARANTINE_DIR {
                continue;
            }
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.ends_with(".tmp") {
                    // A writer died mid-publication; the final file (if
                    // any) is still whole.
                    let _ = fs::remove_file(entry.path());
                    continue;
                }
                if !name.ends_with(&format!(".{ENTRY_EXT}")) {
                    continue;
                }
                if let Ok(meta) = entry.metadata() {
                    entries += 1;
                    bytes += meta.len();
                }
            }
        }
        shared.counters.entries.store(entries, Ordering::Relaxed);
        shared.counters.bytes.store(bytes, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel::<Job>();
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("mintri-store".to_string())
            .spawn(move || {
                // Senders dropping closes the channel; buffered jobs are
                // still delivered before the Err, so a clean drop
                // flushes.
                while let Ok(job) = rx.recv() {
                    handle_job(&worker_shared, job);
                }
            })?;
        Ok(Store {
            shared,
            tx: Some(tx),
            worker: Mutex::new(Some(worker)),
        })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    fn enqueue(&self, job: Job) {
        // The worker outlives every sender except during Drop, where
        // `tx` is taken first — enqueue is never reachable then.
        let _ = self.tx.as_ref().expect("store worker running").send(job);
    }

    /// Persists a completed-answer replay cache (write-behind). With
    /// `overwrite = false` an already-published entry is left alone —
    /// the mode for eviction spills, where a deposit-time write usually
    /// got there first.
    pub fn put_answers(&self, snap: &AnswerSnapshot, overwrite: bool) {
        self.enqueue(Job::Write {
            subdir: ANSWERS_DIR,
            name: answers_name(snap.fingerprint, &snap.backend, snap.order),
            bytes: snap.encode(),
            overwrite,
        });
    }

    /// Loads the replay cache for `(fingerprint, backend, order)`.
    /// `None` on absence *or* corruption (the corrupt file is
    /// quarantined). The caller still owns the graph-equality check
    /// against the snapshot's `nodes`/`edges`.
    pub fn load_answers(
        &self,
        fingerprint: u64,
        backend: &str,
        order: StoredOrder,
    ) -> Option<AnswerSnapshot> {
        self.load(
            ANSWERS_DIR,
            &answers_name(fingerprint, backend, order),
            AnswerSnapshot::decode,
        )
    }

    /// Persists a memoized plan (write-behind; last write wins).
    pub fn put_plan(&self, snap: &PlanSnapshot) {
        self.enqueue(Job::Write {
            subdir: PLANS_DIR,
            name: plan_name(snap.fingerprint),
            bytes: snap.encode(),
            overwrite: true,
        });
    }

    /// Loads the plan snapshot for `fingerprint`, with the same
    /// miss/quarantine contract as [`Store::load_answers`].
    pub fn load_plan(&self, fingerprint: u64) -> Option<PlanSnapshot> {
        self.load(PLANS_DIR, &plan_name(fingerprint), PlanSnapshot::decode)
    }

    /// Persists a registry graph under its wire id (write-behind).
    pub fn put_graph(&self, snap: &GraphSnapshot) {
        self.enqueue(Job::Write {
            subdir: GRAPHS_DIR,
            name: graph_name(&snap.id),
            bytes: snap.encode(),
            overwrite: true,
        });
    }

    /// Loads the registry graph published under `id`.
    pub fn load_graph(&self, id: &str) -> Option<GraphSnapshot> {
        self.load(GRAPHS_DIR, &graph_name(id), GraphSnapshot::decode)
    }

    /// Persists a learned cost profile (write-behind; last write wins —
    /// the engine always writes its merged view, so newer is better).
    pub fn put_profile(&self, snap: &ProfileSnapshot) {
        self.enqueue(Job::Write {
            subdir: PROFILES_DIR,
            name: profile_name(snap.fingerprint, &snap.backend),
            bytes: snap.encode(),
            overwrite: true,
        });
    }

    /// Loads the cost profile for `(fingerprint, backend)`, with the
    /// same miss/quarantine contract as [`Store::load_answers`]. A miss
    /// only costs a cold schedule, never a wrong answer.
    pub fn load_profile(&self, fingerprint: u64, backend: &str) -> Option<ProfileSnapshot> {
        self.load(
            PROFILES_DIR,
            &profile_name(fingerprint, backend),
            ProfileSnapshot::decode,
        )
    }

    /// Unpublishes the registry graph under `id` (write-behind).
    pub fn remove_graph(&self, id: &str) {
        self.enqueue(Job::Remove {
            subdir: GRAPHS_DIR,
            name: graph_name(id),
        });
    }

    /// Blocks until every put/remove enqueued before this call has been
    /// handled. Tests and clean shutdowns use it; queries never should.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.enqueue(Job::Flush(ack_tx));
        let _ = ack_rx.recv();
    }

    /// Bytes across all published entries.
    pub fn bytes_stored(&self) -> u64 {
        self.shared.counters.bytes.load(Ordering::Relaxed)
    }

    /// Published entry files.
    pub fn entries(&self) -> u64 {
        self.shared.counters.entries.load(Ordering::Relaxed)
    }

    /// Would publishing `extra` more bytes overflow the configured
    /// budget? Always `false` without a budget. Advisory — the worker
    /// re-checks at write time.
    pub fn would_exceed_budget(&self, extra: u64) -> bool {
        match self.shared.max_disk_bytes {
            Some(cap) => self.bytes_stored().saturating_add(extra) > cap,
            None => false,
        }
    }

    /// The configured disk budget, if any.
    pub fn max_disk_bytes(&self) -> Option<u64> {
        self.shared.max_disk_bytes
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.shared.counters;
        StoreStats {
            entries: c.entries.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
            skipped_writes: c.skipped_writes.load(Ordering::Relaxed),
            write_errors: c.write_errors.load(Ordering::Relaxed),
            loads: c.loads.load(Ordering::Relaxed),
            load_misses: c.load_misses.load(Ordering::Relaxed),
            corrupt_quarantined: c.corrupt_quarantined.load(Ordering::Relaxed),
        }
    }

    fn load<T>(
        &self,
        subdir: &'static str,
        name: &str,
        decode: impl FnOnce(&[u8]) -> Result<T, CodecError>,
    ) -> Option<T> {
        let c = &self.shared.counters;
        c.loads.fetch_add(1, Ordering::Relaxed);
        let path = self.shared.root.join(subdir).join(name);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                c.load_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode(&bytes) {
            Ok(value) => Some(value),
            Err(_) => {
                self.quarantine(&path, bytes.len() as u64);
                c.load_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Moves a corrupt entry aside (evidence preserved, address freed)
    /// and retires it from the byte/entry accounting.
    fn quarantine(&self, path: &Path, len: u64) {
        let c = &self.shared.counters;
        let seq = c.quarantine_seq.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = self
            .shared
            .root
            .join(QUARANTINE_DIR)
            .join(format!("{name}.{seq}"));
        if fs::rename(path, &dest)
            .or_else(|_| fs::remove_file(path))
            .is_ok()
        {
            c.corrupt_quarantined.fetch_add(1, Ordering::Relaxed);
            c.entries.fetch_sub(1, Ordering::Relaxed);
            c.bytes.fetch_sub(len, Ordering::Relaxed);
        }
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Closing the channel lets the worker drain what's queued and
        // exit; joining makes drop a flush point.
        self.tx.take();
        if let Some(worker) = self.worker.lock().unwrap().take() {
            let _ = worker.join();
        }
    }
}

fn handle_job(shared: &Shared, job: Job) {
    let c = &shared.counters;
    match job {
        Job::Write {
            subdir,
            name,
            bytes,
            overwrite,
        } => {
            let dir = shared.root.join(subdir);
            let path = dir.join(&name);
            let old_len = fs::metadata(&path).map(|m| m.len()).ok();
            if !overwrite && old_len.is_some() {
                c.skipped_writes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if let Some(cap) = shared.max_disk_bytes {
                let projected =
                    c.bytes.load(Ordering::Relaxed) - old_len.unwrap_or(0) + bytes.len() as u64;
                if projected > cap {
                    c.skipped_writes.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            let tmp = dir.join(format!(".{name}.tmp"));
            let published = fs::write(&tmp, &bytes)
                .and_then(|()| {
                    if shared.fsync {
                        fs::File::open(&tmp)?.sync_all()?;
                    }
                    fs::rename(&tmp, &path)
                })
                .is_ok();
            if published {
                c.writes.fetch_add(1, Ordering::Relaxed);
                c.bytes.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                if let Some(old) = old_len {
                    c.bytes.fetch_sub(old, Ordering::Relaxed);
                } else {
                    c.entries.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                let _ = fs::remove_file(&tmp);
                c.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Job::Remove { subdir, name } => {
            let path = shared.root.join(subdir).join(&name);
            if let Ok(meta) = fs::metadata(&path) {
                if fs::remove_file(&path).is_ok() {
                    c.entries.fetch_sub(1, Ordering::Relaxed);
                    c.bytes.fetch_sub(meta.len(), Ordering::Relaxed);
                }
            }
        }
        Job::Flush(ack) => {
            let _ = ack.send(());
        }
    }
}

/// File-name-safe rendering of an id fragment (backend names, wire
/// graph ids). The sanitized form is part of the entry's disk identity.
fn sanitize(fragment: &str) -> String {
    fragment
        .chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() || ch == '-' || ch == '_' {
                ch
            } else {
                '_'
            }
        })
        .collect()
}

fn answers_name(fingerprint: u64, backend: &str, order: StoredOrder) -> String {
    format!(
        "a{fingerprint:016x}-{}-{}.{ENTRY_EXT}",
        sanitize(backend),
        order.tag()
    )
}

fn plan_name(fingerprint: u64) -> String {
    format!("p{fingerprint:016x}.{ENTRY_EXT}")
}

fn graph_name(id: &str) -> String {
    format!("g-{}.{ENTRY_EXT}", sanitize(id))
}

fn profile_name(fingerprint: u64, backend: &str) -> String {
    format!("f{fingerprint:016x}-{}.{ENTRY_EXT}", sanitize(backend))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch root, removed on drop.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> ScratchDir {
            let dir = std::env::temp_dir().join(format!(
                "mintri-store-{tag}-{}-{}",
                std::process::id(),
                DIR_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample(fp: u64) -> AnswerSnapshot {
        AnswerSnapshot {
            fingerprint: fp,
            backend: "mcs-m".into(),
            order: StoredOrder::UponGeneration,
            nodes: 5,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
            answers: vec![vec![vec![0, 2]], vec![vec![1, 3]]],
            summary: MemoSummary::default(),
        }
    }

    #[test]
    fn put_flush_load_round_trips() {
        let dir = ScratchDir::new("roundtrip");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        let snap = sample(7);
        store.put_answers(&snap, true);
        store.flush();
        assert_eq!(store.entries(), 1);
        assert!(store.bytes_stored() > 0);
        let loaded = store
            .load_answers(7, "mcs-m", StoredOrder::UponGeneration)
            .expect("published entry loads");
        assert_eq!(loaded, snap);
        // A different order key is a different entry: miss.
        assert!(store
            .load_answers(7, "mcs-m", StoredOrder::Unordered)
            .is_none());
        assert_eq!(store.stats().load_misses, 1);
    }

    #[test]
    fn entries_survive_a_reopen() {
        let dir = ScratchDir::new("reopen");
        {
            let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
            store.put_answers(&sample(1), true);
            store.put_plan(&PlanSnapshot {
                fingerprint: 1,
                nodes: 5,
                edges: vec![(0, 1)],
                components: vec![vec![0, 1]],
                atoms: vec![vec![0, 1]],
                separators: vec![],
            });
            store.put_graph(&GraphSnapshot {
                id: "g1".into(),
                nodes: 2,
                edges: vec![(0, 1)],
            });
            // No explicit flush: Drop joins the worker after a drain.
        }
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        assert_eq!(store.entries(), 3, "reopen scans the published entries");
        assert!(store
            .load_answers(1, "mcs-m", StoredOrder::UponGeneration)
            .is_some());
        assert!(store.load_plan(1).is_some());
        assert_eq!(store.load_graph("g1").unwrap().nodes, 2);
    }

    #[test]
    fn corrupt_entries_are_quarantined_misses() {
        let dir = ScratchDir::new("corrupt");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put_answers(&sample(3), true);
        store.flush();
        // Flip one payload bit on disk.
        let path =
            dir.0
                .join(ANSWERS_DIR)
                .join(answers_name(3, "mcs-m", StoredOrder::UponGeneration));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(
            store
                .load_answers(3, "mcs-m", StoredOrder::UponGeneration)
                .is_none(),
            "a corrupt entry must be a miss, not an answer"
        );
        let stats = store.stats();
        assert_eq!(stats.corrupt_quarantined, 1);
        assert_eq!(stats.entries, 0, "quarantine retires the entry");
        assert!(!path.exists(), "the corrupt file left its address");
        assert_eq!(
            fs::read_dir(dir.0.join(QUARANTINE_DIR)).unwrap().count(),
            1,
            "the evidence is preserved"
        );
        // The address is reusable: a rewrite publishes cleanly.
        store.put_answers(&sample(3), true);
        store.flush();
        assert!(store
            .load_answers(3, "mcs-m", StoredOrder::UponGeneration)
            .is_some());
    }

    #[test]
    fn truncated_entries_are_quarantined_misses() {
        let dir = ScratchDir::new("truncated");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put_answers(&sample(4), true);
        store.flush();
        let path =
            dir.0
                .join(ANSWERS_DIR)
                .join(answers_name(4, "mcs-m", StoredOrder::UponGeneration));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store
            .load_answers(4, "mcs-m", StoredOrder::UponGeneration)
            .is_none());
        assert_eq!(store.stats().corrupt_quarantined, 1);
    }

    #[test]
    fn profiles_round_trip_and_survive_a_reopen() {
        let dir = ScratchDir::new("profiles");
        let snap = ProfileSnapshot {
            fingerprint: 0xfeed,
            backend: "mcs-m".into(),
            nodes: 7,
            first_us: DigestSnapshot {
                centroids: vec![(250.0f64.to_bits(), 2)],
                count: 2,
                min_bits: 200.0f64.to_bits(),
                max_bits: 300.0f64.to_bits(),
            },
            gap_us: DigestSnapshot::default(),
            live_runs: 2,
            results_total: 10,
            extends_total: 80,
            wall_us_total: 900,
            replay_hits: 5,
            hydrate_hits: 1,
        };
        {
            let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
            store.put_profile(&snap);
            store.flush();
            assert_eq!(store.load_profile(0xfeed, "mcs-m").unwrap(), snap);
            // A different backend is a different entry: miss.
            assert!(store.load_profile(0xfeed, "lex-m").is_none());
        }
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        assert_eq!(store.entries(), 1, "reopen scans the profiles dir too");
        assert_eq!(store.load_profile(0xfeed, "mcs-m").unwrap(), snap);
    }

    #[test]
    fn corrupt_profiles_are_quarantined_misses() {
        let dir = ScratchDir::new("profile-corrupt");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        let snap = ProfileSnapshot {
            fingerprint: 0xabc,
            backend: "mcs-m".into(),
            ..ProfileSnapshot::default()
        };
        store.put_profile(&snap);
        store.flush();
        let path = dir.0.join(PROFILES_DIR).join(profile_name(0xabc, "mcs-m"));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_profile(0xabc, "mcs-m").is_none());
        assert_eq!(store.stats().corrupt_quarantined, 1);
    }

    #[test]
    fn no_overwrite_skips_published_entries() {
        let dir = ScratchDir::new("skip");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        let first = sample(9);
        store.put_answers(&first, true);
        store.flush();
        let mut second = sample(9);
        second.answers.clear(); // a conflicting (worse) spill
        store.put_answers(&second, false);
        store.flush();
        assert_eq!(store.stats().skipped_writes, 1);
        let loaded = store
            .load_answers(9, "mcs-m", StoredOrder::UponGeneration)
            .unwrap();
        assert_eq!(loaded, first, "the published entry won");
    }

    #[test]
    fn budget_skips_writes_and_answers_would_exceed() {
        let dir = ScratchDir::new("budget");
        let store = Store::open(StoreConfig {
            max_disk_bytes: Some(16),
            ..StoreConfig::at(&dir.0)
        })
        .unwrap();
        assert!(!store.would_exceed_budget(16));
        assert!(store.would_exceed_budget(17));
        store.put_answers(&sample(5), true); // the header alone is 24 bytes
        store.flush();
        assert_eq!(store.entries(), 0, "over-budget write was skipped");
        assert_eq!(store.stats().skipped_writes, 1);
    }

    #[test]
    fn remove_graph_unpublishes() {
        let dir = ScratchDir::new("remove");
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        store.put_graph(&GraphSnapshot {
            id: "gx".into(),
            nodes: 3,
            edges: vec![(0, 1), (1, 2)],
        });
        store.flush();
        assert_eq!(store.entries(), 1);
        store.remove_graph("gx");
        store.flush();
        assert_eq!(store.entries(), 0);
        assert_eq!(store.bytes_stored(), 0);
        assert!(store.load_graph("gx").is_none());
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = ScratchDir::new("sweep");
        {
            let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
            store.put_answers(&sample(2), true);
            store.flush();
        }
        let stale = dir.0.join(ANSWERS_DIR).join(".aabb.mts.tmp");
        fs::write(&stale, b"half a write").unwrap();
        let store = Store::open(StoreConfig::at(&dir.0)).unwrap();
        assert!(!stale.exists(), "crashed-writer leftovers are swept");
        assert_eq!(store.entries(), 1, "tmp files never count as entries");
    }
}

//! The typed snapshot entries and the versioned file framing.
//!
//! Every store file is `header ‖ payload`:
//!
//! ```text
//! offset 0   magic   b"MTST"
//!        4   version u16 LE   (this build reads exactly VERSION)
//!        6   kind    u8       (1 answers, 2 plan, 3 graph, 4 profile)
//!        7   reserved u8      (zero)
//!        8   payload length   u64 LE
//!       16   payload FNV-1a64 u64 LE
//!       24   payload…
//! ```
//!
//! The payload encodes one snapshot with the varint codec. Snapshots
//! carry the *graph shape* (nodes + canonical edge list) alongside the
//! fingerprint: a 64-bit fingerprint is an address, not a proof, so
//! loaders verify true graph equality before trusting an entry —
//! a collision costs a comparison, never a wrong answer.
//!
//! Separators are stored as sorted vertex lists, NOT as `SepId`s:
//! separator ids are private to one process's interner and mean nothing
//! across restarts. Hydration re-interns each vertex set into the new
//! session's interner.

use crate::codec::{fnv1a64, CodecError, Dec, Enc};

/// File magic.
pub const MAGIC: [u8; 4] = *b"MTST";
/// Format version this build writes and reads.
pub const VERSION: u16 = 1;
/// Header length in bytes.
pub const HEADER_LEN: usize = 24;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A completed-answer replay cache for one (atom, backend, order).
    Answers = 1,
    /// A memoized atom decomposition.
    Plan = 2,
    /// One serve-registry graph.
    Graph = 3,
    /// Learned per-atom runtime statistics (cost profile).
    Profile = 4,
}

impl EntryKind {
    fn from_u8(v: u8) -> Result<EntryKind, CodecError> {
        match v {
            1 => Ok(EntryKind::Answers),
            2 => Ok(EntryKind::Plan),
            3 => Ok(EntryKind::Graph),
            4 => Ok(EntryKind::Profile),
            other => Err(CodecError::BadKind(other)),
        }
    }
}

/// The order contract a persisted answer list was recorded under — the
/// store-level mirror of the engine's answer key. `Unordered` is one
/// race outcome (set-correct only); the ordered variants are the
/// sequential schedule's emission order under that print mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoredOrder {
    /// Recorded from an unordered parallel run.
    Unordered,
    /// Sequential schedule, results printed upon generation.
    UponGeneration,
    /// Sequential schedule, results printed upon queue pop.
    UponPop,
}

impl StoredOrder {
    /// Filename tag (part of the entry's identity on disk).
    pub fn tag(self) -> &'static str {
        match self {
            StoredOrder::Unordered => "u",
            StoredOrder::UponGeneration => "g",
            StoredOrder::UponPop => "p",
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            StoredOrder::Unordered => 0,
            StoredOrder::UponGeneration => 1,
            StoredOrder::UponPop => 2,
        }
    }

    fn from_u8(v: u8) -> Result<StoredOrder, CodecError> {
        match v {
            0 => Ok(StoredOrder::Unordered),
            1 => Ok(StoredOrder::UponGeneration),
            2 => Ok(StoredOrder::UponPop),
            _ => Err(CodecError::BadValue),
        }
    }
}

/// Memo counters at snapshot time — a record of what the enumeration
/// cost, carried for observability (a hydrated session starts its own
/// counters at zero; that zero is the proof hydration did no work).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSummary {
    /// `Extend` invocations the recording session had made.
    pub extends: u64,
    /// Crossing tests computed (memo misses).
    pub crossing_computed: u64,
    /// Distinct separators interned.
    pub separators_interned: u64,
}

/// A persisted completed-answer replay cache: every minimal
/// triangulation of one atom graph, as lists of separator vertex sets,
/// in the recorded order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerSnapshot {
    /// The atom graph's fingerprint (the disk address).
    pub fingerprint: u64,
    /// Triangulation backend that recorded the list.
    pub backend: String,
    /// Order contract of `answers`.
    pub order: StoredOrder,
    /// Node count of the atom graph.
    pub nodes: u32,
    /// Canonical edge list of the atom graph (equality proof).
    pub edges: Vec<(u32, u32)>,
    /// Each answer is a list of separators; each separator a sorted
    /// vertex list.
    pub answers: Vec<Vec<Vec<u32>>>,
    /// What the recording enumeration cost.
    pub summary: MemoSummary,
}

/// A persisted atom decomposition (the memoized plan for one graph).
/// Stores the decomposition's vertex sets only — the planner re-derives
/// the induced subgraphs and chordality flags on load, which is cheap
/// (no MCS-M triangulations, the expensive part of planning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSnapshot {
    /// The planned graph's fingerprint.
    pub fingerprint: u64,
    /// Node count of the planned graph.
    pub nodes: u32,
    /// Canonical edge list of the planned graph (equality proof).
    pub edges: Vec<(u32, u32)>,
    /// Connected components, as sorted vertex lists.
    pub components: Vec<Vec<u32>>,
    /// Atoms, in decomposition order.
    pub atoms: Vec<Vec<u32>>,
    /// Clique minimal separators the decomposition split on.
    pub separators: Vec<Vec<u32>>,
}

/// One serve-registry graph, persisted under its wire id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSnapshot {
    /// The registry id clients address the graph by.
    pub id: String,
    /// Node count.
    pub nodes: u32,
    /// Canonical edge list.
    pub edges: Vec<(u32, u32)>,
}

/// A serialized t-digest: merged centroids plus the exact extrema the
/// engine's digest tracks. Means are `f64::to_bits` images (the varint
/// codec speaks integers only); weights are observation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestSnapshot {
    /// `(mean_bits, weight)` per centroid, means ascending.
    pub centroids: Vec<(u64, u64)>,
    /// Total observations across all centroids.
    pub count: u64,
    /// `f64::to_bits` of the smallest observation.
    pub min_bits: u64,
    /// `f64::to_bits` of the largest observation.
    pub max_bits: u64,
}

/// Learned runtime statistics for one `(atom fingerprint, backend)`
/// pair — the store-level image of the engine's cost profile.
///
/// Unlike answer/plan snapshots this entry carries **no graph-equality
/// proof**: a profile only steers *scheduling* (cursor order, thread
/// split, dispatch mode, timeouts), never answers, so the worst a
/// fingerprint collision can cost is a mis-tuned schedule — the same
/// price as a cold start.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// The atom graph's fingerprint (the disk address).
    pub fingerprint: u64,
    /// Triangulation backend the statistics were observed under.
    pub backend: String,
    /// Node count of the atom graph (a cheap sanity hint, not a proof).
    pub nodes: u32,
    /// First-result latency distribution, microseconds.
    pub first_us: DigestSnapshot,
    /// Inter-result gap distribution, microseconds.
    pub gap_us: DigestSnapshot,
    /// Completed live enumerations folded into the digests.
    pub live_runs: u64,
    /// Results emitted across those completed live runs.
    pub results_total: u64,
    /// `Extend` invocations across those runs (extends-per-result).
    pub extends_total: u64,
    /// Wall-clock microseconds across those runs (predicted-wall base).
    pub wall_us_total: u64,
    /// Streams answered from the in-RAM replay cache.
    pub replay_hits: u64,
    /// Streams answered by hydrating a disk snapshot.
    pub hydrate_hits: u64,
}

fn enc_digest(e: &mut Enc, d: &DigestSnapshot) {
    e.usize(d.centroids.len());
    for &(mean_bits, weight) in &d.centroids {
        e.u64(mean_bits);
        e.u64(weight);
    }
    e.u64(d.count);
    e.u64(d.min_bits);
    e.u64(d.max_bits);
}

fn dec_digest(d: &mut Dec<'_>) -> Result<DigestSnapshot, CodecError> {
    let n = d.len_prefix()?;
    let mut centroids = Vec::with_capacity(n);
    for _ in 0..n {
        centroids.push((d.u64()?, d.u64()?));
    }
    Ok(DigestSnapshot {
        centroids,
        count: d.u64()?,
        min_bits: d.u64()?,
        max_bits: d.u64()?,
    })
}

fn enc_edges(e: &mut Enc, edges: &[(u32, u32)]) {
    e.usize(edges.len());
    for &(u, v) in edges {
        e.u32(u);
        e.u32(v);
    }
}

fn dec_edges(d: &mut Dec<'_>) -> Result<Vec<(u32, u32)>, CodecError> {
    let n = d.len_prefix()?;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push((d.u32()?, d.u32()?));
    }
    Ok(edges)
}

fn enc_sets(e: &mut Enc, sets: &[Vec<u32>]) {
    e.usize(sets.len());
    for set in sets {
        e.usize(set.len());
        for &v in set {
            e.u32(v);
        }
    }
}

fn dec_sets(d: &mut Dec<'_>) -> Result<Vec<Vec<u32>>, CodecError> {
    let n = d.len_prefix()?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.len_prefix()?;
        let mut set = Vec::with_capacity(k);
        for _ in 0..k {
            set.push(d.u32()?);
        }
        sets.push(set);
    }
    Ok(sets)
}

impl AnswerSnapshot {
    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.fingerprint);
        e.str(&self.backend);
        e.u8(self.order.to_u8());
        e.u32(self.nodes);
        enc_edges(&mut e, &self.edges);
        e.usize(self.answers.len());
        for answer in &self.answers {
            enc_sets(&mut e, answer);
        }
        e.u64(self.summary.extends);
        e.u64(self.summary.crossing_computed);
        e.u64(self.summary.separators_interned);
        e.finish()
    }

    fn decode_payload(d: &mut Dec<'_>) -> Result<AnswerSnapshot, CodecError> {
        let fingerprint = d.u64()?;
        let backend = d.str()?;
        let order = StoredOrder::from_u8(d.u8()?)?;
        let nodes = d.u32()?;
        let edges = dec_edges(d)?;
        let n = d.len_prefix()?;
        let mut answers = Vec::with_capacity(n);
        for _ in 0..n {
            answers.push(dec_sets(d)?);
        }
        let summary = MemoSummary {
            extends: d.u64()?,
            crossing_computed: d.u64()?,
            separators_interned: d.u64()?,
        };
        Ok(AnswerSnapshot {
            fingerprint,
            backend,
            order,
            nodes,
            edges,
            answers,
            summary,
        })
    }

    /// The full file bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        frame(EntryKind::Answers, self.encode_payload())
    }

    /// Parses full file bytes, verifying magic, version, kind, length
    /// and checksum.
    pub fn decode(bytes: &[u8]) -> Result<AnswerSnapshot, CodecError> {
        let payload = unframe(bytes, EntryKind::Answers)?;
        let mut d = Dec::new(payload);
        let snap = Self::decode_payload(&mut d)?;
        expect_drained(&d)?;
        Ok(snap)
    }
}

impl PlanSnapshot {
    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.fingerprint);
        e.u32(self.nodes);
        enc_edges(&mut e, &self.edges);
        enc_sets(&mut e, &self.components);
        enc_sets(&mut e, &self.atoms);
        enc_sets(&mut e, &self.separators);
        e.finish()
    }

    /// The full file bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        frame(EntryKind::Plan, self.encode_payload())
    }

    /// Parses full file bytes, verifying the header end to end.
    pub fn decode(bytes: &[u8]) -> Result<PlanSnapshot, CodecError> {
        let payload = unframe(bytes, EntryKind::Plan)?;
        let mut d = Dec::new(payload);
        let snap = PlanSnapshot {
            fingerprint: d.u64()?,
            nodes: d.u32()?,
            edges: dec_edges(&mut d)?,
            components: dec_sets(&mut d)?,
            atoms: dec_sets(&mut d)?,
            separators: dec_sets(&mut d)?,
        };
        expect_drained(&d)?;
        Ok(snap)
    }
}

impl GraphSnapshot {
    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.str(&self.id);
        e.u32(self.nodes);
        enc_edges(&mut e, &self.edges);
        e.finish()
    }

    /// The full file bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        frame(EntryKind::Graph, self.encode_payload())
    }

    /// Parses full file bytes, verifying the header end to end.
    pub fn decode(bytes: &[u8]) -> Result<GraphSnapshot, CodecError> {
        let payload = unframe(bytes, EntryKind::Graph)?;
        let mut d = Dec::new(payload);
        let snap = GraphSnapshot {
            id: d.str()?,
            nodes: d.u32()?,
            edges: dec_edges(&mut d)?,
        };
        expect_drained(&d)?;
        Ok(snap)
    }
}

impl ProfileSnapshot {
    fn encode_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.fingerprint);
        e.str(&self.backend);
        e.u32(self.nodes);
        enc_digest(&mut e, &self.first_us);
        enc_digest(&mut e, &self.gap_us);
        e.u64(self.live_runs);
        e.u64(self.results_total);
        e.u64(self.extends_total);
        e.u64(self.wall_us_total);
        e.u64(self.replay_hits);
        e.u64(self.hydrate_hits);
        e.finish()
    }

    /// The full file bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        frame(EntryKind::Profile, self.encode_payload())
    }

    /// Parses full file bytes, verifying the header end to end.
    pub fn decode(bytes: &[u8]) -> Result<ProfileSnapshot, CodecError> {
        let payload = unframe(bytes, EntryKind::Profile)?;
        let mut d = Dec::new(payload);
        let snap = ProfileSnapshot {
            fingerprint: d.u64()?,
            backend: d.str()?,
            nodes: d.u32()?,
            first_us: dec_digest(&mut d)?,
            gap_us: dec_digest(&mut d)?,
            live_runs: d.u64()?,
            results_total: d.u64()?,
            extends_total: d.u64()?,
            wall_us_total: d.u64()?,
            replay_hits: d.u64()?,
            hydrate_hits: d.u64()?,
        };
        expect_drained(&d)?;
        Ok(snap)
    }
}

/// Trailing garbage after a valid payload is corruption too.
fn expect_drained(d: &Dec<'_>) -> Result<(), CodecError> {
    if d.is_empty() {
        Ok(())
    } else {
        Err(CodecError::LengthOverrun)
    }
}

fn frame(kind: EntryKind, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind as u8);
    out.push(0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn unframe(bytes: &[u8], expect: EntryKind) -> Result<&[u8], CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = EntryKind::from_u8(bytes[6])?;
    if kind != expect {
        return Err(CodecError::BadKind(bytes[6]));
    }
    if bytes[7] != 0 {
        return Err(CodecError::BadValue);
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    if len != payload.len() as u64 {
        return Err(CodecError::Truncated);
    }
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    if fnv1a64(payload) != checksum {
        return Err(CodecError::BadChecksum);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_answers() -> AnswerSnapshot {
        AnswerSnapshot {
            fingerprint: 0xdead_beef_cafe_f00d,
            backend: "mcs-m".to_string(),
            order: StoredOrder::UponGeneration,
            nodes: 6,
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)],
            answers: vec![vec![vec![0, 2], vec![2, 4]], vec![vec![1, 3]], vec![]],
            summary: MemoSummary {
                extends: 41,
                crossing_computed: 7,
                separators_interned: 9,
            },
        }
    }

    #[test]
    fn answers_round_trip() {
        let snap = sample_answers();
        assert_eq!(AnswerSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn plan_round_trips() {
        let snap = PlanSnapshot {
            fingerprint: 99,
            nodes: 9,
            edges: vec![(0, 1), (3, 8)],
            components: vec![vec![0, 1, 2, 3, 4, 5, 6, 7, 8]],
            atoms: vec![vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7, 8]],
            separators: vec![vec![3]],
        };
        assert_eq!(PlanSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn graph_round_trips() {
        let snap = GraphSnapshot {
            id: "g0123456789abcdef".to_string(),
            nodes: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
        };
        assert_eq!(GraphSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    fn sample_profile() -> ProfileSnapshot {
        ProfileSnapshot {
            fingerprint: 0x0123_4567_89ab_cdef,
            backend: "mcs-m".to_string(),
            nodes: 12,
            first_us: DigestSnapshot {
                centroids: vec![(120.5f64.to_bits(), 3), (900.0f64.to_bits(), 1)],
                count: 4,
                min_bits: 98.0f64.to_bits(),
                max_bits: 900.0f64.to_bits(),
            },
            gap_us: DigestSnapshot {
                centroids: vec![(7.25f64.to_bits(), 40)],
                count: 40,
                min_bits: 2.0f64.to_bits(),
                max_bits: 31.0f64.to_bits(),
            },
            live_runs: 4,
            results_total: 44,
            extends_total: 391,
            wall_us_total: 5_120,
            replay_hits: 17,
            hydrate_hits: 2,
        }
    }

    #[test]
    fn profile_round_trips() {
        let snap = sample_profile();
        assert_eq!(ProfileSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn profile_truncations_fail_cleanly() {
        let bytes = sample_profile().encode();
        for cut in 0..bytes.len() {
            assert!(
                ProfileSnapshot::decode(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn profile_bit_flips_fail_cleanly() {
        let snap = sample_profile();
        let bytes = snap.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok(decoded) = ProfileSnapshot::decode(&corrupt) {
                    panic!(
                        "flip at byte {byte} bit {bit} decoded Ok ({})",
                        if decoded == snap {
                            "identical — flip not covered by checksum"
                        } else {
                            "DIFFERENT SNAPSHOT"
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn profile_kind_is_rejected_by_other_loaders() {
        let profile = sample_profile();
        assert!(matches!(
            AnswerSnapshot::decode(&profile.encode()),
            Err(CodecError::BadKind(4))
        ));
        assert!(matches!(
            ProfileSnapshot::decode(&sample_answers().encode()),
            Err(CodecError::BadKind(1))
        ));
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let bytes = sample_answers().encode();
        for cut in 0..bytes.len() {
            assert!(
                AnswerSnapshot::decode(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_fails_cleanly() {
        // Deterministic and exhaustive: flip each bit of the encoded
        // file; the decode must error (the checksum catches payload
        // flips, field validation catches header flips) — never panic,
        // never return a different snapshot as Ok.
        let snap = sample_answers();
        let bytes = snap.encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                if let Ok(decoded) = AnswerSnapshot::decode(&corrupt) {
                    panic!(
                        "flip at byte {byte} bit {bit} decoded Ok ({})",
                        if decoded == snap {
                            "identical — flip not covered by checksum"
                        } else {
                            "DIFFERENT SNAPSHOT"
                        }
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let graph = GraphSnapshot {
            id: "g1".into(),
            nodes: 2,
            edges: vec![(0, 1)],
        };
        assert!(matches!(
            AnswerSnapshot::decode(&graph.encode()),
            Err(CodecError::BadKind(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample_answers().encode();
        bytes[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
        assert!(matches!(
            AnswerSnapshot::decode(&bytes),
            Err(CodecError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_answers().encode();
        bytes.push(0);
        assert!(AnswerSnapshot::decode(&bytes).is_err());
    }
}

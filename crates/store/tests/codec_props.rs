//! Property tests for the snapshot codec: every snapshot the store can
//! be asked to persist must survive encode → frame → unframe → decode
//! byte-exactly (round-trip identity), and framed bytes with arbitrary
//! mutations must fail to decode cleanly rather than panic or produce a
//! different snapshot that still validates.

use proptest::prelude::*;

use mintri_store::{AnswerSnapshot, GraphSnapshot, MemoSummary, PlanSnapshot, StoredOrder};

fn arb_order() -> impl Strategy<Value = StoredOrder> {
    prop_oneof![
        Just(StoredOrder::Unordered),
        Just(StoredOrder::UponGeneration),
        Just(StoredOrder::UponPop),
    ]
}

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..64, 0u32..64), 0..40)
}

fn arb_sets() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..64, 0..12), 0..10)
}

fn arb_answers() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(arb_sets(), 0..6)
}

fn arb_backend() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![Just('m'), Just('c'), Just('s'), Just('-'), Just('x')],
        1..10,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn arb_answer_snapshot() -> impl Strategy<Value = AnswerSnapshot> {
    (
        (any::<u64>(), arb_backend(), arb_order(), 0u32..256),
        arb_edges(),
        arb_answers(),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((fingerprint, backend, order, nodes), edges, answers, (a, b, c))| AnswerSnapshot {
                fingerprint,
                backend,
                order,
                nodes,
                edges,
                answers,
                summary: MemoSummary {
                    extends: a,
                    crossing_computed: b,
                    separators_interned: c,
                },
            },
        )
}

fn arb_plan_snapshot() -> impl Strategy<Value = PlanSnapshot> {
    (
        (any::<u64>(), 0u32..256, arb_edges()),
        arb_sets(),
        arb_sets(),
        arb_sets(),
    )
        .prop_map(
            |((fingerprint, nodes, edges), components, atoms, separators)| PlanSnapshot {
                fingerprint,
                nodes,
                edges,
                components,
                atoms,
                separators,
            },
        )
}

proptest! {
    #[test]
    fn answer_snapshots_round_trip(snap in arb_answer_snapshot()) {
        let bytes = snap.encode();
        let decoded = AnswerSnapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn plan_snapshots_round_trip(snap in arb_plan_snapshot()) {
        let bytes = snap.encode();
        let decoded = PlanSnapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn graph_snapshots_round_trip(
        id in arb_backend(),
        nodes in 0u32..512,
        edges in arb_edges(),
    ) {
        let snap = GraphSnapshot { id, nodes, edges };
        let bytes = snap.encode();
        let decoded = GraphSnapshot::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, snap);
    }

    /// Any single-byte mutation anywhere in the file either fails to
    /// decode (the common case: the checksum catches it) or — never —
    /// silently yields a *different* snapshot. A mutation the checksum
    /// cannot catch does not exist for single-byte flips because the
    /// checksum covers the whole payload and the header fields are each
    /// validated.
    #[test]
    fn mutated_answer_bytes_never_decode_to_a_different_snapshot(
        snap in arb_answer_snapshot(),
        pos_seed in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let bytes = snap.encode();
        let pos = (pos_seed as usize) % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;
        match AnswerSnapshot::decode(&corrupt) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, snap),
        }
    }

    /// Any truncation fails cleanly.
    #[test]
    fn truncated_answer_bytes_fail_cleanly(
        snap in arb_answer_snapshot(),
        cut_seed in any::<u32>(),
    ) {
        let bytes = snap.encode();
        let cut = (cut_seed as usize) % bytes.len();
        prop_assert!(AnswerSnapshot::decode(&bytes[..cut]).is_err());
    }
}

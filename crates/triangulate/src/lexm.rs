//! LEX M (Rose–Tarjan–Lueker): the classic lexicographic-search minimal
//! triangulation algorithm that MCS-M simplifies.
//!
//! LEX M assigns each vertex a lexicographic label (a sequence of the
//! weights of its numbered "reachable" neighbors). At each step the
//! unnumbered vertex with the lexicographically largest label is numbered,
//! and every unnumbered vertex `u` reachable from it through strictly
//! lower-labeled unnumbered vertices gets the new number appended to its
//! label — plus a fill edge if not adjacent. Like MCS-M, the output is a
//! minimal triangulation and the numbering is a minimal elimination order.
//!
//! The implementation follows the standard `O(n·m)` formulation with
//! float-free label compression: labels are renumbered to small integers
//! after every step.

use crate::types::{Triangulation, Triangulator};
use mintri_graph::{Graph, Node, NodeSet};

/// The LEX M minimal triangulation algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexM;

impl Triangulator for LexM {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        lex_m(g)
    }

    fn guarantees_minimal(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "LEX_M"
    }
}

/// Runs LEX M on `g`. Returns a minimal triangulation with its perfect
/// elimination order.
pub fn lex_m(g: &Graph) -> Triangulation {
    let n = g.num_nodes();
    // labels as small integers; larger = lexicographically larger
    let mut label = vec![0u32; n];
    let mut numbered = NodeSet::new(n);
    let mut visit_order: Vec<Node> = Vec::with_capacity(n);
    let mut fill: Vec<(Node, Node)> = Vec::new();

    let mut reach: Vec<Vec<Node>> = vec![Vec::new(); 2 * n + 2];
    let mut marked = NodeSet::new(n);

    for _ in 0..n {
        let v = (0..n as Node)
            .filter(|&u| !numbered.contains(u))
            .max_by(|&a, &b| label[a as usize].cmp(&label[b as usize]).then(b.cmp(&a)))
            .expect("an unnumbered vertex exists");

        // find all unnumbered u with a path to v through unnumbered vertices
        // of label strictly smaller than label(u)
        marked.clear();
        marked.insert(v);
        let mut qualified: Vec<Node> = Vec::new();
        for bucket in reach.iter_mut() {
            bucket.clear();
        }
        for u in g.neighbors(v).iter() {
            if !numbered.contains(u) {
                marked.insert(u);
                qualified.push(u);
                reach[label[u as usize] as usize].push(u);
            }
        }
        for j in 0..reach.len() {
            while let Some(y) = reach[j].pop() {
                for z in g.neighbors(y).iter() {
                    if numbered.contains(z) || marked.contains(z) {
                        continue;
                    }
                    marked.insert(z);
                    if label[z as usize] as usize > j {
                        qualified.push(z);
                        reach[label[z as usize] as usize].push(z);
                    } else {
                        reach[j].push(z);
                    }
                }
            }
        }

        // append the new number to every qualified label: bump by 1 "half
        // step" and recompress all labels to even integers so that there is
        // always room between consecutive labels
        for &u in &qualified {
            label[u as usize] = label[u as usize] * 2 + 1;
            if !g.has_edge(u, v) {
                fill.push((u.min(v), u.max(v)));
            }
        }
        for (u, l) in label.iter_mut().enumerate() {
            if !qualified.contains(&(u as Node)) {
                *l *= 2;
            }
        }
        compress_labels(&mut label);

        numbered.insert(v);
        visit_order.push(v);
    }

    let mut h = g.clone();
    for &(u, v) in &fill {
        h.add_edge(u, v);
    }
    visit_order.reverse();
    Triangulation {
        graph: h,
        fill,
        peo: Some(visit_order),
    }
}

/// Renumbers labels to `0..k` preserving order, so buckets stay small.
fn compress_labels(label: &mut [u32]) {
    let mut sorted: Vec<u32> = label.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for l in label.iter_mut() {
        *l = sorted.binary_search(l).expect("own value present") as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_minimal_triangulation;
    use mintri_chordal::{is_chordal, is_perfect_elimination_order};

    #[test]
    fn chordal_input_gets_no_fill() {
        for g in [Graph::path(6), Graph::complete(5), Graph::cycle(3)] {
            let t = lex_m(&g);
            assert_eq!(t.fill_count(), 0);
        }
    }

    #[test]
    fn cycle_fill_is_n_minus_3() {
        for n in 4..10 {
            let g = Graph::cycle(n);
            let t = lex_m(&g);
            assert!(is_chordal(&t.graph));
            assert_eq!(t.fill_count(), n - 3, "C{n}");
        }
    }

    #[test]
    fn result_is_minimal() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (6, 2),
            ],
        );
        let t = lex_m(&g);
        assert!(is_minimal_triangulation(&g, &t.graph));
        assert!(is_perfect_elimination_order(
            &t.graph,
            t.peo.as_ref().unwrap()
        ));
    }

    #[test]
    fn label_compression_preserves_order() {
        let mut labels = vec![10, 4, 4, 22, 0];
        compress_labels(&mut labels);
        assert_eq!(labels, vec![2, 1, 1, 3, 0]);
    }

    #[test]
    fn disconnected_input() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let t = lex_m(&g);
        assert!(is_chordal(&t.graph));
        assert_eq!(t.fill_count(), 2);
    }

    #[test]
    fn agrees_with_mcs_m_on_fill_size_for_cycles() {
        // both are minimal; on cycles every minimal triangulation has the
        // same fill count
        for n in 4..9 {
            let g = Graph::cycle(n);
            assert_eq!(lex_m(&g).fill_count(), crate::mcs_m(&g).fill_count());
        }
    }
}

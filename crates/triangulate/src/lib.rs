//! # mintri-triangulate — single-result triangulation algorithms
//!
//! The "off-the-shelf" triangulation procedures the paper plugs into its
//! `Extend` step (Figure 3, Section 6.1.2), all implemented from scratch:
//!
//! * [`McsM`] — Maximum Cardinality Search for Minimal triangulation;
//! * [`LbTriang`] — minimal triangulation from an arbitrary (possibly
//!   dynamic, e.g. min-fill) ordering;
//! * [`LexM`] — the classic Rose–Tarjan–Lueker lexicographic search;
//! * [`EliminationOrder`] — classic non-minimal elimination fill-in;
//! * [`CompleteFill`] — the naive fill-everything baseline;
//! * [`minimal_triangulation_sandwich`] — turns any triangulation into a
//!   minimal one (`MinTriSandwich`);
//! * [`is_minimal_triangulation`] — the Rose–Tarjan–Lueker minimality test.
//!
//! Every algorithm works on arbitrary (even disconnected) graphs.
//!
//! ```
//! use mintri_graph::Graph;
//! use mintri_triangulate::{mcs_m, is_minimal_triangulation, minimal_triangulation, CompleteFill};
//!
//! let g = Graph::cycle(6);
//! // MCS-M produces a minimal triangulation directly (n - 3 chords)
//! let tri = mcs_m(&g);
//! assert_eq!(tri.fill_count(), 3);
//! assert!(is_minimal_triangulation(&g, &tri.graph));
//!
//! // a non-minimal backend gets the sandwich treatment automatically
//! let tri2 = minimal_triangulation(&g, &CompleteFill);
//! assert!(is_minimal_triangulation(&g, &tri2.graph));
//! ```

mod elimination;
mod lbtriang;
mod lexm;
mod mcsm;
mod sandwich;
mod types;

pub use elimination::{eliminate, EliminationOrder};
pub use lbtriang::{lb_triang, LbTriang, OrderingStrategy};
pub use lexm::{lex_m, LexM};
pub use mcsm::{mcs_m, mcs_m_into, McsM};
pub use sandwich::{is_minimal_triangulation, minimal_triangulation_sandwich};
pub use types::{CompleteFill, TriScratch, Triangulation, Triangulator};

use mintri_graph::Graph;

/// Produces a **minimal** triangulation of `g` using `t`, adding the
/// sandwich step when `t` does not guarantee minimality — exactly lines 1–2
/// of the paper's `Extend` (Figure 3).
pub fn minimal_triangulation(g: &Graph, t: &dyn Triangulator) -> Triangulation {
    let raw = t.triangulate(g);
    if t.guarantees_minimal() {
        raw
    } else {
        minimal_triangulation_sandwich(g, &raw.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_triangulation_is_minimal_for_all_backends() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (6, 2),
            ],
        );
        let backends: Vec<Box<dyn Triangulator>> = vec![
            Box::new(McsM),
            Box::new(LbTriang::min_fill()),
            Box::new(EliminationOrder::min_degree()),
            Box::new(CompleteFill),
        ];
        for b in &backends {
            let t = minimal_triangulation(&g, b.as_ref());
            assert!(
                is_minimal_triangulation(&g, &t.graph),
                "{} must deliver a minimal triangulation",
                b.name()
            );
        }
    }
}

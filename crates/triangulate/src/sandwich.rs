//! The minimal triangulation sandwich (`MinTriSandwich` of Figure 3):
//! given a graph `g` and *any* triangulation `h` of it, extract a minimal
//! triangulation `h'` with `E(g) ⊆ E(h') ⊆ E(h)` — Heggernes [23] calls
//! this the *minimal triangulation sandwich problem*.
//!
//! We use the Rose–Tarjan–Lueker characterization: a triangulation is
//! minimal iff removing any single fill edge breaks chordality. The
//! minimalizer therefore repeatedly deletes fill edges whose removal keeps
//! the graph chordal, until none qualifies; the fixpoint is a minimal
//! triangulation. `O(f² · (n + m))` for `f` fill edges — polynomial, as
//! required by `Extend`.

use crate::types::Triangulation;
use mintri_chordal::is_chordal;
use mintri_graph::Graph;

/// Shrinks the triangulation `h` of `g` to a minimal one (in place on a
/// clone). `h` must be a chordal supergraph of `g`.
pub fn minimal_triangulation_sandwich(g: &Graph, h: &Graph) -> Triangulation {
    assert!(
        h.is_supergraph_of(g),
        "sandwich requires a supergraph of the base graph"
    );
    debug_assert!(is_chordal(h), "sandwich requires a chordal upper bound");

    let mut current = h.clone();
    loop {
        let mut removed_any = false;
        for (u, v) in current.fill_edges_over(g) {
            current.remove_edge(u, v);
            if is_chordal(&current) {
                removed_any = true;
            } else {
                current.add_edge(u, v);
            }
        }
        if !removed_any {
            break;
        }
    }

    let fill = current.fill_edges_over(g);
    Triangulation {
        graph: current,
        fill,
        peo: None,
    }
}

/// `true` iff `h` is a *minimal* triangulation of `g`: a chordal supergraph
/// such that removing any fill edge destroys chordality
/// (the Rose–Tarjan–Lueker characterization of Section 2.3's definition).
pub fn is_minimal_triangulation(g: &Graph, h: &Graph) -> bool {
    if !h.is_supergraph_of(g) || !is_chordal(h) {
        return false;
    }
    let mut scratch = h.clone();
    for (u, v) in h.fill_edges_over(g) {
        scratch.remove_edge(u, v);
        let still_chordal = is_chordal(&scratch);
        scratch.add_edge(u, v);
        if still_chordal {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CompleteFill, Triangulator};

    #[test]
    fn sandwich_from_complete_fill_is_minimal() {
        for g in [
            Graph::cycle(6),
            Graph::path(5),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]),
        ] {
            let t = CompleteFill.triangulate(&g);
            let m = minimal_triangulation_sandwich(&g, &t.graph);
            assert!(is_minimal_triangulation(&g, &m.graph), "failed on {g:?}");
        }
    }

    #[test]
    fn sandwich_of_already_minimal_is_identity() {
        let g = Graph::cycle(5);
        let t = crate::mcs_m(&g);
        let m = minimal_triangulation_sandwich(&g, &t.graph);
        assert_eq!(m.graph, t.graph);
    }

    #[test]
    fn sandwich_on_chordal_graph_removes_all_fill() {
        let g = Graph::path(6);
        let t = CompleteFill.triangulate(&g);
        let m = minimal_triangulation_sandwich(&g, &t.graph);
        assert_eq!(m.graph, g);
        assert_eq!(m.fill_count(), 0);
    }

    #[test]
    fn minimality_test_rejects_non_minimal() {
        let g = Graph::cycle(4);
        let mut h = g.clone();
        h.add_edge(0, 2);
        h.add_edge(1, 3); // both diagonals: chordal but not minimal
        assert!(is_chordal(&h));
        assert!(!is_minimal_triangulation(&g, &h));
        h.remove_edge(1, 3);
        assert!(is_minimal_triangulation(&g, &h));
    }

    #[test]
    fn minimality_test_rejects_non_chordal_and_non_supergraphs() {
        let g = Graph::cycle(4);
        assert!(!is_minimal_triangulation(&g, &g)); // not chordal
        let other = Graph::path(4);
        assert!(!is_minimal_triangulation(&g, &other)); // not a supergraph
    }

    #[test]
    #[should_panic(expected = "supergraph")]
    fn sandwich_rejects_non_supergraph() {
        let g = Graph::cycle(4);
        minimal_triangulation_sandwich(&g, &Graph::path(4));
    }
}

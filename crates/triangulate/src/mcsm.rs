//! MCS-M: Maximum Cardinality Search for Minimal Triangulation
//! (Berry, Blair, Heggernes — reference [4] of the paper).
//!
//! MCS-M extends Maximum Cardinality Search: vertices are numbered from `n`
//! down to `1`, always choosing an unnumbered vertex of maximum weight. When
//! `v` is numbered, every unnumbered `u` that is adjacent to `v` *or*
//! reachable from `v` through unnumbered vertices of weight strictly smaller
//! than `w(u)` gets its weight incremented and — if `{u,v}` is not an edge —
//! a fill edge. The original graph plus the fill edges is a minimal
//! triangulation, and the numbering (reversed) is a perfect elimination
//! order of it.

use crate::types::{TriScratch, Triangulation, Triangulator};
use mintri_graph::{Graph, Node};

/// The MCS-M minimal triangulation algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct McsM;

impl Triangulator for McsM {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        mcs_m(g)
    }

    fn guarantees_minimal(&self) -> bool {
        true
    }

    fn triangulate_into(&self, g: &Graph, ws: &mut TriScratch) -> bool {
        mcs_m_into(g, ws);
        true
    }

    fn name(&self) -> &'static str {
        "MCS_M"
    }
}

/// Runs MCS-M on `g`, returning a minimal triangulation together with its
/// perfect elimination order. `O(n·m)` overall.
pub fn mcs_m(g: &Graph) -> Triangulation {
    let mut ws = TriScratch::default();
    mcs_m_into(g, &mut ws);
    let mut h = g.clone();
    for &(u, v) in &ws.fill {
        h.add_edge(u, v);
    }
    Triangulation {
        graph: h,
        fill: ws.fill,
        peo: Some(ws.peo),
    }
}

/// The MCS-M core: writes the fill edges and perfect elimination order
/// into `ws` without building the chordal graph (callers that need it add
/// `ws.fill` to their own copy). Allocation-free once the workspace has
/// seen a graph at least this large.
pub fn mcs_m_into(g: &Graph, ws: &mut TriScratch) {
    let n = g.num_nodes();
    ws.fill.clear();
    ws.peo.clear();
    ws.weight.clear();
    ws.weight.resize(n, 0);
    ws.numbered.reset(n);
    ws.marked.reset(n);
    // the bucket queues drain fully inside each iteration, so between runs
    // they are empty and only the outer Vec may need to grow
    if ws.reach.len() < n + 1 {
        ws.reach.resize_with(n + 1, Vec::new);
    }

    for _ in 0..n {
        // choose the unnumbered vertex of maximum weight (smallest id breaks
        // ties, for determinism)
        let v = (0..n as Node)
            .filter(|&u| !ws.numbered.contains(u))
            .max_by(|&a, &b| {
                ws.weight[a as usize]
                    .cmp(&ws.weight[b as usize])
                    .then(b.cmp(&a))
            })
            .expect("an unnumbered vertex exists");

        // Bucketed search computing, for every unnumbered u, the minimum over
        // all v-u paths (through unnumbered vertices) of the maximum
        // intermediate weight. u qualifies iff that minimum is < w(u); direct
        // neighbors always qualify.
        ws.marked.clear();
        ws.marked.insert(v);
        ws.qualified.clear();
        for u in g.neighbors(v).iter() {
            if !ws.numbered.contains(u) {
                ws.marked.insert(u);
                ws.qualified.push(u);
                ws.reach[ws.weight[u as usize]].push(u);
            }
        }
        for j in 0..n {
            while let Some(y) = ws.reach[j].pop() {
                for z in g.neighbors(y).iter() {
                    if ws.numbered.contains(z) || ws.marked.contains(z) {
                        continue;
                    }
                    ws.marked.insert(z);
                    if ws.weight[z as usize] > j {
                        ws.qualified.push(z);
                        ws.reach[ws.weight[z as usize]].push(z);
                    } else {
                        ws.reach[j].push(z);
                    }
                }
            }
        }

        for &u in &ws.qualified {
            ws.weight[u as usize] += 1;
            if !g.has_edge(u, v) {
                ws.fill.push((u.min(v), u.max(v)));
            }
        }
        ws.numbered.insert(v);
        ws.peo.push(v);
    }

    ws.peo.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_chordal::{is_chordal, is_perfect_elimination_order};

    #[test]
    fn chordal_input_gets_no_fill() {
        for g in [Graph::path(6), Graph::complete(5), Graph::cycle(3)] {
            let t = mcs_m(&g);
            assert_eq!(
                t.fill_count(),
                0,
                "chordal graphs are their own minimal triangulation"
            );
            assert_eq!(t.graph, g);
            assert!(is_perfect_elimination_order(&g, t.peo.as_ref().unwrap()));
        }
    }

    #[test]
    fn cycle_fill_is_n_minus_3() {
        for n in 4..10 {
            let g = Graph::cycle(n);
            let t = mcs_m(&g);
            assert!(is_chordal(&t.graph), "C{n} triangulation must be chordal");
            assert_eq!(
                t.fill_count(),
                n - 3,
                "minimal triangulations of C{n} add n-3 chords"
            );
            assert_eq!(t.width(), 2);
        }
    }

    #[test]
    fn result_is_minimal_by_fill_edge_removal() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        let t = mcs_m(&g);
        assert!(is_chordal(&t.graph));
        assert!(crate::is_minimal_triangulation(&g, &t.graph));
    }

    #[test]
    fn peo_is_valid_for_the_triangulation() {
        let g = Graph::cycle(8);
        let t = mcs_m(&g);
        assert!(is_perfect_elimination_order(
            &t.graph,
            t.peo.as_ref().unwrap()
        ));
    }

    #[test]
    fn disconnected_input() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let t = mcs_m(&g);
        assert!(is_chordal(&t.graph));
        assert_eq!(t.fill_count(), 2); // one chord per C4
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert_eq!(mcs_m(&Graph::new(0)).fill_count(), 0);
        assert_eq!(mcs_m(&Graph::new(5)).fill_count(), 0);
    }
}

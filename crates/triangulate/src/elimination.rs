//! Classic node-elimination triangulation (Ohtsuki et al. [35]): eliminate
//! vertices in some order, saturating the neighborhood of each eliminated
//! vertex among the not-yet-eliminated ones. Always produces a
//! triangulation whose elimination order is a PEO, but **not** a minimal
//! one in general — which is exactly what makes it a good exercise for the
//! minimal-triangulation sandwich step of `Extend`.

use crate::lbtriang::OrderingStrategy;
use crate::types::{Triangulation, Triangulator};
use mintri_graph::{Graph, NodeSet};

/// Triangulation by straight node elimination along an ordering strategy.
#[derive(Debug, Clone, Default)]
pub struct EliminationOrder {
    /// How the elimination order is chosen.
    pub strategy: OrderingStrategy,
}

impl EliminationOrder {
    /// Min-degree elimination — the classic cheap heuristic.
    pub fn min_degree() -> Self {
        EliminationOrder {
            strategy: OrderingStrategy::MinDegree,
        }
    }

    /// Min-fill elimination.
    pub fn min_fill() -> Self {
        EliminationOrder {
            strategy: OrderingStrategy::MinFill,
        }
    }
}

impl Triangulator for EliminationOrder {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        eliminate(g, &self.strategy)
    }

    // deliberately NOT guaranteeing minimality
    fn name(&self) -> &'static str {
        "ELIMINATION"
    }
}

/// Eliminates vertices of `g` along `strategy`, saturating each eliminated
/// vertex's remaining neighborhood.
pub fn eliminate(g: &Graph, strategy: &OrderingStrategy) -> Triangulation {
    let n = g.num_nodes();
    if let OrderingStrategy::Given(order) = strategy {
        assert_eq!(order.len(), n, "given order must cover all nodes");
    }
    let mut h = g.clone();
    let mut remaining = NodeSet::full(n);
    let mut order = Vec::with_capacity(n);

    for step in 0..n {
        let v = strategy.next_for_elimination(&h, &remaining, step);
        debug_assert!(remaining.contains(v));
        remaining.remove(v);
        order.push(v);
        let mut nb = h.neighbors(v).clone();
        nb.intersect_with(&remaining);
        h.saturate(&nb);
    }

    let fill = h.fill_edges_over(g);
    Triangulation {
        graph: h,
        fill,
        peo: Some(order),
    }
}

impl OrderingStrategy {
    /// Same selection rules as for LB-Triang, but scoring only among
    /// not-yet-eliminated vertices.
    pub(crate) fn next_for_elimination(
        &self,
        h: &Graph,
        remaining: &NodeSet,
        step: usize,
    ) -> mintri_graph::Node {
        match self {
            OrderingStrategy::MinFill => remaining
                .iter()
                .min_by_key(|&v| {
                    let mut nb = h.neighbors(v).clone();
                    nb.intersect_with(remaining);
                    (h.fill_cost(&nb), v)
                })
                .expect("remaining is nonempty"),
            OrderingStrategy::MinDegree => remaining
                .iter()
                .min_by_key(|&v| (h.neighbors(v).intersection_len(remaining), v))
                .expect("remaining is nonempty"),
            OrderingStrategy::Natural => remaining.first().expect("remaining is nonempty"),
            OrderingStrategy::Given(order) => order[step],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_chordal::{is_chordal, is_perfect_elimination_order};

    #[test]
    fn elimination_always_triangulates() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        for strat in [
            OrderingStrategy::MinFill,
            OrderingStrategy::MinDegree,
            OrderingStrategy::Natural,
            OrderingStrategy::Given(vec![3, 1, 4, 0, 6, 2, 5]),
        ] {
            let t = eliminate(&g, &strat);
            assert!(is_chordal(&t.graph), "{strat:?}");
            assert!(t.graph.is_supergraph_of(&g));
            assert!(is_perfect_elimination_order(
                &t.graph,
                t.peo.as_ref().unwrap()
            ));
        }
    }

    #[test]
    fn bad_orders_produce_non_minimal_fill() {
        // Eliminating the hub of a star saturates all leaves: grossly
        // non-minimal (the star is already chordal).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let t = eliminate(&g, &OrderingStrategy::Given(vec![0, 1, 2, 3, 4]));
        assert!(t.fill_count() > 0);
        assert!(!crate::is_minimal_triangulation(&g, &t.graph));
        // whereas min-degree eliminates leaves first and adds nothing
        let t2 = eliminate(&g, &OrderingStrategy::MinDegree);
        assert_eq!(t2.fill_count(), 0);
    }

    #[test]
    fn min_fill_on_cycle_is_minimal() {
        let g = Graph::cycle(6);
        let t = eliminate(&g, &OrderingStrategy::MinFill);
        assert_eq!(t.fill_count(), 3);
        assert!(crate::is_minimal_triangulation(&g, &t.graph));
    }
}

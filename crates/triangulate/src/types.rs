//! The triangulation result type and the pluggable `Triangulate` black box
//! of the paper's `Extend` procedure (Figure 3).

use mintri_graph::{Graph, Node, NodeSet};

/// The result of triangulating a graph `g`: a chordal supergraph plus the
/// fill edges that were added (`E(h) \ E(g)`, Section 2.3).
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// The chordal supergraph `h`.
    pub graph: Graph,
    /// The added edges, each with `u < v`, in no particular order.
    pub fill: Vec<(Node, Node)>,
    /// A perfect elimination order of `graph` if the algorithm produced one
    /// as a by-product (index 0 is eliminated first).
    pub peo: Option<Vec<Node>>,
}

impl Triangulation {
    /// The *fill* quality measure: number of added edges.
    pub fn fill_count(&self) -> usize {
        self.fill.len()
    }

    /// The *width* quality measure: size of the largest clique of the
    /// triangulation, minus one (equals the width of the induced proper
    /// tree decomposition).
    pub fn width(&self) -> usize {
        mintri_chordal::treewidth_of_chordal(&self.graph)
    }
}

/// A black-box triangulation procedure, the `Triangulate` parameter of
/// `Extend` (Figure 3). Implementations need not produce *minimal*
/// triangulations; the enumeration stack runs the minimal-triangulation
/// sandwich afterwards unless [`Triangulator::guarantees_minimal`] is true
/// (the paper skips the sandwich for MCS-M and LB-Triang, Section 6.1.2).
///
/// `Send + Sync` is required because the parallel engine invokes one
/// boxed triangulator from many worker threads at once; keep
/// implementations stateless or use atomics/locks for instrumentation.
pub trait Triangulator: Send + Sync {
    /// Produces a triangulation of `g`.
    fn triangulate(&self, g: &Graph) -> Triangulation;

    /// `true` iff every result is guaranteed to be a *minimal*
    /// triangulation, making the sandwich step unnecessary.
    fn guarantees_minimal(&self) -> bool {
        false
    }

    /// Scratch-space variant of [`Triangulator::triangulate`]: writes the
    /// fill edges and perfect elimination order of a **minimal**
    /// triangulation into `ws` without materializing the chordal graph,
    /// allocation-free once the workspace is warm. Returns `false` — the
    /// default — when the backend has no scratch kernel; callers fall back
    /// to the allocating path. Only backends with
    /// [`Triangulator::guarantees_minimal`] may return `true`.
    fn triangulate_into(&self, g: &Graph, ws: &mut TriScratch) -> bool {
        let _ = (g, ws);
        false
    }

    /// Short human-readable name (used by the benchmark harness).
    fn name(&self) -> &'static str;
}

/// Reusable workspace for [`Triangulator::triangulate_into`]: the fill
/// list and elimination order a successful call produces, plus the MCS-M
/// search buffers behind them. One per worker or sequential stream; every
/// buffer grows to the largest graph seen and is reused thereafter.
#[derive(Default)]
pub struct TriScratch {
    /// Fill edges of the last successful run, each with `u < v`.
    pub fill: Vec<(Node, Node)>,
    /// Perfect elimination order of the last successful run (index 0 is
    /// eliminated first).
    pub peo: Vec<Node>,
    // MCS-M internals (see `mcs_m_into`)
    pub(crate) weight: Vec<usize>,
    pub(crate) numbered: NodeSet,
    pub(crate) marked: NodeSet,
    pub(crate) reach: Vec<Vec<Node>>,
    pub(crate) qualified: Vec<Node>,
}

/// One triangulator shared by many owners (the planning layer hands a
/// single query backend to every per-atom stream).
impl<T: Triangulator + ?Sized> Triangulator for std::sync::Arc<T> {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        (**self).triangulate(g)
    }

    fn guarantees_minimal(&self) -> bool {
        (**self).guarantees_minimal()
    }

    fn triangulate_into(&self, g: &Graph, ws: &mut TriScratch) -> bool {
        (**self).triangulate_into(g, ws)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The trivial baseline: add every missing edge. Never minimal (except on
/// complete graphs); exists to exercise the sandwich path and as the
/// "naive implementation" the paper mentions for `Triangulate`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompleteFill;

impl Triangulator for CompleteFill {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        let n = g.num_nodes();
        let h = Graph::complete(n);
        let fill = h.fill_edges_over(g);
        Triangulation {
            graph: h,
            fill,
            peo: Some((0..n as Node).collect()),
        }
    }

    fn name(&self) -> &'static str {
        "COMPLETE_FILL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_fill_fills_everything() {
        let g = Graph::cycle(5);
        let t = CompleteFill.triangulate(&g);
        assert_eq!(t.graph.num_edges(), 10);
        assert_eq!(t.fill_count(), 5);
        assert_eq!(t.width(), 4);
        assert!(mintri_chordal::is_chordal(&t.graph));
        assert!(!CompleteFill.guarantees_minimal());
    }
}

//! LB-Triang: minimal triangulation from an arbitrary ordering
//! (Berry, Bordat, Heggernes, Simonet, Villanger — reference [6] of the
//! paper).
//!
//! LB-Triang processes every vertex exactly once. Processing `v` on the
//! current filled graph `H` makes `v` *LB-simplicial*: for every connected
//! component `C` of `H \ N_H[v]`, the neighborhood `N_H(C)` (a minimal
//! separator contained in `N_H(v)`) is saturated. After all `n` steps the
//! filled graph is a minimal triangulation — for *any* processing order,
//! which is what lets the algorithm plug in dynamic heuristics such as
//! min-fill (the variant evaluated in Section 6.1.2 of the paper).

use crate::types::{Triangulation, Triangulator};
use mintri_graph::traversal::components_after_removing;
use mintri_graph::{Graph, Node, NodeSet};

/// Vertex-selection strategy for [`LbTriang`] (and for the non-minimal
/// elimination triangulator).
#[derive(Debug, Clone, Default)]
pub enum OrderingStrategy {
    /// At each step pick the unprocessed vertex whose neighborhood in the
    /// current graph needs the fewest fill edges (the paper's min-fill
    /// heuristic).
    #[default]
    MinFill,
    /// At each step pick the unprocessed vertex of minimum current degree.
    MinDegree,
    /// Process vertices in id order `0, 1, …, n-1`.
    Natural,
    /// Process vertices in the given order (must be a permutation of
    /// `0..n`).
    Given(Vec<Node>),
}

impl OrderingStrategy {
    /// Picks the next vertex among `unprocessed` for the current graph `h`.
    /// `step` is the number of already-processed vertices.
    fn next(&self, h: &Graph, unprocessed: &NodeSet, step: usize) -> Node {
        match self {
            OrderingStrategy::MinFill => unprocessed
                .iter()
                .min_by_key(|&v| {
                    let mut nb = h.neighbors(v).clone();
                    nb.intersect_with(unprocessed);
                    (h.fill_cost(&nb), v)
                })
                .expect("unprocessed is nonempty"),
            OrderingStrategy::MinDegree => unprocessed
                .iter()
                .min_by_key(|&v| (h.neighbors(v).intersection_len(unprocessed), v))
                .expect("unprocessed is nonempty"),
            OrderingStrategy::Natural => unprocessed.first().expect("unprocessed is nonempty"),
            OrderingStrategy::Given(order) => order[step],
        }
    }
}

/// The LB-Triang minimal triangulation algorithm, parameterized by its
/// vertex-processing order.
#[derive(Debug, Clone, Default)]
pub struct LbTriang {
    /// How the processing order is chosen.
    pub strategy: OrderingStrategy,
}

impl LbTriang {
    /// LB-Triang with the min-fill heuristic (the configuration the paper
    /// benchmarks as `LB_TRIANG`).
    pub fn min_fill() -> Self {
        LbTriang {
            strategy: OrderingStrategy::MinFill,
        }
    }

    /// LB-Triang with a fixed processing order.
    pub fn with_order(order: Vec<Node>) -> Self {
        LbTriang {
            strategy: OrderingStrategy::Given(order),
        }
    }
}

impl Triangulator for LbTriang {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        lb_triang(g, &self.strategy)
    }

    fn guarantees_minimal(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "LB_TRIANG"
    }
}

/// Runs LB-Triang on `g` with the given strategy.
pub fn lb_triang(g: &Graph, strategy: &OrderingStrategy) -> Triangulation {
    let n = g.num_nodes();
    if let OrderingStrategy::Given(order) = strategy {
        assert_eq!(order.len(), n, "given order must cover all nodes");
    }
    let mut h = g.clone();
    let mut unprocessed = NodeSet::full(n);
    let mut processing_order = Vec::with_capacity(n);

    for step in 0..n {
        let v = strategy.next(&h, &unprocessed, step);
        debug_assert!(
            unprocessed.contains(v),
            "strategy must pick unprocessed vertices"
        );
        unprocessed.remove(v);
        processing_order.push(v);
        // make v LB-simplicial on the current graph
        let closed = h.closed_neighborhood(v);
        for comp in components_after_removing(&h, &closed) {
            let sep = h.neighborhood_of_set(&comp);
            h.saturate(&sep);
        }
    }

    let fill = h.fill_edges_over(g);
    Triangulation {
        graph: h,
        fill,
        // LB-Triang's processing order is a minimal elimination ordering of
        // the result; it is a PEO of the filled graph.
        peo: Some(processing_order),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_chordal::{is_chordal, is_perfect_elimination_order};

    #[test]
    fn chordal_input_gets_no_fill() {
        for g in [Graph::path(6), Graph::complete(5)] {
            for strat in [
                OrderingStrategy::MinFill,
                OrderingStrategy::MinDegree,
                OrderingStrategy::Natural,
            ] {
                let t = lb_triang(&g, &strat);
                assert_eq!(t.fill_count(), 0, "{strat:?} must not fill a chordal graph");
            }
        }
    }

    #[test]
    fn cycles_get_minimal_fill_for_every_strategy() {
        for n in 4..9 {
            let g = Graph::cycle(n);
            for strat in [
                OrderingStrategy::MinFill,
                OrderingStrategy::MinDegree,
                OrderingStrategy::Natural,
            ] {
                let t = lb_triang(&g, &strat);
                assert!(is_chordal(&t.graph));
                assert_eq!(t.fill_count(), n - 3, "C{n} with {strat:?}");
            }
        }
    }

    #[test]
    fn any_given_order_yields_a_minimal_triangulation() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        // a deliberately bad order
        let t = lb_triang(&g, &OrderingStrategy::Given(vec![6, 5, 4, 3, 2, 1, 0]));
        assert!(is_chordal(&t.graph));
        assert!(crate::is_minimal_triangulation(&g, &t.graph));
    }

    #[test]
    fn processing_order_is_a_peo_of_the_result() {
        let g = Graph::cycle(7);
        let t = lb_triang(&g, &OrderingStrategy::MinFill);
        assert!(is_perfect_elimination_order(
            &t.graph,
            t.peo.as_ref().unwrap()
        ));
    }

    #[test]
    fn different_orders_can_reach_different_triangulations() {
        let g = Graph::cycle(4);
        let a = lb_triang(&g, &OrderingStrategy::Given(vec![0, 1, 2, 3]));
        let b = lb_triang(&g, &OrderingStrategy::Given(vec![1, 0, 2, 3]));
        assert_ne!(a.graph, b.graph, "C4 has two minimal triangulations");
    }

    #[test]
    fn disconnected_input() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let t = lb_triang(&g, &OrderingStrategy::MinFill);
        assert!(is_chordal(&t.graph));
        assert_eq!(t.fill_count(), 2);
    }
}

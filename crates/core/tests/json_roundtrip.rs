//! Property tests for the wire codec: `Query → json → parse → Query` is
//! the identity on every serialized field, arbitrary strings survive
//! escape → parse, and arbitrary (bounded-depth) documents survive
//! render → parse. This is the contract that makes the CLI's JSON and
//! the HTTP transport's JSON the *same* dialect rather than two
//! write-only formats.

use mintri_core::json::{
    graph_from_json, graph_to_json, query_from_json, query_to_json, JsonValue,
};
use mintri_core::query::{CostMeasure, Delivery, ExecPolicy, Query, Task};
use mintri_core::{EnumerationBudget, TdEnumerationMode};
use mintri_graph::Graph;
use mintri_sgr::PrintMode;
use proptest::prelude::*;
use std::time::Duration;

fn task_strategy() -> impl Strategy<Value = Task> {
    prop_oneof![
        Just(Task::Enumerate),
        Just(Task::Stats),
        (
            0usize..64,
            prop_oneof![Just(CostMeasure::Width), Just(CostMeasure::Fill)]
        )
            .prop_map(|(k, cost)| Task::BestK { k, cost }),
        prop_oneof![
            Just(TdEnumerationMode::AllDecompositions),
            Just(TdEnumerationMode::OnePerClass)
        ]
        .prop_map(|mode| Task::Decompose { mode }),
    ]
}

fn budget_strategy() -> impl Strategy<Value = EnumerationBudget> {
    let max_results = prop_oneof![Just(None), (0usize..1_000_000).prop_map(Some)];
    let time_limit = prop_oneof![
        Just(None),
        (0u64..1_000_000_000).prop_map(|ms| Some(Duration::from_millis(ms)))
    ];
    (max_results, time_limit).prop_map(|(max_results, time_limit)| EnumerationBudget {
        max_results,
        time_limit,
    })
}

fn policy_strategy() -> impl Strategy<Value = ExecPolicy> {
    let delivery = || prop_oneof![Just(Delivery::Unordered), Just(Delivery::Deterministic)];
    prop_oneof![
        delivery().prop_map(|delivery| ExecPolicy::Auto { delivery }),
        (delivery(), 0usize..16, any::<bool>(), any::<bool>()).prop_map(
            |(delivery, threads, planned, ranked)| ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                delivery,
            }
        ),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    let backend = (0usize..4).prop_map(|i| ["mcsm", "lbtriang", "lexm", "mindegree"][i]);
    let mode = prop_oneof![Just(PrintMode::UponGeneration), Just(PrintMode::UponPop)];
    (
        (task_strategy(), backend, mode),
        (budget_strategy(), policy_strategy(), any::<bool>()),
    )
        .prop_map(|((task, backend, mode), (budget, policy, trace))| {
            Query::new(task)
                .triangulator(mintri_core::json::triangulator_from_name(backend).unwrap())
                .mode(mode)
                .budget(budget)
                .policy(policy)
                .traced(trace)
        })
}

/// Field-by-field equality on everything the wire carries (`Query` holds
/// a trait object and a cancel token, so it cannot be `PartialEq`).
fn assert_queries_agree(a: &Query, b: &Query) {
    assert_eq!(a.task, b.task);
    assert_eq!(a.triangulator.name(), b.triangulator.name());
    assert_eq!(a.mode, b.mode);
    assert_eq!(a.budget.max_results, b.budget.max_results);
    assert_eq!(a.budget.time_limit, b.budget.time_limit);
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.trace, b.trace);
}

fn string_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..0x110000, 0..24).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32) // skips the surrogate gap
            .collect()
    })
}

fn value_strategy(depth: usize) -> proptest::BoxedStrategy<JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        // Integers in the exact-f64 range, the numbers the stack emits.
        (0u64..9_007_199_254_740_992u64).prop_map(|n| JsonValue::Num(n as f64)),
        (0i64..1_000_000).prop_map(|n| JsonValue::Num(n as f64 / 64.0)),
        string_strategy().prop_map(JsonValue::Str),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let child = value_strategy(depth - 1);
    let array = proptest::collection::vec(child.clone(), 0..5).prop_map(JsonValue::Arr);
    let object = proptest::collection::vec((string_strategy(), child), 0..5).prop_map(|fields| {
        // Duplicate keys would make `get`-based comparison ambiguous;
        // keep first occurrences only, like a sane producer would.
        let mut seen = std::collections::HashSet::new();
        JsonValue::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| seen.insert(k.clone()))
                .collect(),
        )
    });
    prop_oneof![3 => leaf, 1 => array, 1 => object].boxed()
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (
        2usize..24,
        proptest::collection::vec((0usize..24, 0usize..24), 0..40),
    )
        .prop_map(|(n, pairs)| {
            let mut g = Graph::new(n);
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v {
                    g.add_edge(u as u32, v as u32);
                }
            }
            g
        })
}

proptest! {
    #[test]
    fn query_json_roundtrip_is_identity(query in query_strategy()) {
        let doc = query_to_json(&query);
        let parsed = JsonValue::parse(&doc).expect("encoded queries parse");
        let back = query_from_json(&parsed).expect("encoded queries decode");
        assert_queries_agree(&query, &back);
        // And a second hop is stable (encode ∘ decode is idempotent).
        prop_assert_eq!(query_to_json(&back), doc);
    }

    #[test]
    fn json_value_roundtrip_is_identity(value in value_strategy(3)) {
        let doc = value.to_string();
        let back = JsonValue::parse(&doc)
            .unwrap_or_else(|e| panic!("rendered document must parse: {e}\n{doc}"));
        prop_assert_eq!(back, value);
    }

    #[test]
    fn graph_json_roundtrip_is_identity(g in graph_strategy()) {
        let doc = graph_to_json(&g);
        let parsed = JsonValue::parse(&doc).expect("encoded graphs parse");
        let back = graph_from_json(&parsed, 64).expect("encoded graphs decode");
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        prop_assert_eq!(back.edges(), g.edges());
    }
}

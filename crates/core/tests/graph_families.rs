//! Enumeration counts and invariants on structured graph families —
//! wheels, prisms, complete multipartite graphs, and graphs assembled from
//! known pieces, all cross-checked against the brute-force oracle.

use mintri_core::{BruteForce, MinimalTriangulationsEnumerator};
use mintri_graph::{Graph, Node};

/// The wheel W_n: a cycle C_n plus a hub adjacent to everything.
fn wheel(n: usize) -> Graph {
    let mut g = Graph::cycle(n);
    let mut w = Graph::new(n + 1);
    for (u, v) in g.edges() {
        w.add_edge(u, v);
    }
    for v in 0..n as Node {
        w.add_edge(n as Node, v);
    }
    g = w;
    g
}

/// The prism Y_n: two parallel cycles C_n joined by a perfect matching.
fn prism(n: usize) -> Graph {
    let mut g = Graph::new(2 * n);
    for i in 0..n {
        let j = (i + 1) % n;
        g.add_edge(i as Node, j as Node);
        g.add_edge((n + i) as Node, (n + j) as Node);
        g.add_edge(i as Node, (n + i) as Node);
    }
    g
}

fn check_against_oracle(g: &Graph) -> usize {
    let mut fast: Vec<_> = MinimalTriangulationsEnumerator::new(g)
        .map(|t| t.graph.edges())
        .collect();
    fast.sort();
    let slow: Vec<_> = BruteForce::minimal_triangulations(g)
        .iter()
        .map(|h| h.edges())
        .collect();
    assert_eq!(fast, slow, "oracle mismatch on {g:?}");
    fast.len()
}

#[test]
fn wheels_enumerate_like_their_rims() {
    // Triangulating W_n = triangulating the rim cycle: the hub is adjacent
    // to everything, so minimal triangulations correspond to those of C_n.
    for n in 4..=6 {
        let w = wheel(n);
        let count = MinimalTriangulationsEnumerator::new(&w).count();
        let rim_count = MinimalTriangulationsEnumerator::new(&Graph::cycle(n)).count();
        assert_eq!(count, rim_count, "W{n}");
    }
}

#[test]
fn small_wheels_match_the_oracle() {
    check_against_oracle(&wheel(4));
    check_against_oracle(&wheel(5));
}

#[test]
fn prism_counts() {
    // Y_3 (the triangular prism, 6 nodes): cross-check with brute force.
    let y3 = prism(3);
    let count = check_against_oracle(&y3);
    assert!(count > 1, "the prism is not chordal");
    // every result has width >= 2 (prism treewidth is 3 via... verify >= 2)
    for t in MinimalTriangulationsEnumerator::new(&y3) {
        assert!(t.width() >= 2);
    }
}

#[test]
fn complete_multipartite_k222() {
    // K_{2,2,2} (the octahedron): 6 nodes, brute-force cross-check
    let mut g = Graph::complete(6);
    g.remove_edge(0, 1);
    g.remove_edge(2, 3);
    g.remove_edge(4, 5);
    let count = check_against_oracle(&g);
    // the octahedron's minimal triangulations: adding any one of the three
    // missing diagonals... brute force says how many; pin it for regression
    assert_eq!(count, 3);
}

#[test]
fn two_cycles_sharing_a_vertex() {
    // C4 and C4 glued at one vertex: counts multiply (separator structure
    // is independent across the cut vertex)
    let g = Graph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 4),
            (4, 5),
            (5, 6),
            (6, 0),
        ],
    );
    let count = check_against_oracle(&g);
    assert_eq!(count, 4, "2 × 2 via the articulation vertex");
}

#[test]
fn cycle_with_a_long_chord_path() {
    // theta graph: two vertices joined by three internally disjoint paths
    // of lengths 2, 2, 3 — 7 nodes
    let g = Graph::from_edges(
        7,
        &[
            (0, 2),
            (2, 1),
            (0, 3),
            (3, 1),
            (0, 4),
            (4, 5),
            (5, 6),
            (6, 1),
        ],
    );
    check_against_oracle(&g);
}

#[test]
fn every_family_member_is_chordal_and_minimal() {
    for g in [wheel(6), prism(4), Graph::cycle(10)] {
        for t in MinimalTriangulationsEnumerator::new(&g).take(60) {
            assert!(mintri_chordal::is_chordal(&t.graph));
            assert!(mintri_triangulate::is_minimal_triangulation(&g, &t.graph));
        }
    }
}

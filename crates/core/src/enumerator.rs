//! The headline algorithm: enumerating `MinTri(g)` in incremental
//! polynomial time (Corollary 4.8) by running `EnumMIS` over the `MSGraph`
//! SGR and saturating each maximal parallel set of separators.

use crate::msgraph::{MsGraph, MsGraphStats, SepId};
use mintri_graph::Graph;
use mintri_sgr::{EnumMis, EnumMisStats, PrintMode};
use mintri_triangulate::{Triangulation, Triangulator};

/// Iterator over **all** minimal triangulations of a graph, in incremental
/// polynomial time.
///
/// Each item is a [`Triangulation`] whose `graph` is chordal, a supergraph
/// of the input, and minimal; every minimal triangulation is produced
/// exactly once. The iterator is *anytime*: stop consuming it whenever
/// enough results have been seen.
///
/// ```
/// use mintri_core::MinimalTriangulationsEnumerator;
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(5);
/// // the 5-cycle has Catalan(3) = 5 minimal triangulations
/// assert_eq!(MinimalTriangulationsEnumerator::new(&g).count(), 5);
/// ```
pub struct MinimalTriangulationsEnumerator<'g> {
    inner: EnumMis<MsGraph<'g>>,
}

impl<'g> MinimalTriangulationsEnumerator<'g> {
    /// Default configuration: MCS-M expansion, results printed upon
    /// generation.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_config(
            g,
            Box::new(mintri_triangulate::McsM),
            PrintMode::UponGeneration,
        )
    }

    /// Full configuration: any triangulation black box, either print mode.
    pub fn with_config(g: &'g Graph, triangulator: Box<dyn Triangulator>, mode: PrintMode) -> Self {
        let ms = MsGraph::with_triangulator(g, triangulator);
        MinimalTriangulationsEnumerator {
            inner: EnumMis::new(ms, mode),
        }
    }

    /// Enumerator built over an explicitly configured [`MsGraph`] (ablation
    /// hooks live there).
    pub fn from_msgraph(ms: MsGraph<'g>, mode: PrintMode) -> Self {
        MinimalTriangulationsEnumerator {
            inner: EnumMis::new(ms, mode),
        }
    }

    /// Counters of the underlying `EnumMIS` run.
    pub fn enum_stats(&self) -> EnumMisStats {
        self.inner.stats()
    }

    /// Counters of the underlying `MSGraph` accesses.
    pub fn msgraph_stats(&self) -> MsGraphStats {
        self.inner.sgr().stats()
    }

    /// The input graph. The reference is tied to the enumerator (not the
    /// original `'g` borrow) because the underlying [`MsGraph`] may *own*
    /// its graph via `MsGraph::shared`.
    pub fn graph(&self) -> &Graph {
        self.inner.sgr().graph()
    }

    fn materialize(&self, answer: &[SepId]) -> Triangulation {
        self.inner.sgr().materialize(answer)
    }
}

impl Iterator for MinimalTriangulationsEnumerator<'_> {
    type Item = Triangulation;

    fn next(&mut self) -> Option<Triangulation> {
        let answer = self.inner.next()?;
        Some(self.materialize(&answer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_chordal::is_chordal;
    use mintri_triangulate::{is_minimal_triangulation, EliminationOrder, LbTriang};

    fn catalan(n: usize) -> usize {
        // C_0 = 1; C_k = C_{k-1} * 2(2k-1)/(k+1)
        let mut c = 1usize;
        for k in 1..=n {
            c = c * 2 * (2 * k - 1) / (k + 1);
        }
        c
    }

    #[test]
    fn cycle_counts_follow_catalan() {
        for n in 4..=8 {
            let g = Graph::cycle(n);
            let count = MinimalTriangulationsEnumerator::new(&g).count();
            assert_eq!(count, catalan(n - 2), "C{n}");
        }
    }

    #[test]
    fn chordal_graphs_have_exactly_one() {
        for g in [
            Graph::path(7),
            Graph::complete(5),
            Graph::new(4),
            Graph::new(0),
        ] {
            let all: Vec<_> = MinimalTriangulationsEnumerator::new(&g).collect();
            assert_eq!(all.len(), 1);
            assert_eq!(all[0].graph, g);
            assert!(all[0].fill.is_empty());
        }
    }

    #[test]
    fn every_result_is_chordal_minimal_and_distinct() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (6, 2),
            ],
        );
        let mut seen = Vec::new();
        for t in MinimalTriangulationsEnumerator::new(&g) {
            assert!(is_chordal(&t.graph));
            assert!(is_minimal_triangulation(&g, &t.graph));
            assert!(!seen.contains(&t.graph), "duplicate triangulation");
            seen.push(t.graph);
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn disconnected_graphs_multiply() {
        // two disjoint C4s: 2 × 2 minimal triangulations
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        assert_eq!(MinimalTriangulationsEnumerator::new(&g).count(), 4);
        // C4 + isolated vertex
        let g2 = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(MinimalTriangulationsEnumerator::new(&g2).count(), 2);
    }

    #[test]
    fn answer_set_is_independent_of_the_extend_backend() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        let gather = |t: Box<dyn Triangulator>| {
            let mut v: Vec<Vec<(u32, u32)>> =
                MinimalTriangulationsEnumerator::with_config(&g, t, PrintMode::UponGeneration)
                    .map(|t| t.graph.edges())
                    .collect();
            v.sort();
            v
        };
        let a = gather(Box::new(mintri_triangulate::McsM));
        let b = gather(Box::new(LbTriang::min_fill()));
        let c = gather(Box::new(EliminationOrder::min_degree()));
        let d = gather(Box::new(mintri_triangulate::CompleteFill));
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }

    #[test]
    fn both_print_modes_yield_the_same_set() {
        let g = Graph::cycle(6);
        let gather = |mode| {
            let mut v: Vec<Vec<(u32, u32)>> = MinimalTriangulationsEnumerator::with_config(
                &g,
                Box::new(mintri_triangulate::McsM),
                mode,
            )
            .map(|t| t.graph.edges())
            .collect();
            v.sort();
            v
        };
        assert_eq!(
            gather(PrintMode::UponGeneration),
            gather(PrintMode::UponPop)
        );
    }

    #[test]
    fn fill_edges_are_reported_correctly() {
        let g = Graph::cycle(5);
        for t in MinimalTriangulationsEnumerator::new(&g) {
            assert_eq!(t.fill_count(), 2);
            for &(u, v) in &t.fill {
                assert!(!g.has_edge(u, v));
                assert!(t.graph.has_edge(u, v));
            }
        }
    }
}

//! # mintri-core — enumerating minimal triangulations and proper tree
//! decompositions in incremental polynomial time
//!
//! The primary contribution of *"Efficiently Enumerating Minimal
//! Triangulations"* (Carmeli, Kenig, Kimelfeld, Kröll — PODS 2017):
//!
//! * [`MsGraph`] — the minimal separator graph of a graph `g`, presented as
//!   a succinct graph representation (nodes stream from the
//!   Berry–Bordat–Cogis enumerator, edges are memoized crossing tests,
//!   expansion is the `Extend` procedure over any black-box triangulator);
//! * [`MinimalTriangulationsEnumerator`] — `EnumMIS` over `MSGraph`,
//!   materializing each maximal set of pairwise-parallel minimal separators
//!   into the corresponding minimal triangulation (Corollary 4.8);
//! * [`ProperTreeDecompositions`] — the Section 5 reduction, emitting every
//!   proper tree decomposition (or one per bag-equivalence class);
//! * [`AnytimeSearch`] — budgeted, instrumented runs recording the delay and
//!   quality measurements of the paper's experimental study;
//! * [`BruteForce`] — exponential oracles used to validate all of the above
//!   on small graphs.
//!
//! ## Disconnected inputs
//!
//! The empty set is a minimal separator of a disconnected graph, is parallel
//! to everything, and saturates to nothing — so it belongs to every maximal
//! parallel set and never changes the triangulation. The stack therefore
//! works with the *nonempty* minimal separators throughout; the bijection of
//! Theorem 4.1 survives (`φ ↔ φ ∪ {∅}`), and disconnected graphs enumerate
//! as the product of their components' triangulations with no special
//! casing (see the `disconnected_graphs_multiply` test).

//! ## The front door
//!
//! All four workloads — streaming, best-`k`, decompositions, instrumented
//! anytime runs — are [`Task`]s of one typed [`Query`], answered by one
//! [`Response`] handle (stream + [`Response::cancel`] +
//! [`Response::outcome`]). [`Query::run_local`] executes sequentially
//! with zero setup; `mintri_engine::Engine::run` executes the same query
//! with warm sessions, parallel drivers and completed-answer replay. The
//! items above remain as the underlying kernel.
//!
//! ## The planning layer
//!
//! Every executor first routes the query through a [`Plan`]: the graph
//! splits into connected components and clique-minimal-separator atoms
//! (Leimer's decomposition, `mintri_separators::atom_decomposition`),
//! one [`TriangulationStream`] runs per non-trivial atom, and the
//! product [`ComposedStream`] recombines them — so a graph of many
//! small atoms pays the *sum* of small enumerations instead of one
//! exponential blob. `ExecPolicy::fixed().with_planned(false)` forces
//! the unreduced path.

mod anytime;
mod bruteforce;
mod eager;
mod enumerator;
pub mod json;
pub mod memo;
mod msgraph;
pub mod plan;
mod proper;
pub mod query;
mod ranked;

pub use anytime::{
    AnytimeOutcome, AnytimeSearch, EnumerationBudget, QualityStats, ResultRecord, SearchStrategy,
    StreamFactory,
};
pub use bruteforce::BruteForce;
pub use eager::{EagerMinimalTriangulations, EagerMsGraph};
pub use enumerator::MinimalTriangulationsEnumerator;
pub use msgraph::{ExtendScratch, MsGraph, MsGraphStats, SepId};
pub use plan::{AtomStream, ComposedStream, Plan, PlannedAtom};
pub use proper::{ProperTreeDecompositions, TdEnumerationMode};
pub use query::{
    AtomDispatch, CancelHookGuard, CancelToken, CostMeasure, Delivery, DispatchKind, ExecPolicy,
    Query, QueryItem, QueryOutcome, Response, Task, TriangulationStream,
};
pub use ranked::{
    best_k_of_stream, cost_floor, RankedAtom, RankedComposed, RankedItem, RankedStream,
};

//! The planning layer: split a query's graph into connected components
//! and clique-minimal-separator atoms **before** enumerating, run one
//! triangulation stream per non-trivial atom, and recombine through a
//! product composer that is itself a [`TriangulationStream`].
//!
//! Minimal triangulations factor over Leimer's atom decomposition
//! (`mintri_separators::atom_decomposition`): clique separators are
//! never filled and no fill edge crosses one, so `MinTri(g)` is exactly
//! the set of independent per-atom choices. A graph of ten small atoms
//! therefore costs the *sum* of ten small enumerations plus a cheap
//! merge per emitted result — not one enumeration of the exponential
//! blob. Chordal atoms (cliques included) have a single, fill-free
//! minimal triangulation and are dropped from the plan entirely.
//!
//! Everything downstream is unchanged: the composer implements
//! [`TriangulationStream`], so budgets, top-k selection, decomposition
//! expansion, stats, cancellation and both deliveries in
//! [`Response`](crate::query::Response) work over composed streams
//! exactly as over flat ones. [`Query::run_local`](crate::query::Query)
//! composes sequential per-atom streams; `mintri_engine::Engine::run`
//! composes per-atom *session* streams, which is what makes warm memos
//! and replayed answers shareable between different graphs that happen
//! to contain the same atom.

use crate::msgraph::MsGraph;
use crate::query::{CostMeasure, TracedStream, TriangulationStream};
use crate::ranked::{cost_floor, RankedAtom, RankedComposed, RankedStream};
use crate::MinimalTriangulationsEnumerator;
use mintri_chordal::{is_chordal, treewidth_of_chordal};
use mintri_graph::{Graph, Node};
use mintri_separators::{atom_decomposition, AtomDecomposition};
use mintri_sgr::{EnumMisStats, PrintMode};
use mintri_telemetry::Counter;
use mintri_telemetry::SpanHandle;
use mintri_triangulate::{Triangulation, Triangulator};
use std::collections::VecDeque;
use std::sync::Arc;

/// One non-trivial (non-chordal) atom of a [`Plan`]: the induced
/// subgraph renumbered to `0..k`, plus the `new -> old` node map back
/// into the query's graph.
///
/// The renumbering is canonical (ascending original ids), so two
/// different graphs containing the same atom produce *identical*
/// subgraphs — which is what lets an engine key sessions per atom and
/// share warm state across queries on different graphs.
#[derive(Debug, Clone)]
pub struct PlannedAtom {
    /// The atom's induced subgraph, renumbered to `0..k`.
    pub graph: Graph,
    /// Maps the subgraph's node ids back to the original graph's.
    pub old_of: Vec<Node>,
}

/// How to execute a query over a graph: the atom decomposition, reduced
/// to the non-trivial atoms an executor must actually enumerate.
#[derive(Debug, Clone)]
pub struct Plan {
    nodes: usize,
    /// The full decomposition (components, all atoms, separators) —
    /// what `mintri atoms` prints.
    pub decomposition: AtomDecomposition,
    /// The non-chordal atoms, in decomposition order. Chordal atoms
    /// contribute exactly one fill-free triangulation each and need no
    /// stream.
    pub atoms: Vec<PlannedAtom>,
}

impl Plan {
    /// Plans `g`: decomposes into components and atoms (polynomial; one
    /// MCS-M triangulation per split) and keeps the atoms that need
    /// enumeration.
    pub fn of(g: &Graph) -> Plan {
        let decomposition = atom_decomposition(g);
        let atoms = decomposition
            .atoms
            .iter()
            .filter_map(|a| {
                let (graph, old_of) = g.induced_subgraph(a);
                (!is_chordal(&graph)).then_some(PlannedAtom { graph, old_of })
            })
            .collect();
        Plan {
            nodes: g.num_nodes(),
            decomposition,
            atoms,
        }
    }

    /// Rebuilds the plan for `g` from an already-known decomposition —
    /// the hydration path for a persisted plan snapshot. Only the cheap
    /// parts are re-derived (induced subgraphs and chordality checks);
    /// the polynomial-but-not-free decomposition itself is taken as
    /// given. The caller owns the proof that `decomposition` belongs to
    /// `g` (the store verifies graph equality before handing one over).
    pub fn from_decomposition(g: &Graph, decomposition: AtomDecomposition) -> Plan {
        let atoms = decomposition
            .atoms
            .iter()
            .filter_map(|a| {
                let (graph, old_of) = g.induced_subgraph(a);
                (!is_chordal(&graph)).then_some(PlannedAtom { graph, old_of })
            })
            .collect();
        Plan {
            nodes: g.num_nodes(),
            decomposition,
            atoms,
        }
    }

    /// `true` when planning cannot help: the graph is one single
    /// non-trivial atom, so the composed path would wrap exactly the
    /// unreduced enumeration. Executors use the flat path here, which
    /// also preserves the historical sequential order and `EnumMIS`
    /// counters bit for bit.
    pub fn is_unreduced(&self) -> bool {
        self.atoms.len() == 1 && self.atoms[0].graph.num_nodes() == self.nodes
    }

    /// The sequential execution of this plan: one in-thread `EnumMIS`
    /// stream per atom, composed. This is what
    /// [`Query::run_local`](crate::query::Query::run_local) runs for a
    /// non-trivial plan.
    pub fn into_sequential_stream(
        self,
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        mode: PrintMode,
    ) -> ComposedStream<'static> {
        self.into_traced_sequential_stream(g, triangulator, mode, None)
    }

    /// [`Plan::into_sequential_stream`] with optional tracing: when
    /// `parent` is given, each atom's stream is wrapped in a
    /// [`TracedStream`] under its own `atom` child span (attributes:
    /// `index`, `nodes`, `dispatch`), so the query's trace carries
    /// per-atom timings. With `parent = None` this *is* the untraced
    /// path — no wrapper, no overhead.
    pub fn into_traced_sequential_stream(
        self,
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        mode: PrintMode,
        parent: Option<&SpanHandle>,
    ) -> ComposedStream<'static> {
        let shared: Arc<dyn Triangulator> = Arc::from(triangulator);
        let children = self
            .atoms
            .into_iter()
            .enumerate()
            .map(|(index, atom)| {
                let nodes = atom.graph.num_nodes();
                let ms = MsGraph::shared(Arc::new(atom.graph), Box::new(Arc::clone(&shared)));
                let stream: Box<dyn TriangulationStream + 'static> = Box::new(SequentialAtom(
                    MinimalTriangulationsEnumerator::from_msgraph(ms, mode),
                ));
                let stream: Box<dyn TriangulationStream + 'static> = match parent {
                    Some(span) => {
                        let span = span.child("atom");
                        span.attr("index", index.to_string());
                        span.attr("nodes", nodes.to_string());
                        span.attr("dispatch", "sequential");
                        Box::new(TracedStream::new(stream, span))
                    }
                    None => stream,
                };
                AtomStream {
                    stream,
                    old_of: atom.old_of,
                }
            })
            .collect();
        ComposedStream::new(g.clone(), children)
    }

    /// The fixed width contribution of this plan's *chordal* atoms: the
    /// maximum treewidth over the decomposition atoms that need no
    /// stream (0 when every atom enumerates). Every maximal clique of a
    /// composed triangulation lies inside some decomposition atom, so
    /// the composed width is exactly
    /// `max(chordal_width, per-atom triangulation widths)` — the
    /// aggregation [`RankedComposed`] ranks by.
    pub fn chordal_width(&self, g: &Graph) -> usize {
        self.decomposition
            .atoms
            .iter()
            .filter_map(|a| {
                let (graph, _) = g.induced_subgraph(a);
                is_chordal(&graph).then(|| treewidth_of_chordal(&graph))
            })
            .max()
            .unwrap_or(0)
    }

    /// The ranked execution of this plan: one in-thread
    /// [`RankedStream`] per atom — each gated by its own admissible
    /// [`cost_floor`] — composed through the [`RankedComposed`] level
    /// odometer, which emits the composed triangulations in ascending
    /// `measure` order without materializing the cross product. This is
    /// what [`Query::run_local`](crate::query::Query::run_local) runs
    /// for a ranked best-k over a non-trivial plan; the engine builds
    /// the analogous composition over per-atom *session* streams.
    ///
    /// When `parent` is given, each atom's underlying stream is wrapped
    /// in a [`TracedStream`] under an `atom` span with
    /// `dispatch="ranked"` (its `results` attribute then counts ranked
    /// *expansions*, the raw pulls the frontier paid for). `expansions`
    /// counts the same pulls on an engine telemetry counter.
    pub fn into_ranked_stream(
        self,
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        mode: PrintMode,
        measure: CostMeasure,
        parent: Option<&SpanHandle>,
        expansions: Option<Arc<Counter>>,
    ) -> RankedComposed<'static> {
        let width_const = match measure {
            CostMeasure::Width => self.chordal_width(g),
            CostMeasure::Fill => 0,
        };
        let shared: Arc<dyn Triangulator> = Arc::from(triangulator);
        let children = self
            .atoms
            .into_iter()
            .enumerate()
            .map(|(index, atom)| {
                let nodes = atom.graph.num_nodes();
                let floor = cost_floor(&atom.graph, measure);
                let ms = MsGraph::shared(Arc::new(atom.graph), Box::new(Arc::clone(&shared)));
                let stream: Box<dyn TriangulationStream + 'static> = Box::new(SequentialAtom(
                    MinimalTriangulationsEnumerator::from_msgraph(ms, mode),
                ));
                let stream: Box<dyn TriangulationStream + 'static> = match parent {
                    Some(span) => {
                        let span = span.child("atom");
                        span.attr("index", index.to_string());
                        span.attr("nodes", nodes.to_string());
                        span.attr("dispatch", "ranked");
                        Box::new(TracedStream::new(stream, span))
                    }
                    None => stream,
                };
                let mut stream = RankedStream::over(stream, measure, floor);
                if let Some(counter) = &expansions {
                    stream = stream.with_expansion_counter(Arc::clone(counter));
                }
                RankedAtom {
                    stream,
                    old_of: atom.old_of,
                }
            })
            .collect();
        RankedComposed::new(g.clone(), measure, width_const, children)
    }
}

/// A per-atom sequential stream (owns its subgraph through the
/// `MsGraph`).
struct SequentialAtom(MinimalTriangulationsEnumerator<'static>);

impl TriangulationStream for SequentialAtom {
    fn next_tri(&mut self) -> Option<Triangulation> {
        self.0.next()
    }

    fn finished(&self) -> bool {
        true
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        Some(self.0.enum_stats())
    }
}

/// One atom's contribution to a composed stream: the stream of its
/// minimal triangulations (in atom-local node ids) plus the map back
/// into the composed graph's ids.
pub struct AtomStream<'a> {
    /// The atom's triangulation stream.
    pub stream: Box<dyn TriangulationStream + 'a>,
    /// Maps the stream's node ids to the composed graph's.
    pub old_of: Vec<Node>,
}

struct AtomCursor<'a> {
    stream: Option<Box<dyn TriangulationStream + 'a>>,
    old_of: Vec<Node>,
    /// Fill edges of results `offset .. offset + cache.len()`, mapped to
    /// base-graph ids.
    cache: VecDeque<Vec<(Node, Node)>>,
    /// Index of the first cached result. Nonzero only for the *first*
    /// cursor, whose odometer digit never resets: its passed entries are
    /// dead and are trimmed, so single-atom composition streams in O(1)
    /// memory like the flat path (every other cursor is revisited on
    /// each product row and must keep its full cache).
    offset: usize,
    /// The drained stream ended by natural exhaustion.
    finished: bool,
    /// The drained stream ended by an abort (cancellation) instead.
    aborted: bool,
    replay: bool,
    stats: Option<EnumMisStats>,
}

impl AtomCursor<'_> {
    /// Makes result `idx` available in the cache, pulling from the live
    /// stream as needed. `false` when the stream ended first. `idx` is
    /// at most one past the last cached result, and never below
    /// `offset`.
    fn ensure(&mut self, idx: usize) -> bool {
        if idx - self.offset < self.cache.len() {
            return true;
        }
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        match stream.next_tri() {
            Some(tri) => {
                let fill = tri
                    .fill
                    .iter()
                    .map(|&(u, v)| (self.old_of[u as usize], self.old_of[v as usize]))
                    .collect();
                self.cache.push_back(fill);
                true
            }
            None => {
                self.finished = stream.finished();
                self.aborted = !self.finished;
                if self.stats.is_none() {
                    self.stats = stream.enum_stats();
                }
                // Drop eagerly: a parallel atom stream joins its workers
                // here instead of idling until the whole product ends.
                self.stream = None;
                false
            }
        }
    }

    /// The cached fills of result `idx`.
    fn fill_at(&self, idx: usize) -> &[(Node, Node)] {
        &self.cache[idx - self.offset]
    }

    /// Frees every cached result below `idx`.
    fn trim_below(&mut self, idx: usize) {
        while self.offset < idx {
            self.cache.pop_front();
            self.offset += 1;
        }
    }

    fn stats(&self) -> Option<EnumMisStats> {
        match &self.stream {
            Some(stream) => stream.enum_stats(),
            None => self.stats,
        }
    }
}

/// The product/merge composer: combines one [`AtomStream`] per planned
/// atom into the stream of the base graph's minimal triangulations, and
/// is itself a [`TriangulationStream`] — the execution layers hand it to
/// [`Response::over_stream`](crate::query::Response::over_stream)
/// unchanged.
///
/// Emission order is the lexicographic product (odometer) order: the
/// *last* atom's stream varies fastest, each atom stream in its own
/// emission order. Fills already seen are cached per atom, so every
/// atom's underlying enumeration runs **exactly once** no matter how
/// many product rows recombine it, and each emission costs one base
/// clone plus the fills. With deterministic per-atom streams the
/// composed order is a pure function of the plan — stable across thread
/// counts and executors.
///
/// Zero atoms (a chordal graph) compose to exactly one result: the base
/// graph itself, fill-free.
pub struct ComposedStream<'a> {
    base: Graph,
    cursors: Vec<AtomCursor<'a>>,
    odometer: Vec<usize>,
    started: bool,
    halted: bool,
    complete: bool,
}

impl<'a> ComposedStream<'a> {
    /// Composes `children` (one per non-trivial atom, in plan order)
    /// over the base graph they decompose.
    pub fn new(base: Graph, children: Vec<AtomStream<'a>>) -> ComposedStream<'a> {
        let cursors: Vec<AtomCursor<'a>> = children
            .into_iter()
            .map(|child| AtomCursor {
                replay: child.stream.is_replay(),
                stream: Some(child.stream),
                old_of: child.old_of,
                cache: VecDeque::new(),
                offset: 0,
                finished: false,
                aborted: false,
                stats: None,
            })
            .collect();
        ComposedStream {
            odometer: vec![0; cursors.len()],
            base,
            cursors,
            started: false,
            halted: false,
            complete: false,
        }
    }

    /// The combination at the current odometer position.
    fn materialize(&self) -> Triangulation {
        let mut h = self.base.clone();
        let mut fill = Vec::new();
        for (cursor, &idx) in self.cursors.iter().zip(&self.odometer) {
            for &(u, v) in cursor.fill_at(idx) {
                // Atoms overlap only inside clique separators, which are
                // never filled — the guard keeps `fill` exact regardless.
                if h.add_edge(u, v) {
                    fill.push((u, v));
                }
            }
        }
        Triangulation {
            graph: h,
            fill,
            peo: None,
        }
    }
}

impl TriangulationStream for ComposedStream<'_> {
    fn next_tri(&mut self) -> Option<Triangulation> {
        if self.halted {
            return None;
        }
        if !self.started {
            self.started = true;
            // First row: one result from every atom. A graph always has
            // at least one minimal triangulation, so an empty pull here
            // means the child aborted (or replayed a poisoned cache) —
            // either way the product ends.
            for i in 0..self.cursors.len() {
                if !self.cursors[i].ensure(0) {
                    self.halted = true;
                    self.complete = self.cursors[i].finished;
                    return None;
                }
            }
            return Some(self.materialize());
        }
        // Advance the odometer, last atom fastest.
        let mut i = self.cursors.len();
        loop {
            if i == 0 {
                self.halted = true;
                self.complete = true;
                return None;
            }
            i -= 1;
            let next = self.odometer[i] + 1;
            if self.cursors[i].ensure(next) {
                self.odometer[i] = next;
                if i == 0 {
                    // The first digit never resets: everything behind it
                    // is dead, and dropping it keeps a single-cursor
                    // composition O(1) memory over exponential streams.
                    self.cursors[0].trim_below(next);
                }
                break;
            }
            if self.cursors[i].aborted {
                self.halted = true;
                return None;
            }
            self.odometer[i] = 0;
        }
        Some(self.materialize())
    }

    fn finished(&self) -> bool {
        self.complete
    }

    /// The per-atom kernel counters, **summed** — `extend_calls`,
    /// `edge_queries` and `nodes_generated` are the real work totals;
    /// `answers` sums the per-atom answer counts (the *sum* the plan
    /// pays for, not the product it emits). `None` as soon as any atom
    /// stream cannot report (e.g. an unordered parallel run).
    fn enum_stats(&self) -> Option<EnumMisStats> {
        let mut total = EnumMisStats::default();
        for cursor in &self.cursors {
            let s = cursor.stats()?;
            total.extend_calls += s.extend_calls;
            total.edge_queries += s.edge_queries;
            total.nodes_generated += s.nodes_generated;
            total.answers += s.answers;
        }
        Some(total)
    }

    fn is_replay(&self) -> bool {
        !self.cursors.is_empty() && self.cursors.iter().all(|c| c.replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use mintri_graph::NodeSet;

    fn sorted_edge_sets(g: &Graph, planned: bool) -> Vec<Vec<(Node, Node)>> {
        let mut out: Vec<_> = Query::enumerate()
            .policy(crate::query::ExecPolicy::fixed().with_planned(planned))
            .run_local(g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn planned_equals_unreduced_on_glued_cycles() {
        // C4 and C5 glued at vertex 0 → two atoms, 2 × 5 = 10 results
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (0, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        assert_eq!(Plan::of(&g).atoms.len(), 2);
        let planned = sorted_edge_sets(&g, true);
        assert_eq!(planned.len(), 10);
        assert_eq!(planned, sorted_edge_sets(&g, false));
    }

    #[test]
    fn planned_equals_unreduced_on_disconnected_input() {
        // two disjoint C4s ⇒ 2 × 2 results
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        );
        let planned = sorted_edge_sets(&g, true);
        assert_eq!(planned.len(), 4);
        assert_eq!(planned, sorted_edge_sets(&g, false));
    }

    #[test]
    fn chordal_graphs_compose_to_one_fill_free_result() {
        for g in [
            Graph::path(6),
            Graph::complete(4),
            Graph::new(3),
            Graph::new(0),
        ] {
            let plan = Plan::of(&g);
            assert!(plan.atoms.is_empty(), "chordal graphs need no streams");
            let mut response = Query::enumerate().run_local(&g);
            let results = response.triangulations();
            assert_eq!(results.len(), 1);
            assert_eq!(results[0].graph, g);
            assert!(results[0].fill.is_empty());
            assert!(response.outcome().completed);
        }
    }

    #[test]
    fn single_atom_graphs_take_the_unreduced_path() {
        let plan = Plan::of(&Graph::cycle(7));
        assert!(plan.is_unreduced());
        // and the planned query result is bit-identical to the flat one
        let g = Graph::cycle(7);
        let a: Vec<_> = Query::enumerate()
            .run_local(&g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        let b: Vec<_> = Query::enumerate()
            .policy(crate::query::ExecPolicy::fixed().with_planned(false))
            .run_local(&g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn composed_results_are_minimal_triangulations_with_exact_fill() {
        // pendant C4 off a C5 through a cut vertex, plus a chordal tail
        let g = Graph::from_edges(
            11,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (0, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (7, 8),
                (8, 9),
                (9, 10),
            ],
        );
        for t in Query::enumerate().run_local(&g).triangulations() {
            assert!(mintri_triangulate::is_minimal_triangulation(&g, &t.graph));
            let mut fill = t.fill.clone();
            fill.sort();
            assert_eq!(fill, t.graph.fill_edges_over(&g), "fill list is exact");
        }
    }

    #[test]
    fn planned_atoms_are_canonically_renumbered() {
        // the same C5 atom embedded in two different graphs renumbers to
        // the same subgraph — the property per-atom session keying needs
        let g1 = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 0),
                (0, 5),
                (5, 6),
                (6, 0),
            ],
        );
        let g2 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5)]);
        let find_c5 = |p: &Plan| {
            p.atoms
                .iter()
                .find(|a| a.graph.num_nodes() == 5)
                .unwrap()
                .graph
                .clone()
        };
        let (p1, p2) = (Plan::of(&g1), Plan::of(&g2));
        assert_eq!(find_c5(&p1), find_c5(&p2));
    }

    #[test]
    fn odometer_order_is_deterministic() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let run = || -> Vec<_> {
            Query::enumerate()
                .run_local(&g)
                .triangulations()
                .iter()
                .map(|t| t.graph.edges())
                .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn composed_stats_sum_per_atom_work() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let mut response = Query::enumerate().run_local(&g);
        let n = response.by_ref().count();
        assert_eq!(n, 4, "2 × 2 product");
        let stats = response
            .outcome()
            .enum_stats
            .expect("sequential atoms report");
        assert_eq!(stats.answers, 4, "2 + 2 per-atom answers");
    }

    #[test]
    fn plan_reports_the_decomposition() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 1), (3, 4)]);
        let plan = Plan::of(&g);
        assert_eq!(plan.decomposition.components.len(), 1);
        assert!(!plan.decomposition.atoms.is_empty());
        let covered: Vec<NodeSet> = plan.decomposition.atoms.clone();
        let mut union = NodeSet::new(5);
        for a in &covered {
            union.union_with(a);
        }
        assert_eq!(union, g.node_set());
    }
}

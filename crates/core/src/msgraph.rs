//! The minimal separator graph `MSGraph` as an SGR (Section 3.1.1), with
//! the `Extend` procedure of Figure 3 as its tractable expansion
//! (Section 4.3).
//!
//! Performance notes (the "optimized version" of the paper's Section 7):
//! separators are *interned* into dense `u32` ids, so `EnumMIS` hashes
//! answers as sorted integer vectors instead of sets of bitsets, and the
//! crossing relation is memoized per (unordered) id pair — each `S ♮ T`
//! test runs the `O(n + m)` component count at most once. Both
//! optimizations can be disabled for the ablation benchmarks.
//!
//! Both memo tables are sharded concurrent structures (see
//! [`crate::memo`]), which makes `MsGraph: Send + Sync`: the parallel
//! engine fans `EnumMIS` out over a thread pool against a *single* shared
//! `MsGraph`, so every interned separator and every memoized crossing test
//! is computed once and reused across threads — and, through the session
//! layer, across repeated queries on the same graph.

use crate::memo::{ShardedInterner, ShardedPairMemo};
use mintri_chordal::CliqueForest;
use mintri_graph::Graph;
use mintri_separators::{crossing, MinSepState};
use mintri_sgr::Sgr;
use mintri_triangulate::{minimal_triangulation, McsM, Triangulation, Triangulator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use crate::memo::SepId;

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsGraphStats {
    /// Crossing tests actually computed (cache misses when caching is on).
    pub crossing_computed: usize,
    /// Crossing tests answered from the memo table.
    pub crossing_cached: usize,
    /// `Extend` invocations.
    pub extends: usize,
    /// Distinct separators interned.
    pub separators_interned: usize,
}

/// Relaxed atomic counters behind [`MsGraphStats`] — diagnostics only, so
/// cross-counter consistency under concurrency is not required.
#[derive(Default)]
struct AtomicStats {
    crossing_computed: AtomicUsize,
    crossing_cached: AtomicUsize,
    extends: AtomicUsize,
}

/// How an [`MsGraph`] holds its input graph: borrowed for the classic
/// iterator API, reference-counted for `'static` engine sessions.
enum GraphHandle<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphHandle<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Shared(g) => g,
        }
    }
}

/// The SGR `(G^ms, A_V^ms, A_E^ms)`: nodes are the minimal separators of a
/// fixed graph `g`, edges are crossing pairs, and the expansion runs any
/// black-box [`Triangulator`] through the `Extend` procedure.
///
/// The maximal independent sets of this graph are the maximal sets of
/// pairwise-parallel minimal separators — in bijection with `MinTri(g)`
/// (Theorem 4.1 / Corollary 4.2).
///
/// `MsGraph` is `Send + Sync`: all interior state is sharded concurrent
/// memo tables, so one instance can serve many worker threads (or many
/// sequential queries) at once, sharing its separator/crossing caches.
pub struct MsGraph<'g> {
    g: GraphHandle<'g>,
    triangulator: Box<dyn Triangulator>,
    interner: ShardedInterner,
    crossing_cache: Option<ShardedPairMemo>,
    stats: AtomicStats,
}

impl<'g> MsGraph<'g> {
    /// MSGraph over `g` with the default (MCS-M) expansion backend.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_triangulator(g, Box::new(McsM))
    }

    /// MSGraph with a custom triangulation backend — *any* off-the-shelf
    /// triangulation algorithm works, which is the black-box property the
    /// paper advertises.
    pub fn with_triangulator(g: &'g Graph, triangulator: Box<dyn Triangulator>) -> Self {
        Self::build(GraphHandle::Borrowed(g), triangulator)
    }

    fn build(g: GraphHandle<'g>, triangulator: Box<dyn Triangulator>) -> Self {
        MsGraph {
            g,
            triangulator,
            interner: ShardedInterner::default(),
            crossing_cache: Some(ShardedPairMemo::default()),
            stats: AtomicStats::default(),
        }
    }

    /// Disables the crossing memo table (ablation switch).
    pub fn without_crossing_cache(mut self) -> Self {
        self.crossing_cache = None;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.g.get()
    }

    /// Current counters.
    pub fn stats(&self) -> MsGraphStats {
        MsGraphStats {
            crossing_computed: self.stats.crossing_computed.load(Ordering::Relaxed),
            crossing_cached: self.stats.crossing_cached.load(Ordering::Relaxed),
            extends: self.stats.extends.load(Ordering::Relaxed),
            separators_interned: self.interner.len(),
        }
    }

    /// Interns a separator (content-addressed: equal sets share an id).
    pub fn intern(&self, s: mintri_graph::NodeSet) -> SepId {
        self.interner.intern(s)
    }

    /// The separator behind an id (clones the bitset).
    pub fn separator(&self, id: SepId) -> mintri_graph::NodeSet {
        self.interner.get(id)
    }

    /// `g[φ]` for an answer `φ` given as interned ids: saturates every
    /// separator. For a maximal answer this *is* the corresponding minimal
    /// triangulation (Theorem 4.1 part 1).
    pub fn saturate_answer(&self, answer: &[SepId]) -> Graph {
        // Clone the bitsets under a brief read lock and saturate outside
        // it: std's RwLock is writer-preferring, so holding the read
        // guard across the O(|φ|·n) saturation would stall every other
        // reader behind any queued intern() write.
        let sets: Vec<_> = self
            .interner
            .with_all(|sets| answer.iter().map(|&id| sets[id as usize].clone()).collect());
        let mut h = self.g.get().clone();
        for s in &sets {
            h.saturate(s);
        }
        h
    }

    /// Materializes an answer into a full [`Triangulation`] (saturation
    /// plus fill-edge bookkeeping) — shared by the sequential enumerator
    /// and the parallel engine.
    pub fn materialize(&self, answer: &[SepId]) -> Triangulation {
        let h = self.saturate_answer(answer);
        let fill = h.fill_edges_over(self.g.get());
        Triangulation {
            graph: h,
            fill,
            peo: None,
        }
    }

    fn crossing_uncached(&self, a: SepId, b: SepId) -> bool {
        self.stats.crossing_computed.fetch_add(1, Ordering::Relaxed);
        // Clone the two bitsets under a brief read lock and run the
        // O(n + m) component count outside it (see saturate_answer).
        let (s, t) = self.interner.with_pair(a, b, |s, t| (s.clone(), t.clone()));
        crossing(self.g.get(), &s, &t)
    }
}

/// `MsGraph<'static>` built over a shared graph — the form the engine's
/// session layer caches and shares across queries and threads.
impl MsGraph<'static> {
    /// MSGraph owning (a reference count on) its graph.
    pub fn shared(g: Arc<Graph>, triangulator: Box<dyn Triangulator>) -> Self {
        Self::build(GraphHandle::Shared(g), triangulator)
    }
}

impl Sgr for MsGraph<'_> {
    type Node = SepId;
    type NodeCursor = MinSepState;

    fn start_nodes(&self) -> MinSepState {
        MinSepState::new()
    }

    fn next_node(&self, cursor: &mut MinSepState) -> Option<SepId> {
        cursor.next(self.g.get()).map(|s| self.interner.intern(s))
    }

    fn edge(&self, &u: &SepId, &v: &SepId) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        match &self.crossing_cache {
            Some(cache) => {
                if let Some(hit) = cache.get(key) {
                    self.stats.crossing_cached.fetch_add(1, Ordering::Relaxed);
                    return hit;
                }
                let result = self.crossing_uncached(key.0, key.1);
                cache.insert(key, result);
                result
            }
            None => self.crossing_uncached(key.0, key.1),
        }
    }

    /// The `Extend` procedure (Figure 3): saturate `φ`, triangulate with the
    /// black box (plus the sandwich step unless the backend guarantees
    /// minimality), and read the maximal parallel set off the minimal
    /// separators of the chordal result (Kumar–Madhavan extraction).
    fn extend(&self, base: &[SepId]) -> Vec<SepId> {
        self.stats.extends.fetch_add(1, Ordering::Relaxed);
        let gphi = self.saturate_answer(base);
        let tri = minimal_triangulation(&gphi, self.triangulator.as_ref());
        let forest = match &tri.peo {
            Some(peo) => CliqueForest::build_with_peo(&tri.graph, peo),
            None => CliqueForest::build(&tri.graph),
        };
        let mut ids: Vec<SepId> = forest
            .minimal_separators()
            .into_iter()
            .map(|s| self.interner.intern(s))
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::NodeSet;
    use mintri_sgr::{EnumMis, PrintMode};

    #[test]
    fn msgraph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MsGraph<'static>>();
    }

    #[test]
    fn interning_is_content_addressed() {
        let g = Graph::cycle(5);
        let ms = MsGraph::new(&g);
        let a = ms.intern(NodeSet::from_iter(5, [0, 2]));
        let b = ms.intern(NodeSet::from_iter(5, [0, 2]));
        assert_eq!(a, b);
        assert_eq!(ms.separator(a).to_vec(), vec![0, 2]);
    }

    #[test]
    fn extend_of_empty_set_is_maximal_parallel_set() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let m = ms.extend(&[]);
        assert!(!m.is_empty());
        // pairwise parallel
        for (i, &a) in m.iter().enumerate() {
            for &b in &m[i + 1..] {
                assert!(!ms.edge(&a, &b), "extended set must be independent");
            }
        }
        // the saturation is chordal (Theorem 4.1)
        let h = ms.saturate_answer(&m);
        assert!(mintri_chordal::is_chordal(&h));
    }

    #[test]
    fn crossing_cache_counts() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let a = ms.intern(NodeSet::from_iter(6, [0, 3]));
        let b = ms.intern(NodeSet::from_iter(6, [1, 4]));
        assert!(ms.edge(&a, &b));
        assert!(ms.edge(&b, &a));
        let s = ms.stats();
        assert_eq!(s.crossing_computed, 1);
        assert_eq!(s.crossing_cached, 1);
    }

    #[test]
    fn enum_mis_over_msgraph_counts_c4() {
        let g = Graph::cycle(4);
        let ms = MsGraph::new(&g);
        let answers: Vec<_> = EnumMis::new(&ms, PrintMode::UponGeneration).collect();
        assert_eq!(answers.len(), 2, "C4 has two minimal triangulations");
    }

    #[test]
    fn shared_msgraph_answers_match_borrowed() {
        let g = Graph::cycle(6);
        let borrowed = MsGraph::new(&g);
        let shared = MsGraph::shared(Arc::new(g.clone()), Box::new(McsM));
        let collect = |ms: &MsGraph<'_>| -> Vec<Vec<SepId>> {
            EnumMis::new(ms, PrintMode::UponGeneration).collect()
        };
        assert_eq!(collect(&borrowed), collect(&shared));
    }

    #[test]
    fn concurrent_edge_queries_agree_with_sequential() {
        let g = Graph::cycle(8);
        let ms = MsGraph::new(&g);
        let ids: Vec<SepId> = ms.nodes().collect();
        let expected: Vec<bool> = ids
            .iter()
            .flat_map(|a| ids.iter().map(move |b| (a, b)))
            .map(|(a, b)| ms.edge(a, b))
            .collect();
        // fresh MsGraph, queried from 4 threads at once
        let fresh = MsGraph::new(&g);
        let fresh_ids: Vec<SepId> = fresh.nodes().collect();
        assert_eq!(ids, fresh_ids);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let got: Vec<bool> = fresh_ids
                        .iter()
                        .flat_map(|a| fresh_ids.iter().map(move |b| (a, b)))
                        .map(|(a, b)| fresh.edge(a, b))
                        .collect();
                    assert_eq!(got, expected);
                });
            }
        });
    }
}

//! The minimal separator graph `MSGraph` as an SGR (Section 3.1.1), with
//! the `Extend` procedure of Figure 3 as its tractable expansion
//! (Section 4.3).
//!
//! Performance notes (the "optimized version" of the paper's Section 7):
//! separators are *interned* into dense `u32` ids, so `EnumMIS` hashes
//! answers as sorted integer vectors instead of sets of bitsets, and the
//! crossing relation is memoized per (unordered) id pair — each `S ♮ T`
//! test runs the `O(n + m)` component count at most once. Both
//! optimizations can be disabled for the ablation benchmarks.
//!
//! Both memo tables are sharded concurrent structures (see
//! [`crate::memo`]), which makes `MsGraph: Send + Sync`: the parallel
//! engine fans `EnumMIS` out over a thread pool against a *single* shared
//! `MsGraph`, so every interned separator and every memoized crossing test
//! is computed once and reused across threads — and, through the session
//! layer, across repeated queries on the same graph.

use crate::memo::{ShardedInterner, ShardedPairMemo};
use mintri_chordal::{minimal_separators_with, CliqueForest, ForestScratch};
use mintri_graph::traversal::BfsScratch;
use mintri_graph::{Graph, Node, NodeSet};
use mintri_separators::{crossing, crossing_with, MinSepState};
use mintri_sgr::Sgr;
use mintri_triangulate::{minimal_triangulation, McsM, TriScratch, Triangulation, Triangulator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

pub use crate::memo::SepId;

/// Reusable workspace for the scratch-kernel `Extend`/crossing path.
///
/// One instance belongs to exactly one worker (a sequential enumeration
/// stream, or one engine worker thread) and is threaded through
/// [`Sgr::extend_with`] / [`Sgr::edge_with`]. Every buffer is rebuilt *in
/// place* per call, so after a warm-up pass over the graph's shapes the
/// kernel performs zero heap allocations in steady state — the invariant
/// pinned by the repository's `alloc_audit` test.
#[derive(Default)]
pub struct ExtendScratch {
    /// `g[φ]`: the saturated graph, overwritten in place each `Extend`.
    gphi: Graph,
    /// Shared handles on the answer's separators (cleared after use).
    seps: Vec<Arc<NodeSet>>,
    /// Clique-member buffer for [`Graph::saturate_with`].
    members: Vec<Node>,
    /// MCS-M workspace: fill edges and the elimination order land here.
    tri: TriScratch,
    /// Kumar–Madhavan separator-extraction workspace.
    forest: ForestScratch,
    /// BFS buffers for crossing (component-count) tests.
    bfs: BfsScratch,
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsGraphStats {
    /// Crossing tests actually computed (cache misses when caching is on).
    pub crossing_computed: usize,
    /// Crossing tests answered from the memo table.
    pub crossing_cached: usize,
    /// `Extend` invocations.
    pub extends: usize,
    /// Distinct separators interned.
    pub separators_interned: usize,
}

/// Relaxed atomic counters behind [`MsGraphStats`] — diagnostics only, so
/// cross-counter consistency under concurrency is not required.
#[derive(Default)]
struct AtomicStats {
    crossing_computed: AtomicUsize,
    crossing_cached: AtomicUsize,
    extends: AtomicUsize,
}

/// How an [`MsGraph`] holds its input graph: borrowed for the classic
/// iterator API, reference-counted for `'static` engine sessions.
enum GraphHandle<'g> {
    Borrowed(&'g Graph),
    Shared(Arc<Graph>),
}

impl GraphHandle<'_> {
    fn get(&self) -> &Graph {
        match self {
            GraphHandle::Borrowed(g) => g,
            GraphHandle::Shared(g) => g,
        }
    }
}

/// The SGR `(G^ms, A_V^ms, A_E^ms)`: nodes are the minimal separators of a
/// fixed graph `g`, edges are crossing pairs, and the expansion runs any
/// black-box [`Triangulator`] through the `Extend` procedure.
///
/// The maximal independent sets of this graph are the maximal sets of
/// pairwise-parallel minimal separators — in bijection with `MinTri(g)`
/// (Theorem 4.1 / Corollary 4.2).
///
/// `MsGraph` is `Send + Sync`: all interior state is sharded concurrent
/// memo tables, so one instance can serve many worker threads (or many
/// sequential queries) at once, sharing its separator/crossing caches.
pub struct MsGraph<'g> {
    g: GraphHandle<'g>,
    triangulator: Box<dyn Triangulator>,
    interner: ShardedInterner,
    crossing_cache: Option<ShardedPairMemo>,
    /// When `true` (default), `extend_with`/`edge_with` run through the
    /// allocation-free scratch kernel; when `false` they delegate to the
    /// historical allocating path (ablation switch).
    scratch_kernel: bool,
    stats: AtomicStats,
}

impl<'g> MsGraph<'g> {
    /// MSGraph over `g` with the default (MCS-M) expansion backend.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_triangulator(g, Box::new(McsM))
    }

    /// MSGraph with a custom triangulation backend — *any* off-the-shelf
    /// triangulation algorithm works, which is the black-box property the
    /// paper advertises.
    pub fn with_triangulator(g: &'g Graph, triangulator: Box<dyn Triangulator>) -> Self {
        Self::build(GraphHandle::Borrowed(g), triangulator)
    }

    fn build(g: GraphHandle<'g>, triangulator: Box<dyn Triangulator>) -> Self {
        MsGraph {
            g,
            triangulator,
            interner: ShardedInterner::default(),
            crossing_cache: Some(ShardedPairMemo::default()),
            scratch_kernel: true,
            stats: AtomicStats::default(),
        }
    }

    /// Disables the crossing memo table (ablation switch).
    pub fn without_crossing_cache(mut self) -> Self {
        self.crossing_cache = None;
        self
    }

    /// Disables the scratch-space execution kernel (ablation switch):
    /// `extend_with`/`edge_with` fall back to the allocating
    /// [`Sgr::extend`]/[`Sgr::edge`] path. Answers are bit-for-bit
    /// identical either way; only the allocation profile differs.
    pub fn without_scratch_kernel(mut self) -> Self {
        self.scratch_kernel = false;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.g.get()
    }

    /// Current counters.
    pub fn stats(&self) -> MsGraphStats {
        MsGraphStats {
            crossing_computed: self.stats.crossing_computed.load(Ordering::Relaxed),
            crossing_cached: self.stats.crossing_cached.load(Ordering::Relaxed),
            extends: self.stats.extends.load(Ordering::Relaxed),
            separators_interned: self.interner.len(),
        }
    }

    /// Interns a separator (content-addressed: equal sets share an id).
    pub fn intern(&self, s: mintri_graph::NodeSet) -> SepId {
        self.interner.intern(s)
    }

    /// A shared handle on the separator behind an id (refcount bump, no
    /// bitset copy).
    pub fn separator(&self, id: SepId) -> Arc<NodeSet> {
        self.interner.get(id)
    }

    /// `g[φ]` for an answer `φ` given as interned ids: saturates every
    /// separator. For a maximal answer this *is* the corresponding minimal
    /// triangulation (Theorem 4.1 part 1).
    pub fn saturate_answer(&self, answer: &[SepId]) -> Graph {
        // Take Arc handles under a brief read lock and saturate outside
        // it: std's RwLock is writer-preferring, so holding the read
        // guard across the O(|φ|·n) saturation would stall every other
        // reader behind any queued intern() write.
        let sets: Vec<Arc<NodeSet>> = self.interner.with_all(|sets| {
            answer
                .iter()
                .map(|&id| Arc::clone(&sets[id as usize]))
                .collect()
        });
        let mut h = self.g.get().clone();
        for s in &sets {
            h.saturate(s);
        }
        h
    }

    /// [`Self::saturate_answer`] into the workspace: `ws.gphi` becomes
    /// `g[φ]` with no graph or bitset allocation (buffers are reused).
    fn saturate_into(&self, answer: &[SepId], ws: &mut ExtendScratch) {
        self.interner.with_all(|sets| {
            ws.seps
                .extend(answer.iter().map(|&id| Arc::clone(&sets[id as usize])));
        });
        ws.gphi.clone_from(self.g.get());
        let (gphi, seps, members) = (&mut ws.gphi, &ws.seps, &mut ws.members);
        for s in seps {
            gphi.saturate_with(s, members);
        }
        ws.seps.clear();
    }

    /// Materializes an answer into a full [`Triangulation`] (saturation
    /// plus fill-edge bookkeeping) — shared by the sequential enumerator
    /// and the parallel engine.
    pub fn materialize(&self, answer: &[SepId]) -> Triangulation {
        let h = self.saturate_answer(answer);
        let fill = h.fill_edges_over(self.g.get());
        Triangulation {
            graph: h,
            fill,
            peo: None,
        }
    }

    fn crossing_uncached(&self, a: SepId, b: SepId) -> bool {
        self.stats.crossing_computed.fetch_add(1, Ordering::Relaxed);
        // Take Arc handles under a brief read lock and run the O(n + m)
        // component count outside it (see saturate_answer).
        let (s, t) = self.interner.pair(a, b);
        crossing(self.g.get(), &s, &t)
    }

    /// Consults the crossing memo: `Ok(answer)` when the relation is
    /// already known (identity, or a cache hit), `Err(canonical_key)` when
    /// the caller must compute it and report back via [`Self::edge_record`].
    fn edge_cached(&self, u: SepId, v: SepId) -> Result<bool, (SepId, SepId)> {
        if u == v {
            return Ok(false);
        }
        let key = (u.min(v), u.max(v));
        if let Some(cache) = &self.crossing_cache {
            if let Some(hit) = cache.get(key) {
                self.stats.crossing_cached.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
        }
        Err(key)
    }

    /// Records a computed crossing answer for the canonical `key` (no-op
    /// when the cache is ablated away).
    fn edge_record(&self, key: (SepId, SepId), result: bool) {
        if let Some(cache) = &self.crossing_cache {
            cache.insert(key, result);
        }
    }

    /// The kernel `Extend`: same result as [`Sgr::extend`], written into
    /// `out` with every intermediate buffer drawn from `ws`.
    fn extend_into(&self, base: &[SepId], out: &mut Vec<SepId>, ws: &mut ExtendScratch) {
        self.stats.extends.fetch_add(1, Ordering::Relaxed);
        out.clear();
        self.saturate_into(base, ws);
        if self.triangulator.guarantees_minimal()
            && self.triangulator.triangulate_into(&ws.gphi, &mut ws.tri)
        {
            // The backend wrote fill + PEO into the workspace: add the
            // fill in place (`g[φ]` is not needed again this call, which
            // saves the full graph clone the allocating path pays) and
            // read the separators straight off the elimination order.
            // `minimal_separators_with` emits the same sets in the same
            // order as `CliqueForest::minimal_separators`, so the interned
            // ids — and hence the enumeration order — are identical.
            for &(u, v) in &ws.tri.fill {
                ws.gphi.add_edge(u, v);
            }
            let (gphi, tri, forest) = (&ws.gphi, &ws.tri, &mut ws.forest);
            let interner = &self.interner;
            minimal_separators_with(gphi, &tri.peo, forest, |sep| {
                out.push(interner.intern_ref(sep));
            });
        } else {
            // Allocating fallback: a black-box backend without a kernel
            // hook (or one that needs the sandwich step).
            let tri = minimal_triangulation(&ws.gphi, self.triangulator.as_ref());
            let forest = match &tri.peo {
                Some(peo) => CliqueForest::build_with_peo(&tri.graph, peo),
                None => CliqueForest::build(&tri.graph),
            };
            out.extend(
                forest
                    .minimal_separators()
                    .into_iter()
                    .map(|s| self.interner.intern(s)),
            );
        }
        out.sort_unstable();
    }
}

/// `MsGraph<'static>` built over a shared graph — the form the engine's
/// session layer caches and shares across queries and threads.
impl MsGraph<'static> {
    /// MSGraph owning (a reference count on) its graph.
    pub fn shared(g: Arc<Graph>, triangulator: Box<dyn Triangulator>) -> Self {
        Self::build(GraphHandle::Shared(g), triangulator)
    }
}

impl Sgr for MsGraph<'_> {
    type Node = SepId;
    type NodeCursor = MinSepState;
    type Scratch = ExtendScratch;

    fn start_nodes(&self) -> MinSepState {
        MinSepState::new()
    }

    fn next_node(&self, cursor: &mut MinSepState) -> Option<SepId> {
        cursor.next(self.g.get()).map(|s| self.interner.intern(s))
    }

    fn edge(&self, &u: &SepId, &v: &SepId) -> bool {
        match self.edge_cached(u, v) {
            Ok(known) => known,
            Err(key) => {
                let result = self.crossing_uncached(key.0, key.1);
                self.edge_record(key, result);
                result
            }
        }
    }

    /// [`Sgr::edge`] through the scratch kernel: cache misses run the
    /// component count in `ws`-owned BFS buffers over `Arc` handles —
    /// no bitset copies, no queue allocations.
    fn edge_with(&self, &u: &SepId, &v: &SepId, ws: &mut ExtendScratch) -> bool {
        if !self.scratch_kernel {
            return self.edge(&u, &v);
        }
        match self.edge_cached(u, v) {
            Ok(known) => known,
            Err(key) => {
                self.stats.crossing_computed.fetch_add(1, Ordering::Relaxed);
                let (s, t) = self.interner.pair(key.0, key.1);
                let result = crossing_with(self.g.get(), &s, &t, &mut ws.bfs);
                self.edge_record(key, result);
                result
            }
        }
    }

    /// [`Sgr::extend`] through the scratch kernel (or, with the kernel
    /// ablated, the historical allocating path copied into `out`).
    fn extend_with(&self, base: &[SepId], out: &mut Vec<SepId>, ws: &mut ExtendScratch) {
        if !self.scratch_kernel {
            out.clear();
            out.extend(self.extend(base));
            return;
        }
        self.extend_into(base, out, ws);
    }

    /// The `Extend` procedure (Figure 3): saturate `φ`, triangulate with the
    /// black box (plus the sandwich step unless the backend guarantees
    /// minimality), and read the maximal parallel set off the minimal
    /// separators of the chordal result (Kumar–Madhavan extraction).
    fn extend(&self, base: &[SepId]) -> Vec<SepId> {
        self.stats.extends.fetch_add(1, Ordering::Relaxed);
        let gphi = self.saturate_answer(base);
        let tri = minimal_triangulation(&gphi, self.triangulator.as_ref());
        let forest = match &tri.peo {
            Some(peo) => CliqueForest::build_with_peo(&tri.graph, peo),
            None => CliqueForest::build(&tri.graph),
        };
        let mut ids: Vec<SepId> = forest
            .minimal_separators()
            .into_iter()
            .map(|s| self.interner.intern(s))
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::NodeSet;
    use mintri_sgr::{EnumMis, PrintMode};

    #[test]
    fn msgraph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MsGraph<'static>>();
    }

    #[test]
    fn interning_is_content_addressed() {
        let g = Graph::cycle(5);
        let ms = MsGraph::new(&g);
        let a = ms.intern(NodeSet::from_iter(5, [0, 2]));
        let b = ms.intern(NodeSet::from_iter(5, [0, 2]));
        assert_eq!(a, b);
        assert_eq!(ms.separator(a).to_vec(), vec![0, 2]);
    }

    #[test]
    fn extend_of_empty_set_is_maximal_parallel_set() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let m = ms.extend(&[]);
        assert!(!m.is_empty());
        // pairwise parallel
        for (i, &a) in m.iter().enumerate() {
            for &b in &m[i + 1..] {
                assert!(!ms.edge(&a, &b), "extended set must be independent");
            }
        }
        // the saturation is chordal (Theorem 4.1)
        let h = ms.saturate_answer(&m);
        assert!(mintri_chordal::is_chordal(&h));
    }

    #[test]
    fn crossing_cache_counts() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let a = ms.intern(NodeSet::from_iter(6, [0, 3]));
        let b = ms.intern(NodeSet::from_iter(6, [1, 4]));
        assert!(ms.edge(&a, &b));
        assert!(ms.edge(&b, &a));
        let s = ms.stats();
        assert_eq!(s.crossing_computed, 1);
        assert_eq!(s.crossing_cached, 1);
    }

    #[test]
    fn enum_mis_over_msgraph_counts_c4() {
        let g = Graph::cycle(4);
        let ms = MsGraph::new(&g);
        let answers: Vec<_> = EnumMis::new(&ms, PrintMode::UponGeneration).collect();
        assert_eq!(answers.len(), 2, "C4 has two minimal triangulations");
    }

    #[test]
    fn shared_msgraph_answers_match_borrowed() {
        let g = Graph::cycle(6);
        let borrowed = MsGraph::new(&g);
        let shared = MsGraph::shared(Arc::new(g.clone()), Box::new(McsM));
        let collect = |ms: &MsGraph<'_>| -> Vec<Vec<SepId>> {
            EnumMis::new(ms, PrintMode::UponGeneration).collect()
        };
        assert_eq!(collect(&borrowed), collect(&shared));
    }

    #[test]
    fn concurrent_edge_queries_agree_with_sequential() {
        let g = Graph::cycle(8);
        let ms = MsGraph::new(&g);
        let ids: Vec<SepId> = ms.nodes().collect();
        let expected: Vec<bool> = ids
            .iter()
            .flat_map(|a| ids.iter().map(move |b| (a, b)))
            .map(|(a, b)| ms.edge(a, b))
            .collect();
        // fresh MsGraph, queried from 4 threads at once
        let fresh = MsGraph::new(&g);
        let fresh_ids: Vec<SepId> = fresh.nodes().collect();
        assert_eq!(ids, fresh_ids);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let got: Vec<bool> = fresh_ids
                        .iter()
                        .flat_map(|a| fresh_ids.iter().map(move |b| (a, b)))
                        .map(|(a, b)| fresh.edge(a, b))
                        .collect();
                    assert_eq!(got, expected);
                });
            }
        });
    }
}

//! The minimal separator graph `MSGraph` as an SGR (Section 3.1.1), with
//! the `Extend` procedure of Figure 3 as its tractable expansion
//! (Section 4.3).
//!
//! Performance notes (the "optimized version" of the paper's Section 7):
//! separators are *interned* into dense `u32` ids, so `EnumMIS` hashes
//! answers as sorted integer vectors instead of sets of bitsets, and the
//! crossing relation is memoized per (unordered) id pair — each `S ♮ T`
//! test runs the `O(n + m)` component count at most once. Both
//! optimizations can be disabled for the ablation benchmarks.

use mintri_chordal::CliqueForest;
use mintri_graph::{FxHashMap, Graph, NodeSet};
use mintri_separators::{crossing, MinSepState};
use mintri_sgr::Sgr;
use mintri_triangulate::{minimal_triangulation, McsM, Triangulator};
use std::cell::RefCell;

/// Dense identifier of an interned minimal separator.
pub type SepId = u32;

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct MsGraphStats {
    /// Crossing tests actually computed (cache misses when caching is on).
    pub crossing_computed: usize,
    /// Crossing tests answered from the memo table.
    pub crossing_cached: usize,
    /// `Extend` invocations.
    pub extends: usize,
    /// Distinct separators interned.
    pub separators_interned: usize,
}

#[derive(Default)]
struct Interner {
    ids: FxHashMap<NodeSet, SepId>,
    sets: Vec<NodeSet>,
}

impl Interner {
    fn intern(&mut self, s: NodeSet) -> SepId {
        if let Some(&id) = self.ids.get(&s) {
            return id;
        }
        let id = self.sets.len() as SepId;
        self.ids.insert(s.clone(), id);
        self.sets.push(s);
        id
    }
}

/// The SGR `(G^ms, A_V^ms, A_E^ms)`: nodes are the minimal separators of a
/// fixed graph `g`, edges are crossing pairs, and the expansion runs any
/// black-box [`Triangulator`] through the `Extend` procedure.
///
/// The maximal independent sets of this graph are the maximal sets of
/// pairwise-parallel minimal separators — in bijection with `MinTri(g)`
/// (Theorem 4.1 / Corollary 4.2).
pub struct MsGraph<'g> {
    g: &'g Graph,
    triangulator: Box<dyn Triangulator>,
    interner: RefCell<Interner>,
    crossing_cache: Option<RefCell<FxHashMap<(SepId, SepId), bool>>>,
    stats: RefCell<MsGraphStats>,
}

impl<'g> MsGraph<'g> {
    /// MSGraph over `g` with the default (MCS-M) expansion backend.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_triangulator(g, Box::new(McsM))
    }

    /// MSGraph with a custom triangulation backend — *any* off-the-shelf
    /// triangulation algorithm works, which is the black-box property the
    /// paper advertises.
    pub fn with_triangulator(g: &'g Graph, triangulator: Box<dyn Triangulator>) -> Self {
        MsGraph {
            g,
            triangulator,
            interner: RefCell::new(Interner::default()),
            crossing_cache: Some(RefCell::new(FxHashMap::default())),
            stats: RefCell::new(MsGraphStats::default()),
        }
    }

    /// Disables the crossing memo table (ablation switch).
    pub fn without_crossing_cache(mut self) -> Self {
        self.crossing_cache = None;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Current counters.
    pub fn stats(&self) -> MsGraphStats {
        let mut s = *self.stats.borrow();
        s.separators_interned = self.interner.borrow().sets.len();
        s
    }

    /// The separator behind an id (clones the bitset).
    pub fn separator(&self, id: SepId) -> NodeSet {
        self.interner.borrow().sets[id as usize].clone()
    }

    /// `g[φ]` for an answer `φ` given as interned ids: saturates every
    /// separator. For a maximal answer this *is* the corresponding minimal
    /// triangulation (Theorem 4.1 part 1).
    pub fn saturate_answer(&self, answer: &[SepId]) -> Graph {
        let interner = self.interner.borrow();
        let mut h = self.g.clone();
        for &id in answer {
            h.saturate(&interner.sets[id as usize]);
        }
        h
    }

    fn crossing_uncached(&self, a: SepId, b: SepId) -> bool {
        let interner = self.interner.borrow();
        self.stats.borrow_mut().crossing_computed += 1;
        crossing(
            self.g,
            &interner.sets[a as usize],
            &interner.sets[b as usize],
        )
    }
}

impl Sgr for MsGraph<'_> {
    type Node = SepId;
    type NodeCursor = MinSepState;

    fn start_nodes(&self) -> MinSepState {
        MinSepState::new()
    }

    fn next_node(&self, cursor: &mut MinSepState) -> Option<SepId> {
        cursor
            .next(self.g)
            .map(|s| self.interner.borrow_mut().intern(s))
    }

    fn edge(&self, &u: &SepId, &v: &SepId) -> bool {
        if u == v {
            return false;
        }
        let key = (u.min(v), u.max(v));
        match &self.crossing_cache {
            Some(cache) => {
                if let Some(&hit) = cache.borrow().get(&key) {
                    self.stats.borrow_mut().crossing_cached += 1;
                    return hit;
                }
                let result = self.crossing_uncached(key.0, key.1);
                cache.borrow_mut().insert(key, result);
                result
            }
            None => self.crossing_uncached(key.0, key.1),
        }
    }

    /// The `Extend` procedure (Figure 3): saturate `φ`, triangulate with the
    /// black box (plus the sandwich step unless the backend guarantees
    /// minimality), and read the maximal parallel set off the minimal
    /// separators of the chordal result (Kumar–Madhavan extraction).
    fn extend(&self, base: &[SepId]) -> Vec<SepId> {
        self.stats.borrow_mut().extends += 1;
        let gphi = self.saturate_answer(base);
        let tri = minimal_triangulation(&gphi, self.triangulator.as_ref());
        let forest = match &tri.peo {
            Some(peo) => CliqueForest::build_with_peo(&tri.graph, peo),
            None => CliqueForest::build(&tri.graph),
        };
        let mut interner = self.interner.borrow_mut();
        let mut ids: Vec<SepId> = forest
            .minimal_separators()
            .into_iter()
            .map(|s| interner.intern(s))
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_sgr::{EnumMis, PrintMode};

    #[test]
    fn interning_is_content_addressed() {
        let g = Graph::cycle(5);
        let ms = MsGraph::new(&g);
        let a = ms
            .interner
            .borrow_mut()
            .intern(NodeSet::from_iter(5, [0, 2]));
        let b = ms
            .interner
            .borrow_mut()
            .intern(NodeSet::from_iter(5, [0, 2]));
        assert_eq!(a, b);
        assert_eq!(ms.separator(a).to_vec(), vec![0, 2]);
    }

    #[test]
    fn extend_of_empty_set_is_maximal_parallel_set() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let m = ms.extend(&[]);
        assert!(!m.is_empty());
        // pairwise parallel
        for (i, &a) in m.iter().enumerate() {
            for &b in &m[i + 1..] {
                assert!(!ms.edge(&a, &b), "extended set must be independent");
            }
        }
        // the saturation is chordal (Theorem 4.1)
        let h = ms.saturate_answer(&m);
        assert!(mintri_chordal::is_chordal(&h));
    }

    #[test]
    fn crossing_cache_counts() {
        let g = Graph::cycle(6);
        let ms = MsGraph::new(&g);
        let a = ms
            .interner
            .borrow_mut()
            .intern(NodeSet::from_iter(6, [0, 3]));
        let b = ms
            .interner
            .borrow_mut()
            .intern(NodeSet::from_iter(6, [1, 4]));
        assert!(ms.edge(&a, &b));
        assert!(ms.edge(&b, &a));
        let s = ms.stats();
        assert_eq!(s.crossing_computed, 1);
        assert_eq!(s.crossing_cached, 1);
    }

    #[test]
    fn enum_mis_over_msgraph_counts_c4() {
        let g = Graph::cycle(4);
        let ms = MsGraph::new(&g);
        let answers: Vec<_> = EnumMis::new(&ms, PrintMode::UponGeneration).collect();
        assert_eq!(answers.len(), 2, "C4 has two minimal triangulations");
    }
}

//! Zero-dependency JSON for the front door: a parser and a writer, plus
//! the wire codec turning [`Query`]/[`QueryOutcome`]/[`Graph`] into JSON
//! documents and back.
//!
//! The workspace deliberately carries no serialization dependencies
//! (offline environment — serde is shimmed away exactly like
//! rand/proptest were), so the `mintri` CLI grew a small hand-rolled
//! JSON *writer*. This module is that writer promoted to a shared,
//! two-way layer: the CLI, the HTTP transport (`mintri-serve`), the
//! benches and the tests all speak the same dialect, and everything the
//! stack emits parses back with [`JsonValue::parse`] — no more
//! write-only JSON.
//!
//! Three layers, smallest first:
//!
//! 1. [`JsonValue`] — a parsed document (recursive descent parser with a
//!    nesting-depth cap, full string escaping both ways).
//! 2. [`JsonObject`] — the streaming writer the CLI already used:
//!    append fields, [`JsonObject::finish`] into a compact document.
//! 3. The **wire codec**: [`query_to_json`] / [`query_from_json`]
//!    round-trip a typed [`Query`] (task, backend by name, print mode,
//!    budget, delivery, threads, plan, ranked — everything except the
//!    process-local [`CancelToken`](crate::query::CancelToken), which
//!    parses fresh), [`graph_to_json`] / [`graph_from_json`] carry the
//!    full edge list, and [`outcome_json`] / [`response_document`]
//!    render a [`QueryOutcome`] the way every CLI `--format json`
//!    command prints it.

use crate::query::{CostMeasure, Delivery, ExecPolicy, Query, QueryOutcome, Task};
use crate::{EnumerationBudget, TdEnumerationMode};
use mintri_graph::{Graph, Node};
use mintri_sgr::PrintMode;
use mintri_telemetry::TraceNode;
use mintri_triangulate::{CompleteFill, EliminationOrder, LbTriang, LexM, McsM, Triangulator};
use std::fmt;
use std::time::Duration;

/// Maximum nesting depth [`JsonValue::parse`] accepts — deep enough for
/// any document the stack produces, shallow enough that adversarial
/// input cannot blow the parse stack.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// JsonValue: the parsed document
// ---------------------------------------------------------------------------

/// A parsed JSON document. Numbers are `f64` (every count this stack
/// emits is well inside the exact-integer range); objects preserve field
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source field order.
    Obj(Vec<(String, JsonValue)>),
}

/// A parse failure: where, and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string, if this value is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this value is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as an exact `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this value is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, if this value is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

impl fmt::Display for JsonValue {
    /// Compact rendering; integral numbers print without a fraction, so
    /// `parse ∘ to_string` is the identity on everything the stack emits.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            JsonValue::Str(s) => f.write_str(&escape(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `s` as a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.expect_literal("null", JsonValue::Null),
            Some(b't') => self.expect_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(JsonValue::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(JsonValue::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        let mut run = self.pos; // start of the current unescaped span
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.input[run..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.input[run..self.pos]);
                    self.pos += 1;
                    let c = match self.bytes.get(self.pos) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'b') => '\u{08}',
                        Some(b'f') => '\u{0c}',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            run = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    };
                    out.push(c);
                    self.pos += 1;
                    run = self.pos;
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low-surrogate
    /// escape when the first unit is a high surrogate). `self.pos` sits
    /// on the first hex digit on entry and past the last consumed digit
    /// on exit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let unit = self.hex4()?;
        if (0xD800..0xDC00).contains(&unit) {
            // High surrogate: require a `\uXXXX` low surrogate.
            if !(self.eat(b'\\') && self.eat(b'u')) {
                return Err(self.err("high surrogate without a following \\u escape"));
            }
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
        }
        char::from_u32(unit).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.bytes.get(self.pos) {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        let leading_zero = self.bytes.get(self.pos) == Some(&b'0');
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digits in number"));
        }
        if leading_zero && int_digits > 1 {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.eat(b'.') && self.digits() == 0 {
            return Err(self.err("expected digits after decimal point"));
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = &self.input[start..self.pos];
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("number out of range"))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

// ---------------------------------------------------------------------------
// JsonObject: the streaming writer
// ---------------------------------------------------------------------------

/// A compact JSON object writer: append typed fields, then
/// [`JsonObject::finish`]. This is the builder every `--format json` CLI
/// command and every server response uses; pair it with
/// [`JsonValue::parse`] to read the result back.
#[derive(Default)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pre-rendered JSON value (object, array, number…) —
    /// the caller guarantees `value` is valid JSON.
    pub fn raw(&mut self, key: &str, value: String) {
        self.fields.push(format!("{}:{value}", escape(key)));
    }

    /// Appends an unsigned integer field.
    pub fn usize(&mut self, key: &str, value: usize) {
        self.raw(key, value.to_string());
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.raw(key, value.to_string());
    }

    /// Appends a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) {
        self.raw(key, escape(value));
    }

    /// Renders the object.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

// ---------------------------------------------------------------------------
// The wire codec: Graph
// ---------------------------------------------------------------------------

/// Renders the full graph — node count plus every edge — as the upload
/// document the transport accepts: `{"nodes":N,"edges":[[u,v],…]}`
/// (0-based endpoints).
pub fn graph_to_json(g: &Graph) -> String {
    let edges: Vec<String> = g
        .edges()
        .iter()
        .map(|(u, v)| format!("[{u},{v}]"))
        .collect();
    let mut doc = JsonObject::new();
    doc.usize("nodes", g.num_nodes());
    doc.raw("edges", format!("[{}]", edges.join(",")));
    doc.finish()
}

/// Parses `{"nodes":N,"edges":[[u,v],…]}` back into a [`Graph`],
/// validating every endpoint — malformed input is an `Err`, never a
/// panic. `max_nodes` caps the allocation (`Graph` adjacency is
/// quadratic in `nodes`), so a transport can bound untrusted uploads.
pub fn graph_from_json(v: &JsonValue, max_nodes: usize) -> Result<Graph, String> {
    let nodes = v
        .get("nodes")
        .and_then(JsonValue::as_usize)
        .ok_or("graph needs a non-negative integer `nodes` field")?;
    if nodes > max_nodes || nodes > u32::MAX as usize {
        return Err(format!("graph too large: {nodes} nodes (cap {max_nodes})"));
    }
    let edges = v
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or("graph needs an `edges` array")?;
    let mut g = Graph::new(nodes);
    for e in edges {
        let pair = e.as_array().filter(|p| p.len() == 2);
        let (u, v) = match pair {
            Some(p) => match (p[0].as_usize(), p[1].as_usize()) {
                (Some(u), Some(v)) => (u, v),
                _ => return Err("edge endpoints must be non-negative integers".into()),
            },
            None => return Err("each edge must be a `[u,v]` pair".into()),
        };
        if u >= nodes || v >= nodes {
            return Err(format!("edge [{u},{v}] out of range for {nodes} nodes"));
        }
        if u == v {
            return Err(format!("self-loop [{u},{v}] is not a simple edge"));
        }
        g.add_edge(u as Node, v as Node);
    }
    Ok(g)
}

/// The two-field graph summary (`{"nodes":…,"edges":…}`) every CLI and
/// server document stamps next to its results.
pub fn graph_summary_json(g: &Graph) -> String {
    let mut doc = JsonObject::new();
    doc.usize("nodes", g.num_nodes());
    doc.usize("edges", g.num_edges());
    doc.finish()
}

// ---------------------------------------------------------------------------
// The wire codec: Query
// ---------------------------------------------------------------------------

/// Builds the triangulation backend named on the wire. Accepts both the
/// CLI spellings (`mcsm`, `lbtriang`, `lexm`, `mindegree`) and the
/// canonical [`Triangulator::name`] values the encoder emits (`MCS_M`,
/// `LB_TRIANG`, `LEX_M`, `ELIMINATION`, `COMPLETE_FILL`).
///
/// The wire identifies a backend **by name only**, so each name decodes
/// to that backend's default configuration: `LB_TRIANG` is min-fill
/// ordering and `ELIMINATION` is min-degree. A `Query` built with a
/// differently parameterized instance (`EliminationOrder::min_fill()`,
/// `LbTriang::with_order(..)`) or a custom `Triangulator` impl encodes
/// to its `name()` but decodes to the default above — or to an error if
/// the name is unknown here. Only the named set round-trips exactly;
/// richer backends need a `Task`-style typed encoding, not a name.
pub fn triangulator_from_name(name: &str) -> Result<Box<dyn Triangulator>, String> {
    Ok(match name {
        "mcsm" | "MCS_M" => Box::new(McsM),
        "lbtriang" | "LB_TRIANG" => Box::new(LbTriang::min_fill()),
        "lexm" | "LEX_M" => Box::new(LexM),
        "mindegree" | "ELIMINATION" => Box::new(EliminationOrder::min_degree()),
        "COMPLETE_FILL" => Box::new(CompleteFill),
        other => return Err(format!("unknown triangulator {other:?}")),
    })
}

fn task_json(task: &Task) -> String {
    let mut doc = JsonObject::new();
    match task {
        Task::Enumerate => doc.str("type", "enumerate"),
        Task::Stats => doc.str("type", "stats"),
        Task::BestK { k, cost } => {
            doc.str("type", "best_k");
            doc.usize("k", *k);
            doc.str("cost", cost.name());
        }
        Task::Decompose { mode } => {
            doc.str("type", "decompose");
            doc.str(
                "mode",
                match mode {
                    TdEnumerationMode::AllDecompositions => "all",
                    TdEnumerationMode::OnePerClass => "one_per_class",
                },
            );
        }
    }
    doc.finish()
}

fn task_from_json(v: &JsonValue) -> Result<Task, String> {
    let kind = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("task needs a string `type` field")?;
    Ok(match kind {
        "enumerate" => Task::Enumerate,
        "stats" => Task::Stats,
        "best_k" => {
            let k = v
                .get("k")
                .and_then(JsonValue::as_usize)
                .ok_or("best_k task needs a non-negative integer `k`")?;
            let cost = match v.get("cost").and_then(JsonValue::as_str) {
                None | Some("width") => CostMeasure::Width,
                Some("fill") => CostMeasure::Fill,
                Some(other) => return Err(format!("unknown cost {other:?} (width or fill)")),
            };
            Task::BestK { k, cost }
        }
        "decompose" => {
            let mode = match v.get("mode").and_then(JsonValue::as_str) {
                None | Some("all") => TdEnumerationMode::AllDecompositions,
                Some("one_per_class") => TdEnumerationMode::OnePerClass,
                Some(other) => {
                    return Err(format!("unknown mode {other:?} (all or one_per_class)"))
                }
            };
            Task::Decompose { mode }
        }
        other => Err(format!(
            "unknown task type {other:?} (enumerate, best_k, decompose or stats)"
        ))?,
    })
}

fn delivery_name(delivery: Delivery) -> &'static str {
    match delivery {
        Delivery::Unordered => "unordered",
        Delivery::Deterministic => "deterministic",
    }
}

/// Serializes a [`Query`] for the wire. Everything except the
/// process-local cancellation token goes: task, backend (by
/// [`Triangulator::name`] — see [`triangulator_from_name`] for the
/// names that round-trip; parameterized/custom backends collapse to
/// their name's default on decode), print mode, budget, and the
/// execution policy — emitted twice: as the authoritative `"policy"`
/// object, and as the legacy flat `delivery`/`threads`/`plan`/`ranked`
/// fields (the policy's pinned knobs) so pre-policy readers degrade to
/// an equivalent `Fixed` execution instead of failing.
pub fn query_to_json(q: &Query) -> String {
    let mut budget = JsonObject::new();
    match q.budget.max_results {
        Some(n) => budget.usize("max_results", n),
        None => budget.raw("max_results", "null".into()),
    }
    match q.budget.time_limit {
        Some(t) => budget.raw("time_limit_ms", t.as_millis().to_string()),
        None => budget.raw("time_limit_ms", "null".into()),
    }
    let mut policy = JsonObject::new();
    policy.str("mode", q.policy.name());
    if let ExecPolicy::Fixed {
        threads,
        planned,
        ranked,
        ..
    } = q.policy
    {
        policy.usize("threads", threads);
        policy.bool("plan", planned);
        policy.bool("ranked", ranked);
    }
    policy.str("delivery", delivery_name(q.policy.delivery()));
    let mut doc = JsonObject::new();
    doc.raw("task", task_json(&q.task));
    doc.str("triangulator", q.triangulator.name());
    doc.str(
        "mode",
        match q.mode {
            PrintMode::UponGeneration => "upon_generation",
            PrintMode::UponPop => "upon_pop",
        },
    );
    doc.raw("budget", budget.finish());
    doc.raw("policy", policy.finish());
    doc.str("delivery", delivery_name(q.policy.delivery()));
    doc.usize("threads", q.policy.threads());
    doc.bool("plan", q.policy.planned());
    doc.bool("ranked", q.policy.ranked());
    doc.bool("trace", q.trace);
    doc.finish()
}

/// Parses a wire query back into a typed [`Query`]. Only `task` is
/// required; every other field falls back to the [`Query::new`] default.
/// The returned query carries a fresh
/// [`CancelToken`](crate::query::CancelToken) — cancellation is a
/// process-local handle, not wire state.
pub fn query_from_json(v: &JsonValue) -> Result<Query, String> {
    if v.entries().is_none() {
        return Err("query must be a JSON object".into());
    }
    let task = task_from_json(v.get("task").ok_or("query needs a `task` object")?)?;
    let mut query = Query::new(task);
    if let Some(name) = v.get("triangulator") {
        let name = name.as_str().ok_or("`triangulator` must be a string")?;
        query = query.triangulator(triangulator_from_name(name)?);
    }
    if let Some(mode) = v.get("mode") {
        query = query.mode(match mode.as_str() {
            Some("upon_generation") => PrintMode::UponGeneration,
            Some("upon_pop") => PrintMode::UponPop,
            _ => return Err("`mode` must be upon_generation or upon_pop".into()),
        });
    }
    if let Some(budget) = v.get("budget") {
        if budget.entries().is_none() {
            return Err("`budget` must be an object".into());
        }
        let field = |key: &str| -> Result<Option<u64>, String> {
            match budget.get(key) {
                None => Ok(None),
                Some(JsonValue::Null) => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or(format!("`budget.{key}` must be a non-negative integer")),
            }
        };
        query = query.budget(EnumerationBudget {
            max_results: field("max_results")?.map(|n| n as usize),
            time_limit: field("time_limit_ms")?.map(Duration::from_millis),
        });
    }
    query = query.policy(policy_from_json(v)?);
    if let Some(trace) = v.get("trace") {
        query = query.traced(trace.as_bool().ok_or("`trace` must be a boolean")?);
    }
    Ok(query)
}

/// Decodes the execution policy of a wire query: the `"policy"` object
/// when present (authoritative), else the legacy flat
/// `delivery`/`threads`/`plan`/`ranked` fields — any of which pins an
/// [`ExecPolicy::Fixed`], exactly what those knobs meant before the
/// policy existed — else the [`ExecPolicy::Auto`] default.
fn policy_from_json(v: &JsonValue) -> Result<ExecPolicy, String> {
    let delivery_of = |field: &JsonValue, key: &str| -> Result<Delivery, String> {
        match field.as_str() {
            Some("unordered") => Ok(Delivery::Unordered),
            Some("deterministic") => Ok(Delivery::Deterministic),
            _ => Err(format!("`{key}` must be unordered or deterministic")),
        }
    };
    if let Some(policy) = v.get("policy") {
        if policy.entries().is_none() {
            return Err("`policy` must be an object".into());
        }
        let delivery = match policy.get("delivery") {
            Some(d) => delivery_of(d, "policy.delivery")?,
            None => Delivery::Unordered,
        };
        return match policy.get("mode").and_then(JsonValue::as_str) {
            Some("auto") => Ok(ExecPolicy::Auto { delivery }),
            Some("fixed") => {
                let threads = match policy.get("threads") {
                    Some(n) => n
                        .as_usize()
                        .ok_or("`policy.threads` must be a non-negative integer")?,
                    None => 0,
                };
                let planned = match policy.get("plan") {
                    Some(b) => b.as_bool().ok_or("`policy.plan` must be a boolean")?,
                    None => true,
                };
                let ranked = match policy.get("ranked") {
                    Some(b) => b.as_bool().ok_or("`policy.ranked` must be a boolean")?,
                    None => true,
                };
                Ok(ExecPolicy::Fixed {
                    threads,
                    planned,
                    ranked,
                    delivery,
                })
            }
            _ => Err("`policy.mode` must be auto or fixed".into()),
        };
    }
    // Legacy flat fields: presence of any knob means the caller wrote a
    // pre-policy query — honor it as a pinned Fixed execution.
    let delivery = v.get("delivery");
    let threads = v.get("threads");
    let plan = v.get("plan");
    let ranked = v.get("ranked");
    if delivery.is_none() && threads.is_none() && plan.is_none() && ranked.is_none() {
        return Ok(ExecPolicy::default());
    }
    Ok(ExecPolicy::Fixed {
        threads: match threads {
            Some(n) => n
                .as_usize()
                .ok_or("`threads` must be a non-negative integer")?,
            None => 0,
        },
        planned: match plan {
            Some(b) => b.as_bool().ok_or("`plan` must be a boolean")?,
            None => true,
        },
        ranked: match ranked {
            Some(b) => b.as_bool().ok_or("`ranked` must be a boolean")?,
            None => true,
        },
        delivery: match delivery {
            Some(d) => delivery_of(d, "delivery")?,
            None => Delivery::Unordered,
        },
    })
}

// ---------------------------------------------------------------------------
// The wire codec: QueryOutcome / response documents
// ---------------------------------------------------------------------------

/// Renders a [`QueryOutcome`] — counts, termination cause, quality
/// aggregates, `EnumMIS` counters — exactly the way every CLI
/// `--format json` command and every server response embeds it.
pub fn outcome_json(outcome: &QueryOutcome) -> String {
    let mut doc = JsonObject::new();
    doc.usize("produced", outcome.produced);
    doc.usize("scanned", outcome.scanned);
    doc.bool("completed", outcome.completed);
    doc.bool("cancelled", outcome.cancelled);
    doc.bool("replayed", outcome.replayed);
    doc.raw(
        "elapsed_ms",
        format!("{:.3}", outcome.elapsed.as_secs_f64() * 1e3),
    );
    // The dispatch the executor actually chose, one entry per atom —
    // present on every executed query (empty for outcomes built before
    // a stream was attached).
    let dispatch: Vec<String> = outcome
        .dispatch
        .iter()
        .map(|d| {
            let mut entry = JsonObject::new();
            entry.usize("index", d.index);
            entry.usize("nodes", d.nodes);
            entry.usize("threads", d.threads);
            entry.str("kind", d.kind.name());
            entry.finish()
        })
        .collect();
    doc.raw("dispatch", format!("[{}]", dispatch.join(",")));
    match outcome.quality() {
        Some(q) => {
            let mut quality = JsonObject::new();
            quality.usize("num_results", q.num_results);
            quality.usize("first_width", q.first_width);
            quality.usize("min_width", q.min_width);
            quality.usize("num_leq_first_width", q.num_leq_first_width);
            quality.raw(
                "width_improvement_pct",
                format!("{:.2}", q.width_improvement_pct),
            );
            quality.usize("first_fill", q.first_fill);
            quality.usize("min_fill", q.min_fill);
            quality.usize("num_leq_first_fill", q.num_leq_first_fill);
            quality.raw(
                "fill_improvement_pct",
                format!("{:.2}", q.fill_improvement_pct),
            );
            doc.raw("quality", quality.finish());
        }
        None => doc.raw("quality", "null".into()),
    }
    match outcome.enum_stats {
        Some(s) => {
            let mut stats = JsonObject::new();
            stats.usize("extend_calls", s.extend_calls);
            stats.usize("edge_queries", s.edge_queries);
            stats.usize("nodes_generated", s.nodes_generated);
            stats.usize("answers", s.answers);
            doc.raw("enum_stats", stats.finish());
        }
        None => doc.raw("enum_stats", "null".into()),
    }
    // Present only on traced queries, so untraced documents are
    // byte-for-byte what they were before tracing existed.
    if let Some(trace) = &outcome.trace {
        doc.raw("trace", trace_json(trace));
    }
    doc.finish()
}

/// Renders a query trace ([`QueryOutcome::trace`]) as a JSON span tree:
/// `{"name", "start_us", "duration_us", "attrs"?, "children"?}` per
/// span, children in start order. Parses back with [`JsonValue::parse`]
/// like everything else the stack emits.
pub fn trace_json(node: &TraceNode) -> String {
    let mut doc = JsonObject::new();
    doc.str("name", node.name);
    doc.raw("start_us", node.start_us.to_string());
    doc.raw("duration_us", node.duration_us.to_string());
    if !node.attrs.is_empty() {
        let mut attrs = JsonObject::new();
        for (k, v) in &node.attrs {
            attrs.str(k, v);
        }
        doc.raw("attrs", attrs.finish());
    }
    if !node.children.is_empty() {
        let children: Vec<String> = node.children.iter().map(trace_json).collect();
        doc.raw("children", format!("[{}]", children.join(",")));
    }
    doc.finish()
}

/// The one JSON document every enumeration surface emits: the command,
/// the graph summary, the pre-rendered result objects, and the outcome.
pub fn response_document(
    command: &str,
    g: &Graph,
    results: &[String],
    outcome: &QueryOutcome,
) -> String {
    let mut doc = JsonObject::new();
    doc.str("command", command);
    doc.raw("graph", graph_summary_json(g));
    doc.raw("results", format!("[{}]", results.join(",")));
    doc.raw("outcome", outcome_json(outcome));
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v =
            JsonValue::parse(r#" {"a": [1, -2.5, 1e3], "b": null, "c": [true, false]} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert!(v.get("b").unwrap().is_null());
        assert_eq!(
            v.get("c").unwrap().as_array().unwrap()[0].as_bool(),
            Some(true)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "line\nbreak\t\\",
            "π∀\u{1F600}",
            "\u{01}",
        ] {
            let doc = JsonValue::Str(s.to_string()).to_string();
            let back = JsonValue::parse(&doc).unwrap();
            assert_eq!(back.as_str(), Some(s), "{doc}");
        }
        // Explicit escape spellings parse too.
        let v = JsonValue::parse(r#""\u0041\ud83d\ude00\/""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}/"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "- 1",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\x01\"",
            "{1:2}",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
        // Nesting past the cap is an error, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn graph_codec_round_trips_and_validates() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let doc = graph_to_json(&g);
        let back = graph_from_json(&JsonValue::parse(&doc).unwrap(), 100).unwrap();
        assert_eq!(back.num_nodes(), 5);
        assert_eq!(back.edges(), g.edges());

        for bad in [
            r#"{"edges":[]}"#,
            r#"{"nodes":3}"#,
            r#"{"nodes":3,"edges":[[0,3]]}"#,
            r#"{"nodes":3,"edges":[[1,1]]}"#,
            r#"{"nodes":3,"edges":[[0]]}"#,
            r#"{"nodes":3,"edges":[["a",1]]}"#,
            r#"{"nodes":1000000000,"edges":[]}"#,
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(graph_from_json(&v, 1000).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn query_codec_round_trips_every_field() {
        let q = Query::best_k(7, CostMeasure::Fill)
            .triangulator(Box::new(LexM))
            .mode(PrintMode::UponPop)
            .budget(EnumerationBudget::results_or_time(
                42,
                Duration::from_millis(1500),
            ))
            .policy(ExecPolicy::Fixed {
                threads: 3,
                planned: false,
                ranked: false,
                delivery: Delivery::Deterministic,
            });
        let doc = query_to_json(&q);
        let back = query_from_json(&JsonValue::parse(&doc).unwrap()).unwrap();
        assert_eq!(back.task, q.task);
        assert_eq!(back.triangulator.name(), "LEX_M");
        assert_eq!(back.mode, q.mode);
        assert_eq!(back.budget.max_results, Some(42));
        assert_eq!(back.budget.time_limit, Some(Duration::from_millis(1500)));
        assert_eq!(back.policy, q.policy);
        // The legacy flat fields ride along for pre-policy readers.
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("threads").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("plan").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("delivery").unwrap().as_str(), Some("deterministic"));
    }

    #[test]
    fn policy_codec_auto_round_trips_and_flat_fields_pin_fixed() {
        // Auto (the default) survives the wire as Auto.
        let q = Query::enumerate();
        assert!(q.policy.is_auto());
        let back = query_from_json(&JsonValue::parse(&query_to_json(&q)).unwrap()).unwrap();
        assert_eq!(back.policy, ExecPolicy::default());
        // Auto under a deterministic contract keeps both.
        let q =
            Query::enumerate().policy(ExecPolicy::auto().with_delivery(Delivery::Deterministic));
        let back = query_from_json(&JsonValue::parse(&query_to_json(&q)).unwrap()).unwrap();
        assert_eq!(
            back.policy,
            ExecPolicy::Auto {
                delivery: Delivery::Deterministic
            }
        );
        // A pre-policy document (flat fields only) decodes to the Fixed
        // execution those knobs always meant.
        let flat = r#"{"task":{"type":"enumerate"},"threads":2,"ranked":false}"#;
        let q = query_from_json(&JsonValue::parse(flat).unwrap()).unwrap();
        assert_eq!(
            q.policy,
            ExecPolicy::Fixed {
                threads: 2,
                planned: true,
                ranked: false,
                delivery: Delivery::Unordered,
            }
        );
        // A policy object wins over contradictory flat fields.
        let both = r#"{"task":{"type":"enumerate"},"threads":7,"policy":{"mode":"auto"}}"#;
        let q = query_from_json(&JsonValue::parse(both).unwrap()).unwrap();
        assert_eq!(q.policy, ExecPolicy::default());
        // Malformed policies are rejected with their own errors.
        for bad in [
            r#"{"task":{"type":"enumerate"},"policy":"auto"}"#,
            r#"{"task":{"type":"enumerate"},"policy":{"mode":"magic"}}"#,
            r#"{"task":{"type":"enumerate"},"policy":{"mode":"fixed","threads":-1}}"#,
            r#"{"task":{"type":"enumerate"},"policy":{"mode":"auto","delivery":"sorted"}}"#,
            r#"{"task":{"type":"enumerate"},"policy":{"mode":"fixed","plan":"yes"}}"#,
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(query_from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn named_backends_decode_and_parameterized_ones_collapse_to_defaults() {
        // Every built-in name() value decodes.
        for backend in [
            "MCS_M",
            "LB_TRIANG",
            "LEX_M",
            "ELIMINATION",
            "COMPLETE_FILL",
        ] {
            let t = triangulator_from_name(backend).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(t.name(), backend);
        }
        // The wire is name-only: a non-default EliminationOrder encodes
        // to "ELIMINATION" and decodes to that name's default (min
        // degree) — the documented collapse, pinned here so a future
        // typed encoding changes this test consciously.
        let q = Query::enumerate().triangulator(Box::new(EliminationOrder::min_fill()));
        let back = query_from_json(&JsonValue::parse(&query_to_json(&q)).unwrap()).unwrap();
        assert_eq!(back.triangulator.name(), "ELIMINATION");
    }

    #[test]
    fn query_decode_defaults_and_rejects_unknown_tasks() {
        let q = query_from_json(&JsonValue::parse(r#"{"task":{"type":"enumerate"}}"#).unwrap())
            .unwrap();
        assert_eq!(q.task, Task::Enumerate);
        assert_eq!(q.triangulator.name(), "MCS_M");
        assert!(
            q.policy.is_auto(),
            "a knob-free wire query gets the Auto default"
        );
        assert!(q.policy.planned());
        assert!(q.policy.ranked(), "ranked defaults on for wire queries too");
        assert_eq!(q.policy.threads(), 0);

        for bad in [
            r#"{"task":{"type":"mine_bitcoin"}}"#,
            r#"{"task":{"type":"best_k","k":-1}}"#,
            r#"{"task":{"type":"best_k","k":1,"cost":"weight"}}"#,
            r#"{"task":{"type":"decompose","mode":"some"}}"#,
            r#"{"task":"enumerate"}"#,
            r#"{}"#,
            r#"{"task":{"type":"enumerate"},"triangulator":"magic"}"#,
            r#"{"task":{"type":"enumerate"},"threads":-2}"#,
            r#"{"task":{"type":"enumerate"},"budget":{"max_results":1.5}}"#,
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(query_from_json(&v).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn outcome_and_response_documents_parse_back() {
        let g = Graph::cycle(6);
        let mut response = Query::stats().run_local(&g);
        response.by_ref().for_each(drop);
        let outcome = response.outcome();
        let doc = response_document("enumerate", &g, &["{\"width\":2}".into()], &outcome);
        let v = JsonValue::parse(&doc).expect("CLI documents must parse");
        assert_eq!(v.get("command").unwrap().as_str(), Some("enumerate"));
        assert_eq!(
            v.get("outcome").unwrap().get("scanned").unwrap().as_usize(),
            Some(14)
        );
        assert!(v
            .get("outcome")
            .unwrap()
            .get("quality")
            .unwrap()
            .get("min_width")
            .is_some());
    }
}

//! The one front door: a typed [`Query`] describing **what** to compute,
//! and a [`Response`] handle describing **how it went**.
//!
//! Every enumeration workload — streaming `MinTri(g)`, budgeted best-`k`
//! selection, proper tree decompositions, instrumented anytime runs — is
//! a [`Task`] inside one request type, and every execution path — the
//! zero-setup sequential iterator ([`Query::run_local`]), the engine's
//! warm sessions, parallel drivers and completed-answer replay
//! (`mintri_engine::Engine::run`), and any future transport serializing
//! queries over the wire — answers with the same [`Response`]: a blocking
//! result stream plus [`Response::cancel`], [`Response::outcome`]
//! (budget, per-result quality, `EnumMIS` counters) and
//! [`Response::is_replay`].
//!
//! ```
//! use mintri_core::query::{CostMeasure, Query};
//! use mintri_core::EnumerationBudget;
//! use mintri_graph::Graph;
//!
//! let g = Graph::cycle(6);
//! // What to compute…
//! let query = Query::best_k(3, CostMeasure::Fill).budget(EnumerationBudget::unlimited());
//! // …and how it went.
//! let mut response = query.run_local(&g);
//! let best = response.triangulations();
//! assert_eq!(best.len(), 3);
//! let outcome = response.outcome();
//! assert!(outcome.completed);
//! // Best-k rides the ranked gear by default: output-sensitive, so only
//! // ~k of C6's Catalan(4) = 14 triangulations are ever materialized.
//! // `Query::ranked(false)` restores the exhaustive scan (scanned = 14).
//! assert_eq!(outcome.scanned, 3);
//! ```
//!
//! Execution layers implement [`TriangulationStream`] and hand it to
//! [`Response::over_stream`]; all task logic (budgets, top-`k` selection,
//! decomposition expansion, quality records, cancellation) lives here,
//! once.

/// The planning layer lives in [`crate::plan`]; re-exported here because
/// a [`Plan`] is part of the query vocabulary (every executor routes a
/// query through one).
pub use crate::plan::{AtomStream, ComposedStream, Plan, PlannedAtom};
use crate::ranked::TopK;
use crate::{
    EnumerationBudget, MinimalTriangulationsEnumerator, QualityStats, ResultRecord,
    TdEnumerationMode,
};
use mintri_chordal::CliqueForest;
use mintri_graph::Graph;
use mintri_sgr::{EnumMisStats, PrintMode};
use mintri_telemetry::{SpanHandle, TraceBuilder, TraceNode};
use mintri_treedecomp::{proper_decompositions_of_chordal, TreeDecomposition};
use mintri_triangulate::{McsM, Triangulation, Triangulator};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a [`Query`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Stream every minimal triangulation of the graph.
    Enumerate,
    /// Scan the enumeration (under the query budget) and keep the `k`
    /// best triangulations by `cost`, emitted in ascending cost order.
    BestK {
        /// How many results to keep.
        k: usize,
        /// The ranking measure.
        cost: CostMeasure,
    },
    /// Stream proper tree decompositions (Section 5 reduction), expanded
    /// from each minimal triangulation.
    Decompose {
        /// All decompositions, or one per bag-equivalence class.
        mode: TdEnumerationMode,
    },
    /// Drive the enumeration (under the query budget) and emit one
    /// [`ResultRecord`] per triangulation instead of the triangulations
    /// themselves — the instrumented "anytime" run of the paper's
    /// experimental study. The aggregates land in [`QueryOutcome`].
    Stats,
}

impl Task {
    /// The task's wire name (`"enumerate"` / `"best_k"` / `"decompose"`
    /// / `"stats"`) — the `type` tag of the JSON codec, also used as the
    /// `task` attribute on trace spans.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Enumerate => "enumerate",
            Task::BestK { .. } => "best_k",
            Task::Decompose { .. } => "decompose",
            Task::Stats => "stats",
        }
    }
}

/// A built-in, serializable ranking measure for [`Task::BestK`].
///
/// (Arbitrary closures stay available through
/// [`best_k_of_stream`](crate::best_k_of_stream) over a streaming
/// response; a typed query keeps the measure wire-encodable.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostMeasure {
    /// Treewidth of the triangulation (max clique − 1). Smaller is better.
    #[default]
    Width,
    /// Number of fill edges. Smaller is better.
    Fill,
}

impl CostMeasure {
    /// Evaluates the measure on one triangulation.
    pub fn evaluate(&self, t: &Triangulation) -> usize {
        match self {
            CostMeasure::Width => t.width(),
            CostMeasure::Fill => t.fill_count(),
        }
    }

    /// The measure's conventional name (`"width"` / `"fill"`).
    pub fn name(&self) -> &'static str {
        match self {
            CostMeasure::Width => "width",
            CostMeasure::Fill => "fill",
        }
    }
}

/// When and in what order a query's results reach the consumer.
///
/// Sequential execution ([`Query::run_local`], or an engine resolved to
/// one thread) always produces the sequential order; the contract below
/// is what a *parallel* executor must honor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Delivery {
    /// Stream each answer the moment any worker produces it. Fastest;
    /// the answer *set* equals the sequential enumerator's, the order is
    /// a race.
    #[default]
    Unordered,
    /// The output order is identical to the sequential enumerator's
    /// (`mintri_core::MinimalTriangulationsEnumerator`) under the query's
    /// [`PrintMode`]. Use for tests, golden files and distributed work
    /// splitting.
    Deterministic,
}

/// **How** a query executes: the one typed knob consolidating what used
/// to be four scattered `Query` fields (`threads`, `planned`, `ranked`,
/// `delivery`).
///
/// [`ExecPolicy::Auto`] — the default — lets the executor consult its
/// learned per-atom cost profiles (`mintri_engine::profile`) to choose
/// the thread split, the parallel-vs-sequential threshold and the cursor
/// order of the product composer. [`ExecPolicy::Fixed`] pins every knob
/// to an explicit value — bit-for-bit the pre-policy behavior, and what
/// the deprecated builder methods ([`Query::threads`],
/// [`Query::planned`], [`Query::ranked`], [`Query::delivery`]) construct.
///
/// The invariant both variants honor: a policy may change *scheduling*
/// — thread placement, dispatch choice, cursor order — never *answers*.
/// Under [`Delivery::Unordered`] the result **set** is identical either
/// way; under [`Delivery::Deterministic`] the result **sequence** is
/// bit-for-bit identical (adaptive cursor reordering is disabled there,
/// because the composed emission order is part of the contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Profile-driven execution (the default). The executor picks
    /// threads, dispatch and cursor order from its learned per-atom
    /// statistics; with no profile yet (a cold engine, or
    /// [`Query::run_local`]) every choice falls back to exactly the
    /// [`ExecPolicy::fixed`] defaults.
    Auto {
        /// The result-ordering contract adaptive execution must honor.
        delivery: Delivery,
    },
    /// Every knob pinned — today's behavior, bit for bit.
    Fixed {
        /// Worker threads: `0` lets the executor decide, `1` forces
        /// sequential, `n > 1` requests a parallel run.
        threads: usize,
        /// Route through the planning layer (atom decomposition +
        /// product composition).
        planned: bool,
        /// Route [`Task::BestK`] through the ranked gear.
        ranked: bool,
        /// The result-ordering contract.
        delivery: Delivery,
    },
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::Auto {
            delivery: Delivery::Unordered,
        }
    }
}

impl ExecPolicy {
    /// The profile-driven policy under the default (unordered) contract.
    pub fn auto() -> Self {
        Self::default()
    }

    /// A fully pinned policy with the historical defaults: executor-chosen
    /// thread count, planning on, ranked best-k on, unordered delivery.
    pub fn fixed() -> Self {
        ExecPolicy::Fixed {
            threads: 0,
            planned: true,
            ranked: true,
            delivery: Delivery::Unordered,
        }
    }

    /// `true` for [`ExecPolicy::Auto`].
    pub fn is_auto(&self) -> bool {
        matches!(self, ExecPolicy::Auto { .. })
    }

    /// The policy's wire name (`"auto"` / `"fixed"`).
    pub fn name(&self) -> &'static str {
        match self {
            ExecPolicy::Auto { .. } => "auto",
            ExecPolicy::Fixed { .. } => "fixed",
        }
    }

    /// The effective worker-thread request (`0` = executor decides; what
    /// `Auto` starts from before profiles adjust the split).
    pub fn threads(&self) -> usize {
        match self {
            ExecPolicy::Auto { .. } => 0,
            ExecPolicy::Fixed { threads, .. } => *threads,
        }
    }

    /// Whether the planning layer runs (`Auto` always plans — the plan
    /// is what the profiles are keyed on).
    pub fn planned(&self) -> bool {
        match self {
            ExecPolicy::Auto { .. } => true,
            ExecPolicy::Fixed { planned, .. } => *planned,
        }
    }

    /// Whether [`Task::BestK`] rides the ranked gear.
    pub fn ranked(&self) -> bool {
        match self {
            ExecPolicy::Auto { .. } => true,
            ExecPolicy::Fixed { ranked, .. } => *ranked,
        }
    }

    /// The result-ordering contract.
    pub fn delivery(&self) -> Delivery {
        match self {
            ExecPolicy::Auto { delivery } | ExecPolicy::Fixed { delivery, .. } => *delivery,
        }
    }

    /// This policy with every knob pinned: `Auto` collapses to the
    /// `Fixed` defaults it cold-starts from (preserving its delivery);
    /// `Fixed` is returned unchanged.
    pub fn pinned(self) -> Self {
        ExecPolicy::Fixed {
            threads: self.threads(),
            planned: self.planned(),
            ranked: self.ranked(),
            delivery: self.delivery(),
        }
    }

    /// Pins the policy and sets the thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        match self.pinned() {
            ExecPolicy::Fixed {
                planned,
                ranked,
                delivery,
                ..
            } => ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                delivery,
            },
            auto => auto,
        }
    }

    /// Pins the policy and sets the planning knob.
    pub fn with_planned(self, planned: bool) -> Self {
        match self.pinned() {
            ExecPolicy::Fixed {
                threads,
                ranked,
                delivery,
                ..
            } => ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                delivery,
            },
            auto => auto,
        }
    }

    /// Pins the policy and sets the ranked knob.
    pub fn with_ranked(self, ranked: bool) -> Self {
        match self.pinned() {
            ExecPolicy::Fixed {
                threads,
                planned,
                delivery,
                ..
            } => ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                delivery,
            },
            auto => auto,
        }
    }

    /// Sets the delivery contract, preserving the variant (an `Auto`
    /// policy stays adaptive — the contract is input to its choices, not
    /// one of them).
    pub fn with_delivery(self, delivery: Delivery) -> Self {
        match self {
            ExecPolicy::Auto { .. } => ExecPolicy::Auto { delivery },
            ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                ..
            } => ExecPolicy::Fixed {
                threads,
                planned,
                ranked,
                delivery,
            },
        }
    }
}

/// How one per-atom stream was actually served — the dispatch the
/// executor *chose*, reported per atom in [`QueryOutcome::dispatch`] so
/// untraced queries can see it too (previously only trace spans carried
/// it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchKind {
    /// Served from a completed in-RAM answer list — zero `Extend` calls.
    Replay,
    /// Re-interned from a persistent-store snapshot, then replayed.
    Hydrate,
    /// Live run on the executor's parallel worker pool.
    Parallel,
    /// Live run on the plain sequential iterator.
    Sequential,
    /// Live run feeding a ranked (ascending-cost) frontier.
    Ranked,
}

impl DispatchKind {
    /// The dispatch's conventional name — the same vocabulary the trace
    /// spans' `dispatch` attribute uses.
    pub fn name(&self) -> &'static str {
        match self {
            DispatchKind::Replay => "replay",
            DispatchKind::Hydrate => "hydrate",
            DispatchKind::Parallel => "parallel",
            DispatchKind::Sequential => "sequential",
            DispatchKind::Ranked => "ranked",
        }
    }
}

/// The per-atom dispatch record of one executed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomDispatch {
    /// The atom's index in the executed (possibly reordered) cursor
    /// order; `0` for an unplanned whole-graph run.
    pub index: usize,
    /// Nodes in the atom's subgraph.
    pub nodes: usize,
    /// Worker threads granted to this atom's stream.
    pub threads: usize,
    /// How the stream was served.
    pub kind: DispatchKind,
}

/// A cloneable cancellation handle shared between a [`Response`] and any
/// thread that wants to stop it mid-stream.
///
/// [`CancelToken::cancel`] flips the flag and fires every registered
/// hook; execution layers register hooks that wake blocked consumers
/// (e.g. aborting a parallel worker pool so a `recv()` returns). A token
/// can be attached to a query up front ([`Query::cancel_token`]) so the
/// controller never needs the `Response` itself.
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Default)]
struct CancelInner {
    flag: AtomicBool,
    hooks: Mutex<HookRegistry>,
}

#[derive(Default)]
struct HookRegistry {
    next_id: u64,
    hooks: Vec<(u64, Box<dyn Fn() + Send + Sync>)>,
}

/// Keeps one [`CancelToken::on_cancel`] registration alive; dropping the
/// guard deregisters the hook, so a long-lived token reused across many
/// queries does not accumulate closures (and the run state they capture)
/// from runs that already ended.
#[must_use = "dropping the guard deregisters the cancel hook"]
pub struct CancelHookGuard {
    inner: Arc<CancelInner>,
    id: u64,
}

impl Drop for CancelHookGuard {
    fn drop(&mut self) {
        let mut registry = self.inner.hooks.lock().unwrap();
        registry.hooks.retain(|(id, _)| *id != self.id);
    }
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation: the response ends its stream at the next
    /// emission boundary (parallel executors abort their workers).
    /// Idempotent.
    pub fn cancel(&self) {
        // Flag and hooks move together under the registry lock, so a
        // concurrent `on_cancel` either sees the flag (and fires the new
        // hook itself) or registers in time for this iteration.
        let registry = self.inner.hooks.lock().unwrap();
        self.inner.flag.store(true, Ordering::SeqCst);
        for (_, hook) in registry.hooks.iter() {
            hook();
        }
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.flag.load(Ordering::SeqCst)
    }

    /// Registers a hook fired on cancellation (immediately, if the token
    /// is already cancelled). Execution layers use this to tear down
    /// worker pools; hooks must be idempotent, non-blocking, and must
    /// not call back into this token (the registry lock is held while
    /// hooks run). The hook stays registered until the returned guard is
    /// dropped.
    pub fn on_cancel(&self, hook: impl Fn() + Send + Sync + 'static) -> CancelHookGuard {
        let mut registry = self.inner.hooks.lock().unwrap();
        if self.is_cancelled() {
            hook();
        }
        let id = registry.next_id;
        registry.next_id += 1;
        registry.hooks.push((id, Box::new(hook)));
        CancelHookGuard {
            inner: Arc::clone(&self.inner),
            id,
        }
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// One streamed result of a [`Response`]; which variant arrives is
/// determined by the query's [`Task`].
#[derive(Debug, Clone)]
pub enum QueryItem {
    /// A minimal triangulation ([`Task::Enumerate`], [`Task::BestK`]).
    Triangulation(Triangulation),
    /// A proper tree decomposition ([`Task::Decompose`]).
    Decomposition(TreeDecomposition),
    /// A per-result measurement ([`Task::Stats`]).
    Record(ResultRecord),
}

impl QueryItem {
    /// The triangulation, if this item is one.
    pub fn into_triangulation(self) -> Option<Triangulation> {
        match self {
            QueryItem::Triangulation(t) => Some(t),
            _ => None,
        }
    }

    /// The tree decomposition, if this item is one.
    pub fn into_decomposition(self) -> Option<TreeDecomposition> {
        match self {
            QueryItem::Decomposition(d) => Some(d),
            _ => None,
        }
    }

    /// The measurement record, if this item is one.
    pub fn as_record(&self) -> Option<ResultRecord> {
        match self {
            QueryItem::Record(r) => Some(*r),
            _ => None,
        }
    }
}

/// How a query's execution went: counts, per-result quality records,
/// termination cause and (when the executor replays the sequential
/// schedule) the `EnumMIS` counters.
#[derive(Debug, Clone, Default)]
pub struct QueryOutcome {
    /// One record per triangulation scanned, in scan order — populated
    /// only by [`Task::Stats`], the instrumented scan. The other tasks
    /// stream without per-result instrumentation: no quality
    /// measurements are computed and nothing accumulates, so an
    /// exponential-size enumeration stays O(1) memory.
    pub records: Vec<ResultRecord>,
    /// Items emitted to the consumer.
    pub produced: usize,
    /// Triangulations pulled from the underlying enumeration.
    pub scanned: usize,
    /// `true` iff the enumeration genuinely finished — the scan covered
    /// all of `MinTri(g)` — rather than the budget tripping, the
    /// consumer stopping early, or a cancellation.
    pub completed: bool,
    /// `true` iff the stream ended because [`Response::cancel`] (or the
    /// query's [`CancelToken`]) fired.
    pub cancelled: bool,
    /// `true` iff the executor served a previously completed enumeration
    /// from cache, with zero `Extend` calls.
    pub replayed: bool,
    /// Wall-clock time from query start to the end of the stream (or to
    /// the snapshot, while streaming).
    pub elapsed: Duration,
    /// `EnumMIS` counters of the run — present when the executor ran the
    /// sequential schedule (locally, or under [`Delivery::Deterministic`]);
    /// absent for unordered parallel runs and cache replays.
    pub enum_stats: Option<EnumMisStats>,
    /// The dispatch the executor actually chose, one entry per atom
    /// stream (or one entry for an unplanned whole-graph run) — replay,
    /// hydrate, parallel, sequential or ranked, with the thread grant.
    /// Present for every query, traced or not.
    pub dispatch: Vec<AtomDispatch>,
    /// The query's span tree — present only when the query was traced
    /// ([`Query::traced`]): plan decomposition, per-atom stream setup and
    /// dispatch, first-result delay and drain, with timings in
    /// microseconds. A snapshot; while the stream is still running, open
    /// spans show their duration so far.
    pub trace: Option<Arc<TraceNode>>,
}

impl QueryOutcome {
    /// Table 1 / Table 2 quality statistics over the scan records
    /// (`None` unless the task was [`Task::Stats`]).
    pub fn quality(&self) -> Option<QualityStats> {
        QualityStats::from_records(&self.records)
    }

    /// Mean delay between consecutive scanned results (records required,
    /// so [`Task::Stats`] only).
    pub fn average_delay(&self) -> Option<Duration> {
        if self.records.is_empty() {
            return None;
        }
        Some(self.elapsed / self.records.len() as u32)
    }
}

/// A stream of minimal triangulations an executor hands to
/// [`Response::over_stream`] — the single integration point between the
/// query layer and any execution backend (sequential iterator, warm
/// engine sessions, parallel drivers, replayed caches, remote
/// transports).
pub trait TriangulationStream {
    /// The next triangulation, or `None` when the stream ends.
    fn next_tri(&mut self) -> Option<Triangulation>;

    /// After [`TriangulationStream::next_tri`] returned `None`: did the
    /// stream end because the enumeration genuinely finished (as opposed
    /// to an abort)?
    fn finished(&self) -> bool;

    /// `EnumMIS` counters, when this stream runs the sequential schedule.
    fn enum_stats(&self) -> Option<EnumMisStats> {
        None
    }

    /// `true` when this stream replays a previously completed
    /// enumeration without recomputation.
    fn is_replay(&self) -> bool {
        false
    }
}

/// A [`TriangulationStream`] decorator that charges the wrapped stream's
/// work to a trace span: times the *first* pull (the stream's own
/// first-result delay), counts every result, and stamps both onto the
/// span (`first_result_us`, `results`) when the stream ends or is
/// dropped. The span stays open from stream setup to exhaustion, so its
/// duration is the full drain wall time.
///
/// Execution layers wrap each per-atom stream in one of these when the
/// query is traced — untraced queries never construct one, so the hot
/// path pays nothing. Deliberately, only the first pull reads the
/// clock: per-item `Instant::now()` calls cost more than producing a
/// result on small atoms and would bust the tracing-overhead gate
/// (`bench_check --telemetry`); every later pull is one counter bump.
pub struct TracedStream<'a> {
    inner: Box<dyn TriangulationStream + 'a>,
    span: SpanHandle,
    produced: u64,
    first_us: Option<u64>,
    closed: bool,
}

impl<'a> TracedStream<'a> {
    /// Wraps `inner`, charging its work to `span` (opened by the caller,
    /// typically an `atom` child of the query span).
    pub fn new(inner: Box<dyn TriangulationStream + 'a>, span: SpanHandle) -> Self {
        TracedStream {
            inner,
            span,
            produced: 0,
            first_us: None,
            closed: false,
        }
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.span.attr("results", self.produced.to_string());
            if let Some(us) = self.first_us {
                self.span.attr("first_result_us", us.to_string());
            }
            self.span.finish();
        }
    }
}

impl TriangulationStream for TracedStream<'_> {
    fn next_tri(&mut self) -> Option<Triangulation> {
        let tri = if self.first_us.is_none() {
            let begin = Instant::now();
            let tri = self.inner.next_tri();
            self.first_us = Some(begin.elapsed().as_micros().min(u64::MAX as u128) as u64);
            tri
        } else {
            self.inner.next_tri()
        };
        match tri {
            Some(tri) => {
                self.produced += 1;
                Some(tri)
            }
            None => {
                self.close();
                None
            }
        }
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        self.inner.enum_stats()
    }

    fn is_replay(&self) -> bool {
        self.inner.is_replay()
    }
}

impl Drop for TracedStream<'_> {
    fn drop(&mut self) {
        // Budget-truncated streams never see the final `None`; stamp the
        // attrs here so partial runs still trace.
        self.close();
    }
}

/// The zero-setup sequential stream behind [`Query::run_local`].
struct SequentialStream<'g>(MinimalTriangulationsEnumerator<'g>);

impl TriangulationStream for SequentialStream<'_> {
    fn next_tri(&mut self) -> Option<Triangulation> {
        self.0.next()
    }

    fn finished(&self) -> bool {
        // The sequential iterator only ends when complete.
        true
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        Some(self.0.enum_stats())
    }
}

/// A typed request: **what** to compute ([`Task`]), over which
/// triangulation backend, under which budget, with which delivery and
/// parallelism. Build one with the task constructors
/// ([`Query::enumerate`], [`Query::best_k`], [`Query::decompose`],
/// [`Query::stats`]), refine it with the builder methods, then execute it
/// with [`Query::run_local`] (sequential, zero setup) or
/// `mintri_engine::Engine::run` (warm sessions, parallel drivers, answer
/// replay).
///
/// The fields are public on purpose: a query is plain data — the request
/// type a batch or HTTP transport serializes — and execution layers
/// destructure it.
pub struct Query {
    /// What to compute.
    pub task: Task,
    /// The triangulation backend `Extend` runs (default MCS-M).
    pub triangulator: Box<dyn Triangulator>,
    /// The printing discipline of the sequential schedule (default
    /// [`PrintMode::UponGeneration`]); meaningful for sequential and
    /// [`Delivery::Deterministic`] execution.
    pub mode: PrintMode,
    /// Stopping condition (default unlimited). For [`Task::BestK`] and
    /// [`Task::Stats`] the budget bounds the *scan*; for
    /// [`Task::Enumerate`] and [`Task::Decompose`] it bounds the emitted
    /// results.
    pub budget: EnumerationBudget,
    /// **How** to execute (default [`ExecPolicy::Auto`]): the one typed
    /// knob covering what used to be the `threads` / `plan` / `ranked` /
    /// `delivery` fields. [`ExecPolicy::Fixed`] pins them all —
    /// bit-for-bit the historical behavior; `Auto` lets a profiled
    /// executor choose the thread split, dispatch threshold and cursor
    /// order (never the answers). The deprecated builder methods remain
    /// as thin adapters that pin the policy.
    pub policy: ExecPolicy,
    /// Collect a per-query span trace (default `false`): plan
    /// decomposition, per-atom stream setup, dispatch choice,
    /// first-result delay and drain, delivered as
    /// [`QueryOutcome::trace`]. Tracing costs two clock reads per pulled
    /// result plus one brief lock per span; untraced queries pay
    /// nothing.
    pub trace: bool,
    /// Cancellation handle; clone it before running to keep a controller.
    pub cancel: CancelToken,
}

impl Query {
    /// A query with the given task and all defaults.
    pub fn new(task: Task) -> Self {
        Query {
            task,
            triangulator: Box::new(McsM),
            mode: PrintMode::UponGeneration,
            budget: EnumerationBudget::unlimited(),
            policy: ExecPolicy::default(),
            trace: false,
            cancel: CancelToken::new(),
        }
    }

    /// Stream every minimal triangulation.
    pub fn enumerate() -> Self {
        Self::new(Task::Enumerate)
    }

    /// The `k` best triangulations under `cost`.
    pub fn best_k(k: usize, cost: CostMeasure) -> Self {
        Self::new(Task::BestK { k, cost })
    }

    /// Stream proper tree decompositions.
    pub fn decompose(mode: TdEnumerationMode) -> Self {
        Self::new(Task::Decompose { mode })
    }

    /// Instrumented anytime run: per-result records plus aggregates.
    pub fn stats() -> Self {
        Self::new(Task::Stats)
    }

    /// Sets the triangulation backend.
    pub fn triangulator(mut self, t: Box<dyn Triangulator>) -> Self {
        self.triangulator = t;
        self
    }

    /// Sets the print mode.
    pub fn mode(mut self, mode: PrintMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the budget.
    pub fn budget(mut self, budget: EnumerationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the execution policy (see [`Query::policy`]).
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the delivery contract. **Deprecated adapter**: pins the
    /// policy to [`ExecPolicy::Fixed`] with this delivery — bit-for-bit
    /// the pre-policy behavior of the old `delivery` field.
    #[deprecated(
        since = "0.10.0",
        note = "use Query::policy(ExecPolicy::fixed().with_delivery(…)) — or keep Auto and set \
                the contract with ExecPolicy::auto().with_delivery(…)"
    )]
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.policy = self.policy.pinned().with_delivery(delivery);
        self
    }

    /// Sets the worker-thread request. **Deprecated adapter**: pins the
    /// policy to [`ExecPolicy::Fixed`] with this thread count.
    #[deprecated(
        since = "0.10.0",
        note = "use Query::policy(ExecPolicy::fixed().with_threads(…))"
    )]
    pub fn threads(mut self, threads: usize) -> Self {
        self.policy = self.policy.with_threads(threads);
        self
    }

    /// Enables or disables the planning layer. **Deprecated adapter**:
    /// pins the policy to [`ExecPolicy::Fixed`] with this knob.
    #[deprecated(
        since = "0.10.0",
        note = "use Query::policy(ExecPolicy::fixed().with_planned(…))"
    )]
    pub fn planned(mut self, plan: bool) -> Self {
        self.policy = self.policy.with_planned(plan);
        self
    }

    /// Enables or disables the ranked best-k gear. **Deprecated
    /// adapter**: pins the policy to [`ExecPolicy::Fixed`] with this
    /// knob.
    #[deprecated(
        since = "0.10.0",
        note = "use Query::policy(ExecPolicy::fixed().with_ranked(…))"
    )]
    pub fn ranked(mut self, ranked: bool) -> Self {
        self.policy = self.policy.with_ranked(ranked);
        self
    }

    /// Enables or disables span tracing (see [`Query::trace`]).
    pub fn traced(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches an external cancellation token.
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Executes the query on the calling thread against a borrowed graph
    /// — the zero-setup path for scripts and tests. Always sequential
    /// (the policy's thread and delivery knobs are moot here; sequential
    /// output *is* the deterministic order); no warm state is kept. For
    /// repeated or parallel traffic, hand the query to
    /// `mintri_engine::Engine::run` instead.
    ///
    /// Unless the policy's planning knob is off, the graph is first decomposed into
    /// atoms ([`Plan`]): each non-trivial atom enumerates on its own
    /// (much smaller) subgraph and the composed product streams out.
    /// Output order is the plan's odometer order — deterministic, and
    /// identical to what an engine produces for the same query under
    /// [`Delivery::Deterministic`] at any thread count.
    pub fn run_local(self, g: &Graph) -> Response<'_> {
        let Query {
            task,
            triangulator,
            mode,
            budget,
            cancel,
            policy,
            trace,
            ..
        } = self;
        let plan = policy.planned();
        // Best-k rides the ranked gear unless the escape hatch is pulled.
        let ranked = policy.ranked() && matches!(task, Task::BestK { .. });
        let ranked_measure = match task {
            Task::BestK { cost, .. } if ranked => Some(cost),
            _ => None,
        };
        let tracer = trace.then(TraceBuilder::new);
        let query_span = tracer.as_ref().map(|t| {
            let span = t.root_span("query");
            span.attr("task", task.name());
            span.attr("dispatch", "local");
            span
        });
        if plan {
            let plan_span = query_span.as_ref().map(|q| q.child("plan"));
            let plan = Plan::of(g);
            if let Some(span) = &plan_span {
                span.attr("atoms", plan.atoms.len().to_string());
                span.attr("unreduced", plan.is_unreduced().to_string());
                span.finish();
            }
            if !plan.is_unreduced() {
                // One entry per planned atom: always sequential here;
                // the ranked gear re-labels the live streams it drives.
                let dispatch: Vec<AtomDispatch> = plan
                    .atoms
                    .iter()
                    .enumerate()
                    .map(|(index, atom)| AtomDispatch {
                        index,
                        nodes: atom.graph.num_nodes(),
                        threads: 1,
                        kind: if ranked {
                            DispatchKind::Ranked
                        } else {
                            DispatchKind::Sequential
                        },
                    })
                    .collect();
                let response = match ranked_measure {
                    Some(measure) => {
                        let stream = plan.into_ranked_stream(
                            g,
                            triangulator,
                            mode,
                            measure,
                            query_span.as_ref(),
                            None,
                        );
                        Response::over_ranked_stream(task, budget, cancel, Box::new(stream))
                    }
                    None => {
                        let stream = plan.into_traced_sequential_stream(
                            g,
                            triangulator,
                            mode,
                            query_span.as_ref(),
                        );
                        Response::over_stream(task, budget, cancel, Box::new(stream))
                    }
                }
                .with_dispatch(dispatch);
                return match (tracer, query_span) {
                    (Some(t), Some(s)) => response.with_trace(t, s),
                    _ => response,
                };
            }
        }
        let stream = SequentialStream(MinimalTriangulationsEnumerator::with_config(
            g,
            triangulator,
            mode,
        ));
        let stream: Box<dyn TriangulationStream + '_> = match query_span.as_ref() {
            Some(q) => {
                let span = q.child("atom");
                span.attr("index", "0");
                span.attr("nodes", g.num_nodes().to_string());
                span.attr("dispatch", if ranked { "ranked" } else { "sequential" });
                Box::new(TracedStream::new(Box::new(stream), span))
            }
            None => Box::new(stream),
        };
        let dispatch = vec![AtomDispatch {
            index: 0,
            nodes: g.num_nodes(),
            threads: 1,
            kind: if ranked {
                DispatchKind::Ranked
            } else {
                DispatchKind::Sequential
            },
        }];
        let response = match ranked_measure {
            Some(measure) => {
                let floor = crate::ranked::cost_floor(g, measure);
                let stream = crate::ranked::RankedStream::over(stream, measure, floor);
                Response::over_ranked_stream(task, budget, cancel, Box::new(stream))
            }
            None => Response::over_stream(task, budget, cancel, stream),
        }
        .with_dispatch(dispatch);
        match (tracer, query_span) {
            (Some(t), Some(s)) => response.with_trace(t, s),
            _ => response,
        }
    }
}

impl std::fmt::Debug for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Query")
            .field("task", &self.task)
            .field("triangulator", &self.triangulator.name())
            .field("mode", &self.mode)
            .field("budget", &self.budget)
            .field("policy", &self.policy)
            .field("trace", &self.trace)
            .field("cancel", &self.cancel)
            .finish()
    }
}

/// The unified answer handle: a blocking stream of [`QueryItem`]s (via
/// [`Iterator`]) plus [`Response::cancel`], [`Response::outcome`] and
/// [`Response::is_replay`].
///
/// Dropping a response aborts the underlying execution (parallel workers
/// are joined; nothing leaks). The budget and the cancel token are
/// honored between emissions; for unordered parallel execution,
/// cancellation additionally aborts the workers immediately, unblocking
/// a consumer parked on the result channel.
pub struct Response<'a> {
    task: Task,
    budget: EnumerationBudget,
    cancel: CancelToken,
    source: Option<Box<dyn TriangulationStream + 'a>>,
    started: Instant,
    records: Vec<ResultRecord>,
    produced: usize,
    scanned: usize,
    completed: bool,
    cancelled: bool,
    replay: bool,
    /// The source emits in ascending cost order ([`Response::over_ranked_stream`]):
    /// [`Task::BestK`] streams the first `k` results directly instead of
    /// scanning everything.
    ranked: bool,
    enum_stats: Option<EnumMisStats>,
    /// The per-atom dispatch the executor chose ([`Response::with_dispatch`]).
    dispatch: Vec<AtomDispatch>,
    done_at: Option<Duration>,
    /// Buffered emissions ([`Task::BestK`] results after the scan).
    pending: VecDeque<QueryItem>,
    /// The current triangulation's decomposition class
    /// ([`Task::Decompose`] with [`TdEnumerationMode::AllDecompositions`]).
    class: Option<Box<dyn Iterator<Item = TreeDecomposition>>>,
    /// The query's tracer, when tracing ([`Response::with_trace`]).
    trace: Option<TraceBuilder>,
    /// The root `query` span; finished by [`Response::end_stream`].
    query_span: Option<SpanHandle>,
    /// The `first_result` span: open from trace attachment until the
    /// first pull succeeds — its duration is the first-result delay.
    first_span: Option<SpanHandle>,
    /// The `drain` span: first successful pull → end of stream.
    drain_span: Option<SpanHandle>,
}

impl<'a> Response<'a> {
    /// Builds a response executing `task` over an arbitrary
    /// [`TriangulationStream`] — the constructor execution layers (the
    /// engine, future transports) use. All task logic runs here; the
    /// stream only produces triangulations.
    pub fn over_stream(
        task: Task,
        budget: EnumerationBudget,
        cancel: CancelToken,
        source: Box<dyn TriangulationStream + 'a>,
    ) -> Response<'a> {
        Response {
            task,
            budget,
            cancel,
            replay: source.is_replay(),
            source: Some(source),
            started: Instant::now(),
            records: Vec::new(),
            produced: 0,
            scanned: 0,
            completed: false,
            cancelled: false,
            ranked: false,
            enum_stats: None,
            dispatch: Vec::new(),
            done_at: None,
            pending: VecDeque::new(),
            class: None,
            trace: None,
            query_span: None,
            first_span: None,
            drain_span: None,
        }
    }

    /// Like [`Response::over_stream`], but `source` is contracted to emit
    /// in ascending cost order under the query's measure — a
    /// [`RankedStream`](crate::ranked::RankedStream) or
    /// [`RankedComposed`](crate::ranked::RankedComposed). [`Task::BestK`]
    /// then streams the first `k` results directly: the answer is exact
    /// after ~`k` pulls ([`QueryOutcome::completed`] is set once `k`
    /// winners are out), the budget bounds the emissions (`scanned` =
    /// emitted), and a cancel still yields the already-proven prefix.
    pub fn over_ranked_stream(
        task: Task,
        budget: EnumerationBudget,
        cancel: CancelToken,
        source: Box<dyn TriangulationStream + 'a>,
    ) -> Response<'a> {
        let mut response = Response::over_stream(task, budget, cancel, source);
        response.ranked = true;
        response
    }

    /// Attaches a tracer and its root `query` span to this response. The
    /// response takes over the span lifecycle: a `first_result` child
    /// opens immediately (its duration is the delay to the first pulled
    /// result), a `drain` child covers first result → end of stream, and
    /// the query span is stamped with the final `produced`/`scanned`
    /// counts when the stream ends. Executors call this right after
    /// [`Response::over_stream`] on traced queries.
    pub fn with_trace(mut self, trace: TraceBuilder, query_span: SpanHandle) -> Self {
        self.first_span = Some(query_span.child("first_result"));
        self.trace = Some(trace);
        self.query_span = Some(query_span);
        self
    }

    /// Attaches the executor's per-atom dispatch record, surfaced as
    /// [`QueryOutcome::dispatch`]. Executors call this right after
    /// constructing the response — every query reports its actual
    /// dispatch, traced or not.
    pub fn with_dispatch(mut self, dispatch: Vec<AtomDispatch>) -> Self {
        self.dispatch = dispatch;
        self
    }

    /// `true` when this response replays a previously completed
    /// enumeration (zero `Extend` calls).
    pub fn is_replay(&self) -> bool {
        self.replay
    }

    /// Requests cancellation (equivalent to cancelling the query's
    /// [`CancelToken`]): the stream ends at the next emission boundary
    /// and [`QueryOutcome::cancelled`] is set.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// A cloneable handle for cancelling from another thread.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// A snapshot of how the run went so far; final once the stream has
    /// ended. Cheap enough to call per item (clones the record list).
    pub fn outcome(&self) -> QueryOutcome {
        QueryOutcome {
            records: self.records.clone(),
            produced: self.produced,
            scanned: self.scanned,
            completed: self.completed,
            cancelled: self.cancelled,
            replayed: self.replay,
            elapsed: self.done_at.unwrap_or_else(|| self.started.elapsed()),
            enum_stats: self.enum_stats,
            dispatch: self.dispatch.clone(),
            trace: self.trace.as_ref().map(TraceBuilder::snapshot),
        }
    }

    /// Drains the stream and collects the triangulations (for
    /// [`Task::Enumerate`] / [`Task::BestK`]).
    pub fn triangulations(&mut self) -> Vec<Triangulation> {
        self.by_ref()
            .filter_map(QueryItem::into_triangulation)
            .collect()
    }

    /// Drains the stream and collects the tree decompositions (for
    /// [`Task::Decompose`]).
    pub fn decompositions(&mut self) -> Vec<TreeDecomposition> {
        self.by_ref()
            .filter_map(QueryItem::into_decomposition)
            .collect()
    }

    /// Drains the stream (discarding items) and returns the final
    /// outcome — the "just tell me how it went" call for [`Task::Stats`].
    pub fn wait(mut self) -> QueryOutcome {
        self.by_ref().for_each(drop);
        self.outcome()
    }

    /// Ends the stream: captures counters, drops the source (joining any
    /// parallel workers) and freezes the elapsed clock.
    fn end_stream(&mut self) {
        if let Some(source) = self.source.take() {
            if self.enum_stats.is_none() {
                self.enum_stats = source.enum_stats();
            }
            drop(source);
        }
        if !self.completed && self.cancel.is_cancelled() {
            self.cancelled = true;
        }
        if self.done_at.is_none() {
            self.done_at = Some(self.started.elapsed());
        }
        // Close any trace spans still open (a stream that ended before
        // its first result never opened `drain`; `first_result` then
        // covers the whole wait).
        if let Some(span) = self.first_span.take() {
            span.finish();
        }
        if let Some(span) = self.drain_span.take() {
            span.finish();
        }
        if let Some(span) = self.query_span.take() {
            span.attr("scanned", self.scanned.to_string());
            span.attr("produced", self.produced.to_string());
            span.attr("completed", self.completed.to_string());
            span.finish();
        }
    }

    /// Pulls one triangulation from the source. Checks cancellation, and
    /// the budget against `spent` (which count the budget limits differs
    /// by task). For [`Task::Stats`] — and only there, so plain streams
    /// stay O(1) memory and skip the width computation — a quality
    /// record is accumulated per pull. `None` ends the stream.
    fn pull(&mut self, spent: usize) -> Option<Triangulation> {
        let source = self.source.as_mut()?;
        if self.cancel.is_cancelled() || self.budget.exhausted(spent, self.started) {
            self.end_stream();
            return None;
        }
        match source.next_tri() {
            Some(tri) => {
                self.scanned += 1;
                if let Some(first) = self.first_span.take() {
                    first.finish();
                    self.drain_span = self.query_span.as_ref().map(|q| q.child("drain"));
                }
                if matches!(self.task, Task::Stats) {
                    self.records.push(ResultRecord {
                        index: self.records.len(),
                        at: self.started.elapsed(),
                        width: tri.width(),
                        fill: tri.fill_count(),
                    });
                }
                Some(tri)
            }
            None => {
                self.completed = source.finished() && !self.cancel.is_cancelled();
                self.end_stream();
                None
            }
        }
    }

    /// Runs the whole [`Task::BestK`] scan, buffering the winners.
    fn scan_best_k(&mut self, k: usize, cost: CostMeasure) {
        let mut top = TopK::new(k);
        let mut index = 0usize;
        while let Some(tri) = self.pull(index) {
            top.offer(cost.evaluate(&tri), index, tri);
            index += 1;
        }
        self.pending = top
            .into_vec()
            .into_iter()
            .map(QueryItem::Triangulation)
            .collect();
    }

    fn next_item(&mut self) -> Option<QueryItem> {
        if let Some(item) = self.pending.pop_front() {
            self.produced += 1;
            return Some(item);
        }
        match self.task {
            Task::Enumerate => {
                let tri = self.pull(self.produced)?;
                self.produced += 1;
                Some(QueryItem::Triangulation(tri))
            }
            Task::Stats => {
                let _ = self.pull(self.produced)?;
                self.produced += 1;
                Some(QueryItem::Record(
                    *self.records.last().expect("just recorded"),
                ))
            }
            Task::BestK { k, cost } => {
                if self.ranked {
                    // Ranked source: ascending cost order, so the first k
                    // emissions *are* the answer — no scan, no buffer.
                    if self.produced >= k {
                        if self.source.is_some() {
                            self.completed = true;
                            self.end_stream();
                        }
                        return None;
                    }
                    let tri = self.pull(self.produced)?;
                    self.produced += 1;
                    return Some(QueryItem::Triangulation(tri));
                }
                if self.source.is_some() {
                    self.scan_best_k(k, cost);
                }
                self.pending.pop_front().inspect(|_| self.produced += 1)
            }
            Task::Decompose { mode } => loop {
                if let Some(class) = &mut self.class {
                    match class.next() {
                        Some(d) => {
                            // The emitted-results budget also bounds
                            // mid-class emissions.
                            if self.cancel.is_cancelled()
                                || self.budget.exhausted(self.produced, self.started)
                            {
                                self.class = None;
                                self.end_stream();
                                return None;
                            }
                            self.produced += 1;
                            return Some(QueryItem::Decomposition(d));
                        }
                        None => self.class = None,
                    }
                }
                let tri = self.pull(self.produced)?;
                match mode {
                    TdEnumerationMode::OnePerClass => {
                        let forest = CliqueForest::build(&tri.graph);
                        self.produced += 1;
                        return Some(QueryItem::Decomposition(TreeDecomposition {
                            bags: forest.cliques,
                            edges: forest.edges,
                        }));
                    }
                    TdEnumerationMode::AllDecompositions => {
                        self.class = Some(Box::new(proper_decompositions_of_chordal(&tri.graph)));
                    }
                }
            },
        }
    }
}

impl Iterator for Response<'_> {
    type Item = QueryItem;

    fn next(&mut self) -> Option<QueryItem> {
        self.next_item()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProperTreeDecompositions;

    #[test]
    fn enumerate_matches_the_sequential_iterator() {
        let g = Graph::cycle(7);
        let via_query: Vec<_> = Query::enumerate()
            .run_local(&g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        let direct: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(via_query, direct, "run_local is the sequential order");
    }

    #[test]
    fn outcome_reports_completion_and_stats() {
        let g = Graph::cycle(6);
        let mut response = Query::enumerate().run_local(&g);
        let n = response.by_ref().count();
        assert_eq!(n, 14);
        let outcome = response.outcome();
        assert!(outcome.completed);
        assert!(!outcome.cancelled);
        assert!(!outcome.replayed);
        assert_eq!(outcome.produced, 14);
        assert_eq!(outcome.scanned, 14);
        assert!(
            outcome.records.is_empty(),
            "plain enumeration streams without per-result instrumentation"
        );
        let stats = outcome
            .enum_stats
            .expect("sequential run exposes EnumMIS stats");
        assert_eq!(stats.answers, 14);
    }

    #[test]
    fn budget_truncates_and_clears_completed() {
        let g = Graph::cycle(8);
        let outcome = Query::stats()
            .budget(EnumerationBudget::results(5))
            .run_local(&g)
            .wait();
        assert_eq!(outcome.records.len(), 5);
        assert!(!outcome.completed);
        assert!(!outcome.cancelled);
    }

    #[test]
    fn cancel_mid_stream_stops_and_flags() {
        let g = Graph::cycle(9);
        let mut response = Query::enumerate().run_local(&g);
        let token = response.cancel_token();
        assert!(response.next().is_some());
        token.cancel();
        assert!(response.next().is_none(), "cancellation ends the stream");
        let outcome = response.outcome();
        assert!(outcome.cancelled);
        assert!(!outcome.completed);
        assert_eq!(outcome.produced, 1);
    }

    #[test]
    fn best_k_matches_ranked_selection() {
        let g = Graph::cycle(7);
        let best = Query::best_k(3, CostMeasure::Fill)
            .run_local(&g)
            .triangulations();
        assert_eq!(best.len(), 3);
        assert!(best.iter().all(|t| t.fill_count() == 4));
        // ascending cost order
        for w in best.windows(2) {
            assert!(w[0].fill_count() <= w[1].fill_count());
        }
    }

    #[test]
    fn best_k_budget_bounds_the_scan() {
        let g = Graph::cycle(9);
        let mut response = Query::best_k(2, CostMeasure::Width)
            .policy(ExecPolicy::fixed().with_ranked(false))
            .budget(EnumerationBudget::results(5))
            .run_local(&g);
        let best = response.triangulations();
        assert_eq!(best.len(), 2);
        let outcome = response.outcome();
        assert_eq!(outcome.scanned, 5, "budget bounds the scan, not the output");
        assert!(!outcome.completed);
    }

    #[test]
    fn ranked_best_k_budget_bounds_the_emissions() {
        let g = Graph::cycle(9);
        // Ranked: every pull is a final result, so a results(2) budget on
        // a k=4 query yields exactly 2 winners and an incomplete outcome.
        let mut response = Query::best_k(4, CostMeasure::Width)
            .budget(EnumerationBudget::results(2))
            .run_local(&g);
        let best = response.triangulations();
        assert_eq!(best.len(), 2);
        let outcome = response.outcome();
        assert_eq!(outcome.scanned, 2, "ranked scan = emissions");
        assert!(!outcome.completed, "budget truncated the answer");
    }

    #[test]
    fn ranked_best_k_completes_after_k_winners() {
        let g = Graph::cycle(9);
        let mut response = Query::best_k(2, CostMeasure::Width).run_local(&g);
        let best = response.triangulations();
        assert_eq!(best.len(), 2);
        let outcome = response.outcome();
        assert!(outcome.completed, "k exact winners are a complete answer");
        assert_eq!(outcome.scanned, 2, "output-sensitive: ~k pulls, not 429");
    }

    #[test]
    fn ranked_best_k_cancel_yields_the_proven_prefix() {
        let g = Graph::cycle(9);
        let mut response = Query::best_k(5, CostMeasure::Fill).run_local(&g);
        let token = response.cancel_token();
        assert!(response.next().is_some(), "first winner");
        token.cancel();
        assert!(response.next().is_none(), "cancellation ends the stream");
        let outcome = response.outcome();
        assert!(outcome.cancelled);
        assert!(!outcome.completed);
        assert_eq!(outcome.produced, 1);
    }

    #[test]
    fn decompose_matches_proper_tree_decompositions() {
        let g = Graph::cycle(6);
        for (mode, reference) in [
            (
                TdEnumerationMode::AllDecompositions,
                ProperTreeDecompositions::new(&g).count(),
            ),
            (
                TdEnumerationMode::OnePerClass,
                ProperTreeDecompositions::one_per_class(&g).count(),
            ),
        ] {
            let mut response = Query::decompose(mode).run_local(&g);
            let ds = response.decompositions();
            assert_eq!(ds.len(), reference, "{mode:?}");
            assert!(response.outcome().completed);
            assert!(ds.iter().all(|d| d.is_proper(&g)));
        }
    }

    #[test]
    fn decompose_budget_bounds_emitted_decompositions() {
        let g = Graph::cycle(7);
        let mut response = Query::decompose(TdEnumerationMode::AllDecompositions)
            .budget(EnumerationBudget::results(3))
            .run_local(&g);
        assert_eq!(response.decompositions().len(), 3);
        assert!(!response.outcome().completed);
    }

    #[test]
    fn stats_task_emits_records_and_quality() {
        let g = Graph::cycle(6);
        let mut response = Query::stats().run_local(&g);
        let records: Vec<_> = response.by_ref().filter_map(|i| i.as_record()).collect();
        assert_eq!(records.len(), 14);
        let outcome = response.outcome();
        assert!(outcome.completed);
        let q = outcome.quality().unwrap();
        assert_eq!(q.num_results, 14);
        assert_eq!(q.min_width, 2);
    }

    #[test]
    fn zero_time_budget_yields_nothing() {
        let outcome = Query::stats()
            .budget(EnumerationBudget::time(Duration::ZERO))
            .run_local(&Graph::cycle(8))
            .wait();
        assert!(outcome.records.is_empty());
        assert!(!outcome.completed);
    }

    #[test]
    fn pre_cancelled_token_yields_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let g = Graph::cycle(6);
        let mut response = Query::enumerate().cancel_token(token).run_local(&g);
        assert!(response.next().is_none());
        assert!(response.outcome().cancelled);
    }

    #[test]
    fn cancel_hooks_fire_once_registered() {
        let token = CancelToken::new();
        let fired = Arc::new(AtomicBool::new(false));
        let observer = Arc::clone(&fired);
        let guard = token.on_cancel(move || observer.store(true, Ordering::SeqCst));
        assert!(!fired.load(Ordering::SeqCst));
        token.cancel();
        assert!(fired.load(Ordering::SeqCst));
        drop(guard);
    }

    #[test]
    fn dropped_hook_guards_deregister() {
        let token = CancelToken::new();
        let fired = Arc::new(AtomicBool::new(false));
        let observer = Arc::clone(&fired);
        let guard = token.on_cancel(move || observer.store(true, Ordering::SeqCst));
        drop(guard); // the run ended; its hook must not linger
        token.cancel();
        assert!(
            !fired.load(Ordering::SeqCst),
            "deregistered hooks must not fire"
        );
    }

    #[test]
    fn traced_query_attaches_a_span_tree() {
        let g = Graph::cycle(6);
        let mut response = Query::enumerate().traced(true).run_local(&g);
        assert_eq!(response.by_ref().count(), 14);
        let outcome = response.outcome();
        let trace = outcome.trace.expect("traced query carries a trace");
        let query = trace.find("query").expect("root query span");
        assert_eq!(query.attr("task"), Some("enumerate"));
        assert_eq!(query.attr("produced"), Some("14"));
        assert!(query.find("plan").is_some(), "plan span present");
        let atom = query.find("atom").expect("per-atom span");
        assert_eq!(atom.attr("results"), Some("14"));
        assert!(query.find("first_result").is_some());
        assert!(query.find("drain").is_some());
        // untraced queries carry nothing
        assert!(Query::enumerate().run_local(&g).wait().trace.is_none());
    }

    #[test]
    fn traced_planned_query_has_one_span_per_atom() {
        // Two C4s sharing the cut vertex 3: the plan splits them into
        // two non-chordal atoms of 2 triangulations each (product 4).
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let mut response = Query::enumerate().traced(true).run_local(&g);
        assert_eq!(response.by_ref().count(), 4);
        let trace = response.outcome().trace.unwrap();
        let query = trace.find("query").unwrap();
        let atoms: Vec<_> = query.children.iter().filter(|c| c.name == "atom").collect();
        assert_eq!(atoms.len(), 2, "one span per planned atom");
        assert!(atoms
            .iter()
            .all(|a| a.attr("dispatch") == Some("sequential")));
        assert_eq!(atoms[0].attr("index"), Some("0"));
        assert_eq!(atoms[1].attr("index"), Some("1"));
        assert!(
            atoms.iter().all(|a| a.attr("results") == Some("2")),
            "each atom enumerated exactly its own 2 triangulations"
        );
    }

    #[test]
    fn query_debug_names_the_backend() {
        let q = Query::enumerate();
        let dbg = format!("{q:?}");
        assert!(dbg.contains("Enumerate"));
        assert!(dbg.contains("MCS_M"), "{dbg}");
        assert!(dbg.contains("Auto"), "default policy is Auto: {dbg}");
    }

    #[test]
    fn exec_policy_defaults_and_knobs() {
        let auto = ExecPolicy::default();
        assert!(auto.is_auto());
        assert_eq!(auto.name(), "auto");
        assert_eq!(auto.delivery(), Delivery::Unordered);
        // Auto's cold-start knobs are exactly the Fixed defaults.
        assert_eq!(auto.pinned(), ExecPolicy::fixed());
        // with_delivery preserves the variant; the pinning setters don't.
        assert!(auto.with_delivery(Delivery::Deterministic).is_auto());
        let pinned = auto.with_threads(4);
        assert_eq!(
            pinned,
            ExecPolicy::Fixed {
                threads: 4,
                planned: true,
                ranked: true,
                delivery: Delivery::Unordered,
            }
        );
        assert_eq!(pinned.with_ranked(false).threads(), 4);
        assert!(!pinned.with_planned(false).planned());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_builders_pin_an_equivalent_fixed_policy() {
        // The old builder chain must still compile and produce exactly
        // the knobs it used to set on the flat fields.
        let q = Query::enumerate()
            .threads(3)
            .planned(false)
            .ranked(false)
            .delivery(Delivery::Deterministic);
        assert_eq!(
            q.policy,
            ExecPolicy::Fixed {
                threads: 3,
                planned: false,
                ranked: false,
                delivery: Delivery::Deterministic,
            }
        );
        // …and the results are unchanged: same enumeration either way.
        let g = Graph::cycle(6);
        let via_old = Query::enumerate()
            .planned(false)
            .run_local(&g)
            .triangulations()
            .len();
        let via_new = Query::enumerate()
            .policy(ExecPolicy::fixed().with_planned(false))
            .run_local(&g)
            .triangulations()
            .len();
        assert_eq!(via_old, via_new);
    }

    #[test]
    fn outcome_reports_actual_dispatch() {
        // Planned local run: one sequential entry per atom.
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let mut response = Query::enumerate().run_local(&g);
        assert_eq!(response.by_ref().count(), 4);
        let dispatch = response.outcome().dispatch;
        assert_eq!(dispatch.len(), 2, "one entry per planned atom");
        assert!(dispatch
            .iter()
            .all(|d| d.kind == DispatchKind::Sequential && d.threads == 1));
        // Ranked best-k reports the ranked dispatch.
        let c6 = Graph::cycle(6);
        let mut ranked = Query::best_k(2, CostMeasure::Fill).run_local(&c6);
        let _ = ranked.by_ref().count();
        let dispatch = ranked.outcome().dispatch;
        assert_eq!(dispatch.len(), 1);
        assert_eq!(dispatch[0].kind, DispatchKind::Ranked);
        assert_eq!(dispatch[0].kind.name(), "ranked");
    }
}

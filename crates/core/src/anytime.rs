//! The anytime driver: run the enumeration under a time/result budget
//! while recording per-result quality, reproducing the measurement
//! methodology of Section 6 (delays, width/fill statistics, quality over
//! time).

use mintri_graph::Graph;
use mintri_sgr::PrintMode;
use mintri_triangulate::{Triangulation, Triangulator};
use std::time::{Duration, Instant};

/// How [`AnytimeSearch::run`] produces its triangulation stream.
///
/// The default drives the in-process sequential enumerator. `Streamed`
/// delegates to an externally supplied stream factory — this is the hook
/// the `mintri-engine` crate uses to plug its **parallel** enumeration in
/// (`mintri_engine::parallel_strategy(threads)`), keeping the budgeting
/// and quality-recording machinery here identical across strategies.
pub enum SearchStrategy {
    /// The classic single-threaded `EnumMIS` iterator.
    Sequential,
    /// A custom stream built from the search's graph, triangulator and
    /// print mode (e.g. the engine's work-stealing parallel enumerator).
    Streamed(StreamFactory),
}

/// Factory for [`SearchStrategy::Streamed`]: builds the triangulation
/// stream an anytime run will consume.
pub type StreamFactory = Box<
    dyn FnOnce(&Graph, Box<dyn Triangulator>, PrintMode) -> Box<dyn Iterator<Item = Triangulation>>,
>;

impl std::fmt::Debug for SearchStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchStrategy::Sequential => f.write_str("Sequential"),
            SearchStrategy::Streamed(_) => f.write_str("Streamed(..)"),
        }
    }
}

/// Stopping condition for an anytime run. Whichever limit trips first ends
/// the run; with neither set, the run continues to completion.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerationBudget {
    /// Stop after this many results.
    pub max_results: Option<usize>,
    /// Stop after this much wall-clock time (checked between results).
    pub time_limit: Option<Duration>,
}

impl EnumerationBudget {
    /// No limits: run to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Stop after `n` results.
    pub fn results(n: usize) -> Self {
        EnumerationBudget {
            max_results: Some(n),
            time_limit: None,
        }
    }

    /// Stop after `d` of wall-clock time (the paper's 30-minute runs, scaled
    /// down).
    pub fn time(d: Duration) -> Self {
        EnumerationBudget {
            max_results: None,
            time_limit: Some(d),
        }
    }

    /// Both limits.
    pub fn results_or_time(n: usize, d: Duration) -> Self {
        EnumerationBudget {
            max_results: Some(n),
            time_limit: Some(d),
        }
    }

    /// `true` once either limit has tripped, given `produced` results so
    /// far and the run's start time — the single budget check shared by
    /// every driver (the query layer, ranked selection, anytime runs).
    pub fn exhausted(&self, produced: usize, started: Instant) -> bool {
        if self.max_results.is_some_and(|n| produced >= n) {
            return true;
        }
        self.time_limit.is_some_and(|t| started.elapsed() >= t)
    }
}

/// One enumerated triangulation, with its timing and quality measures.
#[derive(Debug, Clone, Copy)]
pub struct ResultRecord {
    /// 0-based production index.
    pub index: usize,
    /// Elapsed time from the start of the run to this result.
    pub at: Duration,
    /// Width of the triangulation (max clique − 1).
    pub width: usize,
    /// Number of fill edges.
    pub fill: usize,
}

/// The outcome of an anytime run.
#[derive(Debug, Clone, Default)]
pub struct AnytimeOutcome {
    /// Per-result records in production order.
    pub records: Vec<ResultRecord>,
    /// `true` iff the enumeration finished before the budget tripped (the
    /// record list is then the complete `MinTri(g)`).
    pub completed: bool,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl AnytimeOutcome {
    /// Mean delay between consecutive results (Section 6.2's measurement).
    pub fn average_delay(&self) -> Option<Duration> {
        if self.records.is_empty() {
            return None;
        }
        Some(self.elapsed / self.records.len() as u32)
    }

    /// Table 1 / Table 2 statistics for this run.
    pub fn quality(&self) -> Option<QualityStats> {
        QualityStats::from_records(&self.records)
    }

    /// The running minimum of a measure over time: `(elapsed, value)` at
    /// every improvement, for Figure 10.
    pub fn running_min(&self, measure: impl Fn(&ResultRecord) -> usize) -> Vec<(Duration, usize)> {
        let mut out = Vec::new();
        let mut best = usize::MAX;
        for r in &self.records {
            let v = measure(r);
            if v < best {
                best = v;
                out.push((r.at, v));
            }
        }
        out
    }
}

/// The width/fill statistics of Tables 1 and 2, computed per run: result
/// counts, minima, counts at-least-as-good-as-the-first, and relative
/// improvement over the first result (which is what the plain underlying
/// triangulation algorithm would return).
#[derive(Debug, Clone, Copy)]
pub struct QualityStats {
    /// Number of triangulations produced (`#trng`).
    pub num_results: usize,
    /// Width of the first result (the baseline algorithm's width).
    pub first_width: usize,
    /// Minimum width observed (`min-w`).
    pub min_width: usize,
    /// Results with width ≤ the first result's (`#≤w1`).
    pub num_leq_first_width: usize,
    /// Relative width improvement `(first − min) / first` in percent
    /// (`%w↓`); 0 when the first width is 0.
    pub width_improvement_pct: f64,
    /// Fill of the first result.
    pub first_fill: usize,
    /// Minimum fill observed (`min-f`).
    pub min_fill: usize,
    /// Results with fill ≤ the first result's (`#≤f1`).
    pub num_leq_first_fill: usize,
    /// Relative fill improvement in percent (`%f↓`).
    pub fill_improvement_pct: f64,
}

impl QualityStats {
    /// Aggregates a record list; `None` when empty.
    pub fn from_records(records: &[ResultRecord]) -> Option<QualityStats> {
        let first = records.first()?;
        let min_width = records.iter().map(|r| r.width).min().unwrap();
        let min_fill = records.iter().map(|r| r.fill).min().unwrap();
        let pct = |first: usize, min: usize| {
            if first == 0 {
                0.0
            } else {
                100.0 * (first - min) as f64 / first as f64
            }
        };
        Some(QualityStats {
            num_results: records.len(),
            first_width: first.width,
            min_width,
            num_leq_first_width: records.iter().filter(|r| r.width <= first.width).count(),
            width_improvement_pct: pct(first.width, min_width),
            first_fill: first.fill,
            min_fill,
            num_leq_first_fill: records.iter().filter(|r| r.fill <= first.fill).count(),
            fill_improvement_pct: pct(first.fill, min_fill),
        })
    }
}

/// Builder for budgeted, instrumented enumeration runs.
///
/// ```
/// use mintri_core::{AnytimeSearch, EnumerationBudget};
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(6);
/// let outcome = AnytimeSearch::new(&g)
///     .budget(EnumerationBudget::results(5))
///     .run();
/// assert_eq!(outcome.records.len(), 5);
/// let q = outcome.quality().unwrap();
/// assert!(q.min_width <= q.first_width);
/// ```
pub struct AnytimeSearch<'g> {
    g: &'g Graph,
    triangulator: Box<dyn Triangulator>,
    mode: PrintMode,
    budget: EnumerationBudget,
    strategy: SearchStrategy,
}

impl<'g> AnytimeSearch<'g> {
    /// Defaults: MCS-M, upon-generation printing, unlimited budget,
    /// sequential strategy.
    pub fn new(g: &'g Graph) -> Self {
        AnytimeSearch {
            g,
            triangulator: Box::new(mintri_triangulate::McsM),
            mode: PrintMode::UponGeneration,
            budget: EnumerationBudget::unlimited(),
            strategy: SearchStrategy::Sequential,
        }
    }

    /// Sets the triangulation backend.
    pub fn triangulator(mut self, t: Box<dyn Triangulator>) -> Self {
        self.triangulator = t;
        self
    }

    /// Sets the print mode.
    pub fn mode(mut self, mode: PrintMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the budget.
    pub fn budget(mut self, budget: EnumerationBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the enumeration strategy (sequential by default; see
    /// [`SearchStrategy`] for the parallel hook).
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs the enumeration, recording one [`ResultRecord`] per
    /// triangulation.
    ///
    /// The sequential strategy is a thin adapter over the typed query
    /// front door: it runs [`Task::Stats`](crate::query::Task) via
    /// [`Query::run_local`](crate::query::Query::run_local) and converts
    /// the [`QueryOutcome`](crate::query::QueryOutcome).
    pub fn run(self) -> AnytimeOutcome {
        let AnytimeSearch {
            g,
            triangulator,
            mode,
            budget,
            strategy,
        } = self;
        match strategy {
            SearchStrategy::Sequential => {
                let outcome = crate::query::Query::stats()
                    .triangulator(triangulator)
                    .mode(mode)
                    .budget(budget)
                    .run_local(g)
                    .wait();
                AnytimeOutcome {
                    records: outcome.records,
                    completed: outcome.completed,
                    elapsed: outcome.elapsed,
                }
            }
            SearchStrategy::Streamed(factory) => {
                Self::record(budget, factory(g, triangulator, mode))
            }
        }
    }

    /// Applies the budget to an arbitrary triangulation stream, recording
    /// one [`ResultRecord`] per item — the measurement loop shared by all
    /// strategies.
    pub fn record(
        budget: EnumerationBudget,
        stream: impl IntoIterator<Item = Triangulation>,
    ) -> AnytimeOutcome {
        let started = Instant::now();
        let mut records = Vec::new();
        let mut stream = stream.into_iter();
        let mut completed = false;
        loop {
            if budget.exhausted(records.len(), started) {
                break;
            }
            match stream.next() {
                None => {
                    completed = true;
                    break;
                }
                Some(tri) => {
                    records.push(ResultRecord {
                        index: records.len(),
                        at: started.elapsed(),
                        width: tri.width(),
                        fill: tri.fill_count(),
                    });
                }
            }
        }
        AnytimeOutcome {
            records,
            completed,
            elapsed: started.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_run_completes_and_counts() {
        let outcome = AnytimeSearch::new(&Graph::cycle(6)).run();
        assert!(outcome.completed);
        assert_eq!(outcome.records.len(), 14);
        assert!(outcome.average_delay().is_some());
    }

    #[test]
    fn result_budget_truncates() {
        let outcome = AnytimeSearch::new(&Graph::cycle(7))
            .budget(EnumerationBudget::results(10))
            .run();
        assert!(!outcome.completed);
        assert_eq!(outcome.records.len(), 10);
    }

    #[test]
    fn timestamps_are_monotone() {
        let outcome = AnytimeSearch::new(&Graph::cycle(6)).run();
        for w in outcome.records.windows(2) {
            assert!(w[0].at <= w[1].at);
            assert_eq!(w[0].index + 1, w[1].index);
        }
    }

    #[test]
    fn quality_stats_on_cycles() {
        let outcome = AnytimeSearch::new(&Graph::cycle(6)).run();
        let q = outcome.quality().unwrap();
        assert_eq!(q.num_results, 14);
        // every minimal triangulation of a cycle has width 2 and fill n-3
        assert_eq!(q.first_width, 2);
        assert_eq!(q.min_width, 2);
        assert_eq!(q.num_leq_first_width, 14);
        assert_eq!(q.width_improvement_pct, 0.0);
        assert_eq!(q.min_fill, 3);
    }

    #[test]
    fn running_min_is_non_increasing() {
        let g = Graph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (6, 2),
            ],
        );
        let outcome = AnytimeSearch::new(&g).run();
        let series = outcome.running_min(|r| r.fill);
        assert!(!series.is_empty());
        for w in series.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn empty_quality_is_none() {
        assert!(QualityStats::from_records(&[]).is_none());
    }

    #[test]
    fn time_budget_is_respected() {
        // zero time budget -> at most the check granularity (0 results)
        let outcome = AnytimeSearch::new(&Graph::cycle(8))
            .budget(EnumerationBudget::time(Duration::ZERO))
            .run();
        assert!(outcome.records.is_empty());
        assert!(!outcome.completed);
    }
}

//! Enumerating the proper tree decompositions (Section 5, Corollary 5.2):
//! stream the minimal triangulations, and expand each one into its
//! `≡b`-class of clique trees with polynomial delay.

use crate::MinimalTriangulationsEnumerator;
use mintri_chordal::CliqueForest;
use mintri_graph::Graph;
use mintri_sgr::PrintMode;
use mintri_treedecomp::{proper_decompositions_of_chordal, TreeDecomposition};
use mintri_triangulate::Triangulator;

/// Which representative(s) of each `≡b`-equivalence class to emit.
///
/// The paper notes both variants carry the incremental-polynomial-time
/// guarantee; which one is wanted depends on whether the application
/// distinguishes decompositions with the same bags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TdEnumerationMode {
    /// Every proper tree decomposition (all clique trees of every minimal
    /// triangulation).
    #[default]
    AllDecompositions,
    /// One proper tree decomposition per bag configuration (per minimal
    /// triangulation).
    OnePerClass,
}

/// Iterator over the proper tree decompositions of a graph, in incremental
/// polynomial time.
///
/// ```
/// use mintri_core::ProperTreeDecompositions;
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(4);
/// // each of the two minimal triangulations of C4 has one clique tree
/// let all: Vec<_> = ProperTreeDecompositions::new(&g).collect();
/// assert_eq!(all.len(), 2);
/// assert!(all.iter().all(|d| d.is_proper(&g)));
/// ```
pub struct ProperTreeDecompositions<'g> {
    triangulations: MinimalTriangulationsEnumerator<'g>,
    mode: TdEnumerationMode,
    current_class: Option<Box<dyn Iterator<Item = TreeDecomposition>>>,
}

impl<'g> ProperTreeDecompositions<'g> {
    /// All proper tree decompositions, default backend.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_config(
            g,
            Box::new(mintri_triangulate::McsM),
            PrintMode::UponGeneration,
            TdEnumerationMode::AllDecompositions,
        )
    }

    /// One representative per `≡b`-class, default backend.
    pub fn one_per_class(g: &'g Graph) -> Self {
        Self::with_config(
            g,
            Box::new(mintri_triangulate::McsM),
            PrintMode::UponGeneration,
            TdEnumerationMode::OnePerClass,
        )
    }

    /// Full configuration.
    pub fn with_config(
        g: &'g Graph,
        triangulator: Box<dyn Triangulator>,
        print_mode: PrintMode,
        mode: TdEnumerationMode,
    ) -> Self {
        ProperTreeDecompositions {
            triangulations: MinimalTriangulationsEnumerator::with_config(
                g,
                triangulator,
                print_mode,
            ),
            mode,
            current_class: None,
        }
    }
}

impl Iterator for ProperTreeDecompositions<'_> {
    type Item = TreeDecomposition;

    fn next(&mut self) -> Option<TreeDecomposition> {
        loop {
            if let Some(class) = &mut self.current_class {
                if let Some(d) = class.next() {
                    return Some(d);
                }
                self.current_class = None;
            }
            let tri = self.triangulations.next()?;
            match self.mode {
                TdEnumerationMode::OnePerClass => {
                    let forest = CliqueForest::build(&tri.graph);
                    return Some(TreeDecomposition {
                        bags: forest.cliques,
                        edges: forest.edges,
                    });
                }
                TdEnumerationMode::AllDecompositions => {
                    self.current_class =
                        Some(Box::new(proper_decompositions_of_chordal(&tri.graph)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_emitted_decomposition_is_proper_and_valid() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        let all: Vec<_> = ProperTreeDecompositions::new(&g).collect();
        assert!(!all.is_empty());
        for d in &all {
            assert!(d.validate(&g).is_ok());
            assert!(d.is_proper(&g));
        }
        // distinct
        let mut keyed: Vec<_> = all
            .iter()
            .map(|d| {
                let mut bags: Vec<_> = d.bags.clone();
                bags.sort();
                (bags, {
                    let mut e = d.edges.clone();
                    e.sort_unstable();
                    e
                })
            })
            .collect();
        let n = keyed.len();
        keyed.sort();
        keyed.dedup();
        assert_eq!(keyed.len(), n, "no duplicates");
    }

    #[test]
    fn one_per_class_counts_minimal_triangulations() {
        let g = Graph::cycle(6);
        let classes = ProperTreeDecompositions::one_per_class(&g).count();
        assert_eq!(classes, 14); // Catalan(4)
    }

    #[test]
    fn all_mode_counts_clique_trees_per_class() {
        // chordal graph: star of 3 triangles sharing the apex -> one class,
        // 3 clique trees
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (3, 4),
                (0, 4),
                (0, 5),
                (5, 6),
                (0, 6),
            ],
        );
        assert_eq!(ProperTreeDecompositions::new(&g).count(), 3);
        assert_eq!(ProperTreeDecompositions::one_per_class(&g).count(), 1);
    }

    #[test]
    fn tree_input_yields_its_own_decomposition() {
        let g = Graph::path(5);
        let all: Vec<_> = ProperTreeDecompositions::new(&g).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].width(), 1);
        assert_eq!(all[0].num_bags(), 4); // the 4 edges of P5
    }
}

//! The eager (materialized) separator graph: **polynomial delay** for
//! graphs with polynomially many minimal separators.
//!
//! Section 7 of the paper observes that polynomial delay (not just
//! incremental polynomial time) is achievable when `|MinSep(g)|` is
//! polynomial in the input: materialize the separator graph upfront and run
//! the classical known-node-set enumeration. [`EagerMsGraph`] does exactly
//! that — it exhausts the Berry–Bordat–Cogis enumerator, precomputes the
//! full crossing matrix as bit rows, and serves `EnumMIS` with `O(1)` edge
//! oracles and an upfront node set. TPC-H-sized query graphs (≤ ~50
//! separators) are the intended use case; on worst-case graphs the
//! materialization itself is exponential, which is the whole reason the
//! lazy [`crate::MsGraph`] exists.

use crate::msgraph::SepId;
use mintri_chordal::CliqueForest;
use mintri_graph::{FxHashMap, Graph, NodeSet};
use mintri_separators::{crossing, MinimalSeparatorIter};
use mintri_sgr::Sgr;
use mintri_triangulate::{minimal_triangulation, McsM, Triangulator};

/// A fully materialized minimal separator graph.
pub struct EagerMsGraph<'g> {
    g: &'g Graph,
    separators: Vec<NodeSet>,
    index: FxHashMap<NodeSet, SepId>,
    /// `crossing_rows[i]` is the bitset of separators crossing separator `i`
    /// (capacity = number of separators).
    crossing_rows: Vec<NodeSet>,
    triangulator: Box<dyn Triangulator>,
}

impl<'g> EagerMsGraph<'g> {
    /// Materializes the separator graph of `g` with the default (MCS-M)
    /// expansion backend. Runs the full separator enumeration and the
    /// quadratic crossing matrix — only sensible when `MinSep(g)` is small.
    pub fn new(g: &'g Graph) -> Self {
        Self::with_triangulator(g, Box::new(McsM))
    }

    /// Materializes with a custom triangulation backend.
    pub fn with_triangulator(g: &'g Graph, triangulator: Box<dyn Triangulator>) -> Self {
        let separators: Vec<NodeSet> = MinimalSeparatorIter::new(g).collect();
        let s = separators.len();
        let index: FxHashMap<NodeSet, SepId> = separators
            .iter()
            .enumerate()
            .map(|(i, sep)| (sep.clone(), i as SepId))
            .collect();
        let mut crossing_rows = vec![NodeSet::new(s); s];
        for i in 0..s {
            for j in (i + 1)..s {
                if crossing(g, &separators[i], &separators[j]) {
                    crossing_rows[i].insert(j as SepId);
                    crossing_rows[j].insert(i as SepId);
                }
            }
        }
        EagerMsGraph {
            g,
            separators,
            index,
            crossing_rows,
            triangulator,
        }
    }

    /// Number of minimal separators (`|V(G^ms)|`).
    pub fn num_separators(&self) -> usize {
        self.separators.len()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// `g[φ]` for an answer given as separator indices.
    pub fn saturate_answer(&self, answer: &[SepId]) -> Graph {
        let mut h = self.g.clone();
        for &id in answer {
            h.saturate(&self.separators[id as usize]);
        }
        h
    }
}

impl Sgr for EagerMsGraph<'_> {
    type Node = SepId;
    type NodeCursor = usize;
    type Scratch = ();

    fn start_nodes(&self) -> usize {
        0
    }

    fn next_node(&self, cursor: &mut usize) -> Option<SepId> {
        if *cursor < self.separators.len() {
            let id = *cursor as SepId;
            *cursor += 1;
            Some(id)
        } else {
            None
        }
    }

    fn edge(&self, &u: &SepId, &v: &SepId) -> bool {
        u != v && self.crossing_rows[u as usize].contains(v)
    }

    fn extend(&self, base: &[SepId]) -> Vec<SepId> {
        let gphi = self.saturate_answer(base);
        let tri = minimal_triangulation(&gphi, self.triangulator.as_ref());
        let forest = match &tri.peo {
            Some(peo) => CliqueForest::build_with_peo(&tri.graph, peo),
            None => CliqueForest::build(&tri.graph),
        };
        let mut ids: Vec<SepId> = forest
            .minimal_separators()
            .into_iter()
            .map(|sep| {
                *self
                    .index
                    .get(&sep)
                    .expect("Extend produced a separator outside MinSep(g)")
            })
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Iterator over all minimal triangulations with **polynomial delay**,
/// assuming `|MinSep(g)|` is small enough to materialize (Section 7's
/// special case). Produces exactly the same set as the lazy enumerator.
pub struct EagerMinimalTriangulations<'g> {
    inner: mintri_sgr::EnumMis<EagerMsGraph<'g>>,
    g: &'g Graph,
}

impl<'g> EagerMinimalTriangulations<'g> {
    /// Materializes the separator graph and starts the enumeration.
    pub fn new(g: &'g Graph) -> Self {
        let ms = EagerMsGraph::new(g);
        EagerMinimalTriangulations {
            inner: mintri_sgr::EnumMis::upon_generation(ms),
            g,
        }
    }

    /// Number of minimal separators that were materialized.
    pub fn num_separators(&self) -> usize {
        self.inner.sgr().num_separators()
    }
}

impl Iterator for EagerMinimalTriangulations<'_> {
    type Item = mintri_triangulate::Triangulation;

    fn next(&mut self) -> Option<Self::Item> {
        let answer = self.inner.next()?;
        let h = self.inner.sgr().saturate_answer(&answer);
        let fill = h.fill_edges_over(self.g);
        Some(mintri_triangulate::Triangulation {
            graph: h,
            fill,
            peo: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinimalTriangulationsEnumerator;

    #[test]
    fn eager_matches_lazy_on_a_suite() {
        let graphs = vec![
            Graph::cycle(6),
            Graph::cycle(4),
            Graph::path(5),
            Graph::complete(4),
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 2),
                ],
            ),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]),
        ];
        for g in graphs {
            let mut eager: Vec<_> = EagerMinimalTriangulations::new(&g)
                .map(|t| t.graph.edges())
                .collect();
            eager.sort();
            let mut lazy: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
                .map(|t| t.graph.edges())
                .collect();
            lazy.sort();
            assert_eq!(eager, lazy, "mismatch on {g:?}");
        }
    }

    #[test]
    fn crossing_matrix_is_symmetric_and_irreflexive() {
        let g = Graph::cycle(7);
        let ms = EagerMsGraph::new(&g);
        let s = ms.num_separators();
        assert_eq!(s, 14); // C7: non-adjacent pairs
        for i in 0..s as SepId {
            assert!(!ms.edge(&i, &i));
            for j in 0..s as SepId {
                assert_eq!(ms.edge(&i, &j), ms.edge(&j, &i));
            }
        }
    }

    #[test]
    fn separator_count_exposed() {
        let g = Graph::cycle(5);
        let e = EagerMinimalTriangulations::new(&g);
        assert_eq!(e.num_separators(), 5);
        assert_eq!(e.count(), 5);
    }
}

//! Sharded, lock-striped concurrent memo tables behind [`crate::MsGraph`].
//!
//! The enumeration stack memoizes two things per input graph: the
//! *separator interner* (content-addressed `NodeSet` → dense [`SepId`])
//! and the *crossing relation* (unordered `SepId` pair → `bool`). Both
//! used to live in `RefCell<FxHashMap>`s, which pinned `MsGraph` to one
//! thread; they are now striped over `N` mutex-guarded shards selected by
//! key hash, so concurrent `EnumMIS` workers — and concurrent *queries*
//! sharing one warm [`crate::MsGraph`] through the engine's session layer
//! — hit different stripes and compute each separator and each crossing
//! test at most once per graph.
//!
//! Interned ids stay **dense and insertion-ordered** (`0, 1, 2, …`): the
//! id → set direction is an append-only vector under a read-write lock,
//! taken for writing only on a genuinely new separator. Under a
//! single-threaded caller the assignment order — and therefore the whole
//! enumeration order — is identical to the historical `RefCell`
//! implementation.

use mintri_graph::{FxHashMap, FxHasher, NodeSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, RwLock};

/// Dense identifier of an interned minimal separator.
pub type SepId = u32;

/// Number of lock stripes. A power of two so shard selection is a mask;
/// 16 stripes keep contention negligible for any thread count this
/// workspace targets while costing ~1 KiB of locks per graph.
const SHARDS: usize = 16;

/// Selects one of `stripes` lock stripes for `key` (`stripes` must be a
/// power of two). The low hash bits feed the hash-map bucket index inside
/// a stripe, so the stripe comes from the *high* bits to keep the two
/// selections independent. Shared with the engine's concurrent seen-set.
pub fn stripe_of<K: Hash>(key: &K, stripes: usize) -> usize {
    debug_assert!(stripes.is_power_of_two());
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() >> 57) as usize & (stripes - 1)
}

fn shard_of<K: Hash>(key: &K) -> usize {
    stripe_of(key, SHARDS)
}

/// Content-addressed interner from [`NodeSet`] separators to dense
/// [`SepId`]s, safe for concurrent use from many threads.
///
/// Separators are stored as `Arc<NodeSet>`, shared between the
/// content → id map and the id → content vector, so lookups hand out
/// reference-counted handles instead of cloning bitsets under the lock.
pub struct ShardedInterner {
    /// content → id, striped by content hash (`Arc<NodeSet>: Borrow<NodeSet>`
    /// lets callers probe by reference, no allocation on the hit path).
    shards: [Mutex<FxHashMap<Arc<NodeSet>, SepId>>; SHARDS],
    /// id → content, append-only; write-locked only when a new separator
    /// is first seen.
    sets: RwLock<Vec<Arc<NodeSet>>>,
}

impl Default for ShardedInterner {
    fn default() -> Self {
        ShardedInterner {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
            sets: RwLock::new(Vec::new()),
        }
    }
}

impl ShardedInterner {
    /// Interns `s`, returning its dense id; equal sets always map to the
    /// same id, no matter which thread got there first.
    pub fn intern(&self, s: NodeSet) -> SepId {
        let mut shard = self.shards[shard_of(&s)].lock().unwrap();
        if let Some(&id) = shard.get(&s) {
            return id;
        }
        self.insert_new(&mut shard, Arc::new(s))
    }

    /// Interns by reference: a pure lookup when the set is already known
    /// (the steady state of the enumeration kernel), cloning `s` only
    /// when it is genuinely new.
    pub fn intern_ref(&self, s: &NodeSet) -> SepId {
        let mut shard = self.shards[shard_of(s)].lock().unwrap();
        if let Some(&id) = shard.get(s) {
            return id;
        }
        self.insert_new(&mut shard, Arc::new(s.clone()))
    }

    /// Assigns the next dense id to a genuinely new separator. The caller
    /// holds the (missed) shard lock, which is what makes the assignment
    /// unique; lock order is always shard → sets, so this cannot deadlock.
    fn insert_new(&self, shard: &mut FxHashMap<Arc<NodeSet>, SepId>, s: Arc<NodeSet>) -> SepId {
        let mut sets = self.sets.write().unwrap();
        let id = sets.len() as SepId;
        sets.push(Arc::clone(&s));
        drop(sets);
        shard.insert(s, id);
        id
    }

    /// Number of distinct separators interned so far.
    pub fn len(&self) -> usize {
        self.sets.read().unwrap().len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A shared handle on the separator behind `id` (refcount bump, no
    /// bitset copy).
    pub fn get(&self, id: SepId) -> Arc<NodeSet> {
        Arc::clone(&self.sets.read().unwrap()[id as usize])
    }

    /// Runs `f` over the full id → set table (ids index the slice).
    pub fn with_all<R>(&self, f: impl FnOnce(&[Arc<NodeSet>]) -> R) -> R {
        f(&self.sets.read().unwrap())
    }

    /// Shared handles on the two separators behind `(a, b)` — refcount
    /// bumps under a brief read lock, no bitset copies.
    pub fn pair(&self, a: SepId, b: SepId) -> (Arc<NodeSet>, Arc<NodeSet>) {
        let sets = self.sets.read().unwrap();
        (Arc::clone(&sets[a as usize]), Arc::clone(&sets[b as usize]))
    }
}

/// Concurrent memo table for a symmetric boolean relation over interned
/// ids (the crossing relation `S ♮ T`), striped by pair hash.
pub struct ShardedPairMemo {
    shards: [Mutex<FxHashMap<(SepId, SepId), bool>>; SHARDS],
}

impl Default for ShardedPairMemo {
    fn default() -> Self {
        ShardedPairMemo {
            shards: std::array::from_fn(|_| Mutex::new(FxHashMap::default())),
        }
    }
}

impl ShardedPairMemo {
    /// Cached answer for the (unordered, pre-canonicalized) pair, if any.
    pub fn get(&self, key: (SepId, SepId)) -> Option<bool> {
        self.shards[shard_of(&key)]
            .lock()
            .unwrap()
            .get(&key)
            .copied()
    }

    /// Records an answer. Two threads racing on the same key write the
    /// same value (the relation is a pure function of the graph), so
    /// last-write-wins is correct.
    pub fn insert(&self, key: (SepId, SepId), value: bool) {
        self.shards[shard_of(&key)]
            .lock()
            .unwrap()
            .insert(key, value);
    }

    /// Total number of memoized pairs (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// `true` when no pair has been memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn interner_ids_are_dense_and_content_addressed() {
        let interner = ShardedInterner::default();
        let a = interner.intern(NodeSet::from_iter(8, [0, 2]));
        let b = interner.intern(NodeSet::from_iter(8, [1, 3]));
        let a2 = interner.intern(NodeSet::from_iter(8, [0, 2]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!({ a.max(b) } as usize + 1, interner.len());
        assert_eq!(interner.get(a).to_vec(), vec![0, 2]);
    }

    #[test]
    fn interner_is_race_free_across_threads() {
        let interner = Arc::new(ShardedInterner::default());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let interner = Arc::clone(&interner);
                std::thread::spawn(move || {
                    let mut ids = Vec::new();
                    for i in 0..200u32 {
                        // every thread interns the same 200 sets, rotated
                        let i = (i + t * 25) % 200;
                        ids.push((i, interner.intern(NodeSet::from_iter(256, [i, i + 1]))));
                    }
                    ids
                })
            })
            .collect();
        let all: Vec<_> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(interner.len(), 200, "each distinct set interned once");
        for (i, id) in all {
            assert_eq!(
                interner.get(id).to_vec(),
                vec![i, i + 1],
                "id must resolve to the set that produced it"
            );
        }
    }

    #[test]
    fn pair_memo_roundtrips() {
        let memo = ShardedPairMemo::default();
        assert_eq!(memo.get((1, 2)), None);
        memo.insert((1, 2), true);
        memo.insert((3, 4), false);
        assert_eq!(memo.get((1, 2)), Some(true));
        assert_eq!(memo.get((3, 4)), Some(false));
        assert_eq!(memo.len(), 2);
    }
}

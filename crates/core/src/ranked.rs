//! Budgeted best-k selection over the triangulation stream — the paper's
//! "let the application choose the best according to its internal measure"
//! workflow (Section 1), packaged. (Exact *ranked* enumeration with
//! delay guarantees is the follow-up work of Ravid et al. [38]; this module
//! provides the anytime approximation the original paper's experiments
//! perform.)

use crate::{EnumerationBudget, MinimalTriangulationsEnumerator};
use mintri_graph::Graph;
use mintri_triangulate::Triangulation;
use std::time::Instant;

/// Runs the enumeration under `budget` and returns the `k` best
/// triangulations according to `cost` (smaller is better), in ascending
/// cost order. Ties keep the earlier-produced result first.
///
/// ```
/// use mintri_core::{best_k_by, EnumerationBudget};
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(7);
/// let best = best_k_by(&g, 3, EnumerationBudget::unlimited(), |t| t.fill_count());
/// assert_eq!(best.len(), 3);
/// // every minimal triangulation of a cycle has fill n-3
/// assert!(best.iter().all(|t| t.fill_count() == 4));
/// ```
pub fn best_k_by<C, F>(
    g: &Graph,
    k: usize,
    budget: EnumerationBudget,
    cost: F,
) -> Vec<Triangulation>
where
    C: Ord,
    F: Fn(&Triangulation) -> C,
{
    best_k_of_stream(MinimalTriangulationsEnumerator::new(g), k, budget, cost)
}

/// The selection loop behind [`best_k_by`], applicable to *any*
/// triangulation stream (the engine's parallel/cached streams reuse it):
/// keep the `k` best under `cost` within `budget`, ascending, ties
/// keeping the earlier-produced result first.
pub fn best_k_of_stream<C, F>(
    stream: impl IntoIterator<Item = Triangulation>,
    k: usize,
    budget: EnumerationBudget,
    cost: F,
) -> Vec<Triangulation>
where
    C: Ord,
    F: Fn(&Triangulation) -> C,
{
    let started = Instant::now();
    // (cost, production index) keeps ordering deterministic under ties
    let mut kept: Vec<(C, usize, Triangulation)> = Vec::with_capacity(k + 1);
    for (i, tri) in stream.into_iter().enumerate() {
        if budget_exhausted(&budget, i, started) {
            break;
        }
        let c = cost(&tri);
        // only insert if it beats the current worst (or there is room)
        if kept.len() < k || kept.last().is_some_and(|(wc, wi, _)| (&c, &i) < (wc, wi)) {
            let pos = kept
                .binary_search_by(|(ec, ei, _)| (ec, ei).cmp(&(&c, &i)))
                .unwrap_or_else(|p| p);
            kept.insert(pos, (c, i, tri));
            kept.truncate(k);
        }
    }
    kept.into_iter().map(|(_, _, t)| t).collect()
}

fn budget_exhausted(budget: &EnumerationBudget, produced: usize, started: Instant) -> bool {
    if budget.max_results.is_some_and(|n| produced >= n) {
        return true;
    }
    budget.time_limit.is_some_and(|t| started.elapsed() >= t)
}

/// The minimum-width triangulation found within `budget`.
pub fn best_width(g: &Graph, budget: EnumerationBudget) -> Option<Triangulation> {
    best_k_by(g, 1, budget, |t| t.width()).into_iter().next()
}

/// The minimum-fill triangulation found within `budget`.
pub fn best_fill(g: &Graph, budget: EnumerationBudget) -> Option<Triangulation> {
    best_k_by(g, 1, budget, |t| t.fill_count())
        .into_iter()
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    #[test]
    fn best_fill_on_a_cycle_is_optimal() {
        let g = Graph::cycle(8);
        let best = best_fill(&g, EnumerationBudget::unlimited()).unwrap();
        assert_eq!(best.fill_count(), 5);
    }

    #[test]
    fn best_width_matches_exhaustive_minimum() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        let exhaustive_min = BruteForce::minimal_triangulations(&g)
            .iter()
            .map(mintri_chordal::treewidth_of_chordal)
            .min()
            .unwrap();
        let best = best_width(&g, EnumerationBudget::unlimited()).unwrap();
        assert_eq!(best.width(), exhaustive_min);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let g = Graph::cycle(6);
        let top = best_k_by(&g, 5, EnumerationBudget::unlimited(), |t| t.fill_count());
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].fill_count() <= w[1].fill_count());
        }
        // k larger than the answer count returns everything
        let all = best_k_by(&g, 100, EnumerationBudget::unlimited(), |t| t.width());
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn result_budget_limits_exploration() {
        let g = Graph::cycle(9);
        let top = best_k_by(&g, 2, EnumerationBudget::results(5), |t| t.fill_count());
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn zero_k_is_empty() {
        let g = Graph::cycle(5);
        assert!(best_k_by(&g, 0, EnumerationBudget::unlimited(), |t| t.width()).is_empty());
    }
}

//! Best-k selection over the triangulation stream — the paper's "let the
//! application choose the best according to its internal measure" workflow
//! (Section 1) — in two gears:
//!
//! * **Exhaustive** (`TopK` / [`best_k_of_stream`]): scan every
//!   triangulation, keep the `k` best. Works with *any* cost closure, and
//!   remains the fallback for non-serializable application measures.
//! * **Ranked** ([`RankedStream`] / [`RankedComposed`]): emit
//!   triangulations in ascending cost order, output-sensitively, after the
//!   fashion of Ravid–Medini–Kimelfeld's "Ranked Enumeration of Minimal
//!   Triangulations" [38]. The stream is a best-first reordering buffer
//!   over the deterministic `EnumMIS` schedule: results are pulled into a
//!   binary heap keyed by `(cost, production index)` and released as soon
//!   as an *admissible cost floor* ([`cost_floor`]) proves nothing cheaper
//!   can still arrive. On the cost plateaus that dominate the serializable
//!   measures (every minimal triangulation of a cycle has the same width
//!   *and* the same fill), the floor is tight and a best-k query stops
//!   after ~`k` pulls instead of draining the space.
//!
//! The two gears agree **bit for bit**: same winners, same order. The tie
//! policy is pinned on `TopK::offer`, and the ranked gear preserves it
//! because the floor gate only releases a result when every future result
//! is provably no cheaper — and a future cost-tie always loses on the
//! production index.
//!
//! The typed front door for this workload is
//! [`Task::BestK`](crate::query::Task) — `Query::best_k(k, cost)` — which
//! routes through the ranked gear by default (`Query::ranked(false)` is
//! the escape hatch); [`best_k_of_stream`] remains for
//! application-specific (non-serializable) cost closures over any
//! triangulation stream.

use crate::query::{CostMeasure, TriangulationStream};
use crate::EnumerationBudget;
use mintri_graph::{Graph, Node};
use mintri_sgr::EnumMisStats;
use mintri_telemetry::Counter;
use mintri_triangulate::Triangulation;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// The `k`-best selection state shared by [`best_k_of_stream`] and the
/// query layer's exhaustive [`Task::BestK`](crate::query::Task) path.
///
/// **Tie policy (pinned):** results are ordered by `(cost, production
/// index)`, ascending — of two results with equal cost, the one the
/// underlying enumeration produced *earlier* wins, and the kept `k` are
/// reported in exactly that order. [`RankedStream`] and
/// [`RankedComposed`] emit the identical order under ties (the
/// regression test `ranked_stream_matches_top_k_order_under_ties` and
/// the cross-gear proptests hold both gears to it), so `ranked(true)`
/// and `ranked(false)` queries are observationally equivalent on the
/// winners.
pub(crate) struct TopK<C: Ord> {
    k: usize,
    // (cost, production index) keeps ordering deterministic under ties
    kept: Vec<(C, usize, Triangulation)>,
}

impl<C: Ord> TopK<C> {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            kept: Vec::with_capacity(k.min(1024) + 1),
        }
    }

    /// Offers the `i`-th scanned triangulation with its cost. `i` must be
    /// the production index of the underlying enumeration: it is the tie
    /// breaker — equal-cost results keep their production order, so the
    /// `i`-th result is kept over a later equal-cost `j`-th (`i < j`).
    pub(crate) fn offer(&mut self, c: C, i: usize, tri: Triangulation) {
        // only insert if it beats the current worst (or there is room)
        if self.kept.len() < self.k
            || self
                .kept
                .last()
                .is_some_and(|(wc, wi, _)| (&c, &i) < (wc, wi))
        {
            let pos = self
                .kept
                .binary_search_by(|(ec, ei, _)| (ec, ei).cmp(&(&c, &i)))
                .unwrap_or_else(|p| p);
            self.kept.insert(pos, (c, i, tri));
            self.kept.truncate(self.k);
        }
    }

    /// The winners, ascending by `(cost, production index)`.
    pub(crate) fn into_vec(self) -> Vec<Triangulation> {
        self.kept.into_iter().map(|(_, _, t)| t).collect()
    }
}

/// The selection loop behind the exhaustive [`Task::BestK`](crate::query::Task)
/// path, applicable to *any* triangulation stream with *any* cost closure
/// (the engine's replayed/parallel streams and application-specific
/// measures reuse it): keep the `k` best under `cost` within `budget`,
/// ascending, ties keeping the earlier-produced result first (the
/// `TopK` tie policy). This is the fallback for cost measures that
/// cannot ride the ranked gear — closures are not serializable and have
/// no admissible floor.
pub fn best_k_of_stream<C, F>(
    stream: impl IntoIterator<Item = Triangulation>,
    k: usize,
    budget: EnumerationBudget,
    cost: F,
) -> Vec<Triangulation>
where
    C: Ord,
    F: Fn(&Triangulation) -> C,
{
    let started = Instant::now();
    let mut top = TopK::new(k);
    for (i, tri) in stream.into_iter().enumerate() {
        if budget.exhausted(i, started) {
            break;
        }
        let c = cost(&tri);
        top.offer(c, i, tri);
    }
    top.into_vec()
}

// ---------------------------------------------------------------------
// Admissible cost floors
// ---------------------------------------------------------------------

/// An *admissible* lower bound on `measure` over **every** minimal
/// triangulation of `g` — the certificate that lets [`RankedStream`]
/// release a buffered result early: once a result's cost is down at the
/// floor, no future result can undercut it (and a future cost-tie loses
/// on production index). A loose floor never breaks correctness, only
/// output-sensitivity (the stream degrades toward a full sorted drain).
///
/// * [`CostMeasure::Width`]: the degeneracy of `g`. Degeneracy ≤
///   treewidth ≤ width of any triangulation.
/// * [`CostMeasure::Fill`]: a greedy vertex-disjoint packing of shortest
///   (hence chordless) cycles, each of length `ℓ` contributing `ℓ − 3`.
///   Any triangulation must add ≥ `ℓ − 3` fill edges inside each
///   chordless cycle, and vertex-disjoint cycles have disjoint fill-edge
///   candidates, so the contributions add.
///
/// On the families where best-k matters most — cycles with a few chords,
/// chained cycles — both floors are *tight* (every minimal triangulation
/// of `C_n` has width 2 and fill `n − 3`), which is what turns best-k
/// from a full drain into ~`k` pulls.
pub fn cost_floor(g: &Graph, measure: CostMeasure) -> usize {
    match measure {
        CostMeasure::Width => degeneracy(g),
        CostMeasure::Fill => fill_packing_floor(g),
    }
}

/// The degeneracy of `g`: the largest minimum degree over the
/// peeling-order suffixes. A classic treewidth lower bound.
fn degeneracy(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as Node)).collect();
    let mut alive = vec![true; n];
    let mut best = 0;
    for _ in 0..n {
        let Some(v) = (0..n).filter(|&v| alive[v]).min_by_key(|&v| deg[v]) else {
            break;
        };
        best = best.max(deg[v]);
        alive[v] = false;
        for u in g.neighbors(v as Node).iter() {
            if alive[u as usize] {
                deg[u as usize] -= 1;
            }
        }
    }
    best
}

/// Greedy vertex-disjoint shortest-cycle packing: repeatedly find a
/// shortest cycle in the residual graph (shortest ⇒ chordless; chordless
/// survives vertex deletion), charge `len − 3`, delete its vertices.
fn fill_packing_floor(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut alive = vec![true; n];
    let mut floor = 0;
    while let Some(cycle) = shortest_cycle(g, &alive) {
        floor += cycle.len().saturating_sub(3);
        for v in cycle {
            alive[v] = false;
        }
    }
    floor
}

/// A shortest cycle among `alive` vertices, or `None` when the residual
/// graph is acyclic. BFS from every vertex; a non-tree edge `(u, w)` seen
/// from root `r` witnesses a closed walk of length `dist(u) + dist(w) + 1`
/// ≥ girth, with equality (and a *simple* reconstruction) attained from
/// any root on a shortest cycle. The reconstruction is verified; on any
/// mismatch the packing simply stops early, keeping the floor admissible.
fn shortest_cycle(g: &Graph, alive: &[bool]) -> Option<Vec<usize>> {
    let n = g.num_nodes();
    let mut best: Option<(usize, usize)> = None; // (walk length, root)
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let bfs = |root: usize,
               dist: &mut Vec<usize>,
               parent: &mut Vec<usize>,
               queue: &mut std::collections::VecDeque<usize>| {
        dist.iter_mut().for_each(|d| *d = usize::MAX);
        parent.iter_mut().for_each(|p| *p = usize::MAX);
        queue.clear();
        dist[root] = 0;
        queue.push_back(root);
        let mut shortest = usize::MAX;
        while let Some(u) = queue.pop_front() {
            for w in g.neighbors(u as Node).iter() {
                let w = w as usize;
                if !alive[w] {
                    continue;
                }
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent[w] = u;
                    queue.push_back(w);
                } else if parent[u] != w && parent[w] != u {
                    shortest = shortest.min(dist[u] + dist[w] + 1);
                }
            }
        }
        shortest
    };
    for r in (0..n).filter(|&r| alive[r]) {
        let walk = bfs(r, &mut dist, &mut parent, &mut queue);
        if walk < best.map_or(usize::MAX, |(len, _)| len) {
            best = Some((walk, r));
        }
    }
    let (len, root) = best?;
    // Re-run BFS from the witnessing root and reconstruct the cycle from
    // the cheapest non-tree edge.
    bfs(root, &mut dist, &mut parent, &mut queue);
    let mut edge: Option<(usize, usize)> = None;
    'scan: for u in (0..n).filter(|&u| alive[u] && dist[u] != usize::MAX) {
        for w in g.neighbors(u as Node).iter() {
            let w = w as usize;
            if alive[w]
                && dist[w] != usize::MAX
                && parent[u] != w
                && parent[w] != u
                && dist[u] + dist[w] + 1 == len
            {
                edge = Some((u, w));
                break 'scan;
            }
        }
    }
    let (u, w) = edge?;
    let path_to_root = |mut v: usize| {
        let mut path = vec![v];
        while parent[v] != usize::MAX {
            v = parent[v];
            path.push(v);
        }
        path
    };
    let (pu, pw) = (path_to_root(u), path_to_root(w));
    let mut cycle = pu;
    // drop the shared root from one side; at the minimum the two paths
    // are internally disjoint, which the length check below verifies
    cycle.extend(pw.into_iter().rev().skip(1));
    if cycle.len() != len {
        return None;
    }
    let mut seen = vec![false; n];
    for &v in &cycle {
        if seen[v] {
            return None;
        }
        seen[v] = true;
    }
    Some(cycle)
}

// ---------------------------------------------------------------------
// The ranked gear: a best-first reordering buffer with a floor gate
// ---------------------------------------------------------------------

/// One ranked emission: the triangulation, its cost under the stream's
/// measure, and its production index in the underlying deterministic
/// enumeration (the tie breaker; see `TopK`).
pub struct RankedItem {
    pub tri: Triangulation,
    pub cost: usize,
    pub index: usize,
}

/// A heap entry ordered by `(cost, production index)` — the pinned tie
/// policy. Production indices are unique, so the order is total.
struct Entry {
    cost: usize,
    index: usize,
    tri: Triangulation,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.index == other.index
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cost, self.index).cmp(&(other.cost, other.index))
    }
}

/// Ranked (ascending-cost) enumeration over any deterministic
/// [`TriangulationStream`]: a min-heap reordering buffer keyed
/// `(cost, production index)`, released through an admissible floor gate.
///
/// The stream pulls raw results — each pull is one *expansion* of the
/// underlying `EnumMIS` schedule over the minimal-separator space, and
/// reuses whatever crossing/interner memos the wrapped stream carries,
/// so warm engine sessions accelerate ranked queries exactly as they do
/// exhaustive ones. A buffered result is emitted as soon as its cost is
/// ≤ `floor` (nothing cheaper can still arrive, and a future cost-tie
/// loses on production index) or the source is exhausted (the heap then
/// drains in sorted order). With a tight floor — see [`cost_floor`] —
/// a best-k consumer stops after ~`k` expansions.
///
/// Emission order is therefore exactly ascending `(cost, production
/// index)`: bit-for-bit the order `TopK` reports, for any prefix.
pub struct RankedStream<'a> {
    inner: Option<Box<dyn TriangulationStream + 'a>>,
    measure: CostMeasure,
    floor: usize,
    heap: BinaryHeap<Reverse<Entry>>,
    pulled: usize,
    complete: bool,
    replay: bool,
    stats: Option<EnumMisStats>,
    expansions: Option<Arc<Counter>>,
}

impl<'a> RankedStream<'a> {
    /// Wraps `inner` — which must enumerate deterministically; its
    /// production order is the tie order — with the admissible `floor`
    /// for `measure` (see [`cost_floor`]).
    pub fn over(
        inner: Box<dyn TriangulationStream + 'a>,
        measure: CostMeasure,
        floor: usize,
    ) -> Self {
        let replay = inner.is_replay();
        RankedStream {
            inner: Some(inner),
            measure,
            floor,
            heap: BinaryHeap::new(),
            pulled: 0,
            complete: false,
            replay,
            stats: None,
            expansions: None,
        }
    }

    /// Counts every raw pull on `counter` (engine telemetry:
    /// `mintri_engine_ranked_expansions_total`). Write-only on the hot
    /// path — one relaxed atomic add per expansion.
    pub fn with_expansion_counter(mut self, counter: Arc<Counter>) -> Self {
        self.expansions = Some(counter);
        self
    }

    /// Raw results pulled from the underlying stream so far.
    pub fn expansions(&self) -> usize {
        self.pulled
    }

    /// The next emission in ascending `(cost, production index)` order,
    /// with its cost and tie index exposed (the composed odometer feeds
    /// on these).
    pub fn next_ranked(&mut self) -> Option<RankedItem> {
        loop {
            let can_emit = match self.heap.peek() {
                Some(Reverse(e)) => self.inner.is_none() || e.cost <= self.floor,
                None => false,
            };
            if can_emit {
                let Reverse(e) = self.heap.pop().expect("peeked entry");
                return Some(RankedItem {
                    tri: e.tri,
                    cost: e.cost,
                    index: e.index,
                });
            }
            let inner = self.inner.as_mut()?;
            match inner.next_tri() {
                Some(tri) => {
                    if let Some(c) = &self.expansions {
                        c.inc();
                    }
                    let cost = self.measure.evaluate(&tri);
                    self.heap.push(Reverse(Entry {
                        cost,
                        index: self.pulled,
                        tri,
                    }));
                    self.pulled += 1;
                }
                None => {
                    self.complete = inner.finished();
                    self.stats = inner.enum_stats();
                    self.inner = None;
                    // loop around: drain the heap in sorted order (on an
                    // abort the buffered prefix is still correct — every
                    // emitted result was provably final)
                }
            }
        }
    }
}

impl TriangulationStream for RankedStream<'_> {
    fn next_tri(&mut self) -> Option<Triangulation> {
        self.next_ranked().map(|item| item.tri)
    }

    fn finished(&self) -> bool {
        self.complete
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        match &self.inner {
            Some(inner) => inner.enum_stats(),
            None => self.stats,
        }
    }

    fn is_replay(&self) -> bool {
        self.replay
    }
}

// ---------------------------------------------------------------------
// The ranked odometer over composed plans
// ---------------------------------------------------------------------

/// One atom's contribution to a [`RankedComposed`] stream: its ranked
/// stream (atom-local node ids) plus the map back into the composed
/// graph's ids. The ranked sibling of [`AtomStream`](crate::plan::AtomStream).
pub struct RankedAtom<'a> {
    pub stream: RankedStream<'a>,
    pub old_of: Vec<Node>,
}

/// One atom emission, cached: fill mapped to base-graph ids, cost, and
/// the atom's own production index (its digit order in the exhaustive
/// odometer — the tie key).
struct RankedResult {
    fill: Vec<(Node, Node)>,
    cost: usize,
    index: usize,
}

struct RankedCursor<'a> {
    stream: Option<RankedStream<'a>>,
    old_of: Vec<Node>,
    /// Emissions so far, in the ranked order `(cost, index)`.
    results: Vec<RankedResult>,
    finished: bool,
    aborted: bool,
    replay: bool,
    stats: Option<EnumMisStats>,
}

impl<'a> RankedCursor<'a> {
    fn new(atom: RankedAtom<'a>) -> Self {
        let replay = atom.stream.is_replay();
        RankedCursor {
            stream: Some(atom.stream),
            old_of: atom.old_of,
            results: Vec::new(),
            finished: false,
            aborted: false,
            replay,
            stats: None,
        }
    }

    /// Pulls one more emission into `results`; `false` when the stream
    /// has ended (check `aborted` to tell an abort from completion).
    fn fetch(&mut self) -> bool {
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        match stream.next_ranked() {
            Some(item) => {
                let fill = item
                    .tri
                    .fill
                    .iter()
                    .map(|&(u, v)| {
                        let (a, b) = (self.old_of[u as usize], self.old_of[v as usize]);
                        if a < b {
                            (a, b)
                        } else {
                            (b, a)
                        }
                    })
                    .collect();
                self.results.push(RankedResult {
                    fill,
                    cost: item.cost,
                    index: item.index,
                });
                true
            }
            None => {
                self.finished = stream.finished();
                self.aborted = !self.finished;
                self.stats = stream.enum_stats();
                self.stream = None;
                false
            }
        }
    }

    fn live(&self) -> bool {
        self.stream.is_some()
    }

    /// Cheapest emission cost; cursors are primed before use.
    fn min_cost(&self) -> usize {
        self.results[0].cost
    }

    fn last_cost(&self) -> Option<usize> {
        self.results.last().map(|r| r.cost)
    }

    fn stats(&self) -> Option<EnumMisStats> {
        match &self.stream {
            Some(stream) => stream.enum_stats(),
            None => self.stats,
        }
    }
}

/// An atom's qualifying window for the current level.
enum QualView {
    /// Single-cost window: the plateau `cost == bound` at the head of the
    /// ranked emission order, streamed **lazily** — within equal cost the
    /// ranked order *is* the production order, so the plateau arrives
    /// already digit-ordered and the big atom never drains.
    Plateau { bound: usize },
    /// Multi-cost window `cost ≤ bound`, fully materialized and re-sorted
    /// by the atom's production index (the exhaustive odometer's digit
    /// order). `positions` index into the cursor's `results`.
    Sorted { positions: Vec<usize>, bound: usize },
}

impl QualView {
    fn bound(&self) -> usize {
        match self {
            QualView::Plateau { bound } => *bound,
            QualView::Sorted { bound, .. } => *bound,
        }
    }
}

/// One digit of the current tuple.
struct Frame {
    /// Position within the atom's qualifying sequence.
    view_pos: usize,
    /// Index into the cursor's `results`.
    result_idx: usize,
    cost: usize,
}

enum Qual {
    At(usize),
    End,
    Aborted,
}

enum Step {
    Found,
    LevelDone,
    Aborted,
}

enum LevelAdvance {
    Next(usize),
    Complete,
    Aborted,
}

/// The ranked odometer over a composed plan: emits the *composed*
/// minimal triangulations of the base graph in ascending total-cost
/// order, pulling each atom's [`RankedStream`] only as far as the
/// current cost level demands — a Lawler/Murty-style successor expansion
/// collapsed onto the plan's lattice structure, so planned multi-atom
/// best-k never materializes the cross product.
///
/// Cost aggregation is exact, not heuristic:
/// * **Fill** adds across atoms (fill never crosses the decomposition's
///   clique separators, and distinct atoms cannot contribute the same
///   fill edge — a shared pair lies inside a clique separator and is
///   already an edge);
/// * **Width** is `max(width_const, per-atom widths)` where
///   `width_const` covers the decomposition's *chordal* atoms (every
///   maximal clique of the composed triangulation lives inside some
///   decomposition atom).
///
/// Emission order is ascending `(total cost, per-atom production-index
/// tuple in lex order with the last atom fastest)` — exactly the order
/// the exhaustive [`ComposedStream`](crate::plan::ComposedStream) +
/// `TopK` pipeline reports, bit for bit. Levels advance through
/// *achievable* totals only (a suffix reachable-sum DP over the known
/// per-atom cost values prunes infeasible combinations), and the only
/// place an atom is pulled past its qualifying window is the level
/// advance itself — a best-k consumer that stops inside level 0 pays
/// ~`k` atom pulls, full stop.
pub struct RankedComposed<'a> {
    base: Graph,
    measure: CostMeasure,
    /// Fixed width contribution of the decomposition's chordal atoms
    /// (0 when there are none). Unused for fill: chordal atoms add none.
    width_const: usize,
    cursors: Vec<RankedCursor<'a>>,
    /// Current total-cost level.
    level: usize,
    views: Vec<QualView>,
    /// `suffix_sums[i][s]`: atoms `i..` can contribute exactly `s`
    /// (fill only; index `m` is `{0}`).
    suffix_sums: Vec<Vec<bool>>,
    /// `suffix_has_level[i]`: some atom `≥ i` has a window value equal to
    /// the level (width only, consulted when `level > width_const`).
    suffix_has_level: Vec<bool>,
    frames: Vec<Frame>,
    started: bool,
    fresh_level: bool,
    base_emitted: bool,
    halted: bool,
    complete: bool,
}

impl<'a> RankedComposed<'a> {
    /// `width_const` is the chordal-atom width floor of the plan (pass 0
    /// for fill); see [`Plan::chordal_width`](crate::plan::Plan::chordal_width).
    pub fn new(
        base: Graph,
        measure: CostMeasure,
        width_const: usize,
        atoms: Vec<RankedAtom<'a>>,
    ) -> Self {
        RankedComposed {
            base,
            measure,
            width_const,
            cursors: atoms.into_iter().map(RankedCursor::new).collect(),
            level: 0,
            views: Vec::new(),
            suffix_sums: Vec::new(),
            suffix_has_level: Vec::new(),
            frames: Vec::new(),
            started: false,
            fresh_level: false,
            base_emitted: false,
            halted: false,
            complete: false,
        }
    }

    /// The `pos`-th qualifying result of atom `i` at the current level,
    /// in digit (production-index) order.
    fn qual(&mut self, i: usize, pos: usize) -> Qual {
        match &self.views[i] {
            QualView::Plateau { bound } => {
                let bound = *bound;
                while self.cursors[i].results.len() <= pos {
                    if !self.cursors[i].fetch() {
                        return if self.cursors[i].aborted {
                            Qual::Aborted
                        } else {
                            Qual::End
                        };
                    }
                }
                if self.cursors[i].results[pos].cost > bound {
                    Qual::End
                } else {
                    Qual::At(pos)
                }
            }
            QualView::Sorted { positions, .. } => match positions.get(pos) {
                Some(&idx) => Qual::At(idx),
                None => Qual::End,
            },
        }
    }

    /// Whether digit value `cost` at atom `i` can extend the current
    /// prefix (`frames[..i]`) to an exact-level tuple.
    fn digit_feasible(&self, i: usize, cost: usize) -> bool {
        match self.measure {
            CostMeasure::Fill => {
                let partial: usize = self.frames[..i].iter().map(|f| f.cost).sum();
                let rem = self.level - partial;
                cost <= rem
                    && self.suffix_sums[i + 1]
                        .get(rem - cost)
                        .copied()
                        .unwrap_or(false)
            }
            CostMeasure::Width => {
                let need_level = self.level > self.width_const
                    && !self.frames[..i].iter().any(|f| f.cost == self.level);
                !need_level || cost == self.level || self.suffix_has_level[i + 1]
            }
        }
    }

    /// First feasible digit of atom `i` at position ≥ `pos`, or `None`
    /// when the window is exhausted for this prefix.
    fn next_valid(&mut self, i: usize, mut pos: usize) -> Result<Option<Frame>, ()> {
        if let QualView::Plateau { bound } = self.views[i] {
            // every plateau value is the same: decide feasibility once,
            // then only existence remains — this is what keeps a large
            // single-cost atom from draining
            if !self.digit_feasible(i, bound) {
                return Ok(None);
            }
            return match self.qual(i, pos) {
                Qual::Aborted => Err(()),
                Qual::End => Ok(None),
                Qual::At(idx) => {
                    let cost = self.cursors[i].results[idx].cost;
                    Ok(Some(Frame {
                        view_pos: pos,
                        result_idx: idx,
                        cost,
                    }))
                }
            };
        }
        loop {
            match self.qual(i, pos) {
                Qual::Aborted => return Err(()),
                Qual::End => return Ok(None),
                Qual::At(idx) => {
                    let cost = self.cursors[i].results[idx].cost;
                    if self.digit_feasible(i, cost) {
                        return Ok(Some(Frame {
                            view_pos: pos,
                            result_idx: idx,
                            cost,
                        }));
                    }
                    pos += 1;
                }
            }
        }
    }

    /// Advances to the next exact-level tuple in digit-lex order (last
    /// atom fastest), or reports the level exhausted.
    fn step_tuple(&mut self, fresh: bool) -> Step {
        let m = self.cursors.len();
        let mut pos;
        if fresh {
            self.frames.clear();
            pos = 0;
        } else {
            let f = self.frames.pop().expect("advance from a complete tuple");
            pos = f.view_pos + 1;
        }
        loop {
            let i = self.frames.len();
            match self.next_valid(i, pos) {
                Err(()) => return Step::Aborted,
                Ok(Some(frame)) => {
                    self.frames.push(frame);
                    if self.frames.len() == m {
                        return Step::Found;
                    }
                    pos = 0;
                }
                Ok(None) => match self.frames.pop() {
                    Some(f) => pos = f.view_pos + 1,
                    None => return Step::LevelDone,
                },
            }
        }
    }

    /// Rebuilds the per-atom windows and suffix feasibility for `level`.
    /// Returns `false` on an abort while draining a multi-cost window.
    fn build_level(&mut self, level: usize) -> bool {
        self.level = level;
        let m = self.cursors.len();
        let total_min: usize = self.cursors.iter().map(|c| c.min_cost()).sum();
        self.views.clear();
        for i in 0..m {
            let min_i = self.cursors[i].min_cost();
            let bound = match self.measure {
                CostMeasure::Fill => level - (total_min - min_i),
                CostMeasure::Width => level,
            };
            if bound <= min_i {
                self.views.push(QualView::Plateau { bound: min_i });
            } else {
                // multi-cost window: materialize it fully (one emission
                // past the bound marks it complete), then re-sort into
                // digit order
                loop {
                    let c = &self.cursors[i];
                    if !c.live() || c.last_cost().is_some_and(|lc| lc > bound) {
                        break;
                    }
                    if !self.cursors[i].fetch() && self.cursors[i].aborted {
                        return false;
                    }
                }
                let mut positions: Vec<usize> = (0..self.cursors[i].results.len())
                    .filter(|&p| self.cursors[i].results[p].cost <= bound)
                    .collect();
                positions.sort_by_key(|&p| self.cursors[i].results[p].index);
                self.views.push(QualView::Sorted { positions, bound });
            }
        }
        match self.measure {
            CostMeasure::Fill => {
                self.suffix_sums = vec![Vec::new(); m + 1];
                let mut acc = vec![false; level + 1];
                acc[0] = true;
                self.suffix_sums[m] = acc.clone();
                for i in (0..m).rev() {
                    let values = self.window_values(i);
                    let mut next = vec![false; level + 1];
                    for (s, _) in acc.iter().enumerate().filter(|(_, &ok)| ok) {
                        for &v in &values {
                            if s + v <= level {
                                next[s + v] = true;
                            }
                        }
                    }
                    acc = next;
                    self.suffix_sums[i] = acc.clone();
                }
            }
            CostMeasure::Width => {
                self.suffix_has_level = vec![false; m + 1];
                for i in (0..m).rev() {
                    let has = self.window_values(i).contains(&level);
                    self.suffix_has_level[i] = has || self.suffix_has_level[i + 1];
                }
            }
        }
        true
    }

    /// Distinct cost values in atom `i`'s current window.
    fn window_values(&self, i: usize) -> Vec<usize> {
        match &self.views[i] {
            QualView::Plateau { bound } => vec![*bound],
            QualView::Sorted { positions, .. } => {
                let mut vals: Vec<usize> = positions
                    .iter()
                    .map(|&p| self.cursors[i].results[p].cost)
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals
            }
        }
    }

    /// The smallest achievable total above the current level, or
    /// `Complete` when the product is exhausted. This is the only place
    /// an atom is pulled past its window (the "plateau end" probe) —
    /// deferred until a consumer actually outlives the level.
    fn next_level(&mut self) -> LevelAdvance {
        let m = self.cursors.len();
        for i in 0..m {
            let bound = self.views[i].bound();
            loop {
                let c = &self.cursors[i];
                if !c.live() || c.last_cost().is_some_and(|lc| lc > bound) {
                    break;
                }
                if !self.cursors[i].fetch() && self.cursors[i].aborted {
                    return LevelAdvance::Aborted;
                }
            }
        }
        let candidate = match self.measure {
            CostMeasure::Width => self
                .cursors
                .iter()
                .flat_map(|c| c.results.iter().map(|r| r.cost))
                .filter(|&v| v > self.level)
                .min(),
            CostMeasure::Fill => {
                // exact-sum DP over the known distinct values; every
                // not-yet-seen value of a live atom exceeds its window
                // bound, so the cheapest unseen-bearing total is already
                // dominated by a known combination
                let value_sets: Vec<Vec<usize>> = self
                    .cursors
                    .iter()
                    .map(|c| {
                        let mut v: Vec<usize> = c.results.iter().map(|r| r.cost).collect();
                        v.sort_unstable();
                        v.dedup();
                        v
                    })
                    .collect();
                let cap: usize = value_sets
                    .iter()
                    .map(|v| v.last().copied().unwrap_or(0))
                    .sum();
                let mut acc = vec![false; cap + 1];
                acc[0] = true;
                for values in &value_sets {
                    let mut next = vec![false; cap + 1];
                    for (s, _) in acc.iter().enumerate().filter(|(_, &ok)| ok) {
                        for &v in values {
                            if s + v <= cap {
                                next[s + v] = true;
                            }
                        }
                    }
                    acc = next;
                }
                (self.level + 1..=cap).find(|&s| acc[s])
            }
        };
        match candidate {
            Some(c) => LevelAdvance::Next(c),
            None => {
                debug_assert!(
                    self.cursors.iter().all(|c| !c.live()),
                    "a live cursor always yields a next-level candidate"
                );
                LevelAdvance::Complete
            }
        }
    }

    fn materialize(&self) -> Triangulation {
        let mut graph = self.base.clone();
        let mut fill = Vec::new();
        for (i, frame) in self.frames.iter().enumerate() {
            for &(u, v) in &self.cursors[i].results[frame.result_idx].fill {
                if !graph.has_edge(u, v) {
                    graph.add_edge(u, v);
                    fill.push((u, v));
                }
            }
        }
        let tri = Triangulation {
            graph,
            fill,
            peo: None,
        };
        debug_assert_eq!(
            self.measure.evaluate(&tri),
            self.level,
            "composed cost aggregation must equal the measure on the materialized result"
        );
        tri
    }
}

impl TriangulationStream for RankedComposed<'_> {
    fn next_tri(&mut self) -> Option<Triangulation> {
        if self.halted {
            return None;
        }
        if self.cursors.is_empty() {
            // fully chordal decomposition: the base is its own (unique)
            // minimal triangulation
            if self.base_emitted {
                self.complete = true;
                self.halted = true;
                return None;
            }
            self.base_emitted = true;
            return Some(Triangulation {
                graph: self.base.clone(),
                fill: Vec::new(),
                peo: None,
            });
        }
        if !self.started {
            self.started = true;
            for i in 0..self.cursors.len() {
                if !self.cursors[i].fetch() {
                    // an empty atom stream: empty product (an abort
                    // leaves `complete` false)
                    self.complete = self.cursors[i].finished;
                    self.halted = true;
                    return None;
                }
            }
            let c0 = match self.measure {
                CostMeasure::Fill => self.cursors.iter().map(|c| c.min_cost()).sum(),
                CostMeasure::Width => self
                    .cursors
                    .iter()
                    .map(|c| c.min_cost())
                    .fold(self.width_const, usize::max),
            };
            if !self.build_level(c0) {
                self.halted = true;
                return None;
            }
            self.fresh_level = true;
        }
        loop {
            let step = self.step_tuple(self.fresh_level);
            self.fresh_level = false;
            match step {
                Step::Found => return Some(self.materialize()),
                Step::Aborted => {
                    self.halted = true;
                    return None;
                }
                Step::LevelDone => match self.next_level() {
                    LevelAdvance::Aborted => {
                        self.halted = true;
                        return None;
                    }
                    LevelAdvance::Complete => {
                        self.complete = self.cursors.iter().all(|c| c.finished);
                        self.halted = true;
                        return None;
                    }
                    LevelAdvance::Next(c) => {
                        if !self.build_level(c) {
                            self.halted = true;
                            return None;
                        }
                        self.fresh_level = true;
                    }
                },
            }
        }
    }

    fn finished(&self) -> bool {
        self.complete
    }

    /// Per-atom kernel counters, summed (the ranked analogue of
    /// [`ComposedStream::enum_stats`](crate::plan::ComposedStream)); the
    /// totals reflect only the expansions the ranked frontier actually
    /// paid for.
    fn enum_stats(&self) -> Option<EnumMisStats> {
        let mut total = EnumMisStats::default();
        for cursor in &self.cursors {
            let s = cursor.stats()?;
            total.extend_calls += s.extend_calls;
            total.edge_queries += s.edge_queries;
            total.nodes_generated += s.nodes_generated;
            total.answers += s.answers;
        }
        Some(total)
    }

    fn is_replay(&self) -> bool {
        !self.cursors.is_empty() && self.cursors.iter().all(|c| c.replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CostMeasure, Query};
    use crate::BruteForce;
    use mintri_graph::Graph;

    fn best_k(
        g: &Graph,
        k: usize,
        cost: CostMeasure,
        budget: EnumerationBudget,
    ) -> Vec<Triangulation> {
        Query::best_k(k, cost)
            .budget(budget)
            .run_local(g)
            .triangulations()
    }

    #[test]
    fn best_fill_on_a_cycle_is_optimal() {
        let g = Graph::cycle(8);
        let best = best_k(&g, 1, CostMeasure::Fill, EnumerationBudget::unlimited());
        assert_eq!(best[0].fill_count(), 5);
    }

    #[test]
    fn best_width_matches_exhaustive_minimum() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        let exhaustive_min = BruteForce::minimal_triangulations(&g)
            .iter()
            .map(mintri_chordal::treewidth_of_chordal)
            .min()
            .unwrap();
        let best = best_k(&g, 1, CostMeasure::Width, EnumerationBudget::unlimited());
        assert_eq!(best[0].width(), exhaustive_min);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let g = Graph::cycle(6);
        let top = best_k(&g, 5, CostMeasure::Fill, EnumerationBudget::unlimited());
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].fill_count() <= w[1].fill_count());
        }
        // k larger than the answer count returns everything
        let all = best_k(&g, 100, CostMeasure::Width, EnumerationBudget::unlimited());
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn result_budget_limits_exploration() {
        let g = Graph::cycle(9);
        let top = best_k(&g, 2, CostMeasure::Fill, EnumerationBudget::results(5));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn zero_k_is_empty() {
        let g = Graph::cycle(5);
        assert!(best_k(&g, 0, CostMeasure::Width, EnumerationBudget::unlimited()).is_empty());
    }

    #[test]
    fn custom_cost_closures_run_through_best_k_of_stream() {
        let g = Graph::cycle(7);
        let via_stream: Vec<_> = best_k_of_stream(
            Query::enumerate()
                .run_local(&g)
                .filter_map(crate::query::QueryItem::into_triangulation),
            4,
            EnumerationBudget::unlimited(),
            |t| t.fill_count(),
        )
        .iter()
        .map(|t| t.graph.edges())
        .collect();
        let via_query: Vec<_> = Query::best_k(4, CostMeasure::Fill)
            .run_local(&g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(via_stream, via_query);
    }

    // -- the ranked gear --------------------------------------------------

    /// All results from a flat deterministic stream, as the exhaustive
    /// path produces them (production order).
    fn production_order(g: &Graph) -> Vec<Triangulation> {
        Query::enumerate()
            .policy(crate::query::ExecPolicy::fixed().with_planned(false))
            .run_local(g)
            .triangulations()
    }

    #[test]
    fn width_floor_is_admissible_and_tight_on_cycles() {
        for n in 4..10 {
            let g = Graph::cycle(n);
            assert_eq!(cost_floor(&g, CostMeasure::Width), 2, "C{n}");
            assert_eq!(cost_floor(&g, CostMeasure::Fill), n - 3, "C{n}");
        }
    }

    #[test]
    fn floors_never_exceed_the_cheapest_triangulation() {
        use crate::MinimalTriangulationsEnumerator;
        for seed in 0..30u64 {
            // small pseudo-random graphs, deterministic in seed
            let n = 5 + (seed % 4) as usize;
            let mut g = Graph::new(n);
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            for u in 0..n as Node {
                for v in (u + 1)..n as Node {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if x >> 62 != 0 {
                        g.add_edge(u, v);
                    }
                }
            }
            let mut min_width = usize::MAX;
            let mut min_fill = usize::MAX;
            for t in MinimalTriangulationsEnumerator::new(&g) {
                min_width = min_width.min(t.width());
                min_fill = min_fill.min(t.fill_count());
            }
            assert!(
                cost_floor(&g, CostMeasure::Width) <= min_width,
                "width floor inadmissible, seed {seed}"
            );
            assert!(
                cost_floor(&g, CostMeasure::Fill) <= min_fill,
                "fill floor inadmissible, seed {seed}"
            );
        }
    }

    /// The pinned tie policy: `RankedStream` must emit exactly the order
    /// `TopK` keeps — `(cost, production index)` ascending — on a family
    /// that is *all* ties (every minimal triangulation of a cycle has the
    /// same width and the same fill).
    #[test]
    fn ranked_stream_matches_top_k_order_under_ties() {
        for measure in [CostMeasure::Width, CostMeasure::Fill] {
            let g = Graph::cycle(7);
            let all = production_order(&g);
            let mut top = TopK::new(all.len());
            for (i, t) in all.iter().enumerate() {
                top.offer(measure.evaluate(t), i, t.clone());
            }
            let exhaustive: Vec<_> = top.into_vec().iter().map(|t| t.graph.edges()).collect();

            let ranked = Query::best_k(all.len(), measure)
                .policy(crate::query::ExecPolicy::fixed().with_planned(false))
                .run_local(&g)
                .triangulations();
            let ranked: Vec<_> = ranked.iter().map(|t| t.graph.edges()).collect();
            assert_eq!(ranked, exhaustive, "{measure:?}");
        }
    }

    /// Ranked best-k is output-sensitive when the floor is tight: on a
    /// cycle (all ties, floor exact) the underlying enumeration is pulled
    /// only k times.
    #[test]
    fn ranked_best_k_scans_only_k_on_a_tight_floor() {
        let g = Graph::cycle(9); // 429 minimal triangulations
        let mut response = Query::best_k(3, CostMeasure::Fill)
            .policy(crate::query::ExecPolicy::fixed().with_planned(false))
            .run_local(&g);
        let best = response.triangulations();
        assert_eq!(best.len(), 3);
        let outcome = response.outcome();
        assert!(outcome.completed, "k exact winners are a complete answer");
        assert_eq!(outcome.scanned, 3, "output-sensitive: ~k pulls, not 429");
    }

    /// Ranked and exhaustive agree — same winners, same order — on a
    /// graph with genuinely varied costs (not just plateaus).
    #[test]
    fn ranked_matches_exhaustive_on_varied_costs() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        for measure in [CostMeasure::Width, CostMeasure::Fill] {
            for k in [1, 3, 100] {
                for planned in [true, false] {
                    let fixed = crate::query::ExecPolicy::fixed().with_planned(planned);
                    let ranked: Vec<_> = Query::best_k(k, measure)
                        .policy(fixed)
                        .run_local(&g)
                        .triangulations()
                        .iter()
                        .map(|t| t.graph.edges())
                        .collect();
                    let exhaustive: Vec<_> = Query::best_k(k, measure)
                        .policy(fixed.with_ranked(false))
                        .run_local(&g)
                        .triangulations()
                        .iter()
                        .map(|t| t.graph.edges())
                        .collect();
                    assert_eq!(ranked, exhaustive, "{measure:?} k={k} planned={planned}");
                }
            }
        }
    }
}

//! Budgeted best-k selection over the triangulation stream — the paper's
//! "let the application choose the best according to its internal measure"
//! workflow (Section 1), packaged. (Exact *ranked* enumeration with
//! delay guarantees is the follow-up work of Ravid et al. [38]; this module
//! provides the anytime approximation the original paper's experiments
//! perform.)
//!
//! The typed front door for this workload is
//! [`Task::BestK`](crate::query::Task) — `Query::best_k(k, cost)` — which
//! runs the same [`TopK`] selection loop; [`best_k_of_stream`] remains
//! for application-specific (non-serializable) cost closures over any
//! triangulation stream.

use crate::EnumerationBudget;
use mintri_triangulate::Triangulation;
use std::time::Instant;

/// The `k`-best selection state shared by [`best_k_of_stream`] and the
/// query layer's [`Task::BestK`](crate::query::Task): keeps the `k` best
/// under a cost, ascending, ties keeping the earlier-produced result
/// first.
pub(crate) struct TopK<C: Ord> {
    k: usize,
    // (cost, production index) keeps ordering deterministic under ties
    kept: Vec<(C, usize, Triangulation)>,
}

impl<C: Ord> TopK<C> {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            kept: Vec::with_capacity(k.min(1024) + 1),
        }
    }

    /// Offers the `i`-th scanned triangulation with its cost.
    pub(crate) fn offer(&mut self, c: C, i: usize, tri: Triangulation) {
        // only insert if it beats the current worst (or there is room)
        if self.kept.len() < self.k
            || self
                .kept
                .last()
                .is_some_and(|(wc, wi, _)| (&c, &i) < (wc, wi))
        {
            let pos = self
                .kept
                .binary_search_by(|(ec, ei, _)| (ec, ei).cmp(&(&c, &i)))
                .unwrap_or_else(|p| p);
            self.kept.insert(pos, (c, i, tri));
            self.kept.truncate(self.k);
        }
    }

    /// The winners in ascending cost order.
    pub(crate) fn into_vec(self) -> Vec<Triangulation> {
        self.kept.into_iter().map(|(_, _, t)| t).collect()
    }
}

/// The selection loop behind [`Task::BestK`](crate::query::Task),
/// applicable to *any* triangulation stream with *any* cost closure (the
/// engine's replayed/parallel streams and application-specific measures
/// reuse it): keep the `k` best under `cost` within `budget`, ascending,
/// ties keeping the earlier-produced result first.
pub fn best_k_of_stream<C, F>(
    stream: impl IntoIterator<Item = Triangulation>,
    k: usize,
    budget: EnumerationBudget,
    cost: F,
) -> Vec<Triangulation>
where
    C: Ord,
    F: Fn(&Triangulation) -> C,
{
    let started = Instant::now();
    let mut top = TopK::new(k);
    for (i, tri) in stream.into_iter().enumerate() {
        if budget.exhausted(i, started) {
            break;
        }
        let c = cost(&tri);
        top.offer(c, i, tri);
    }
    top.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CostMeasure, Query};
    use crate::BruteForce;
    use mintri_graph::Graph;

    fn best_k(
        g: &Graph,
        k: usize,
        cost: CostMeasure,
        budget: EnumerationBudget,
    ) -> Vec<Triangulation> {
        Query::best_k(k, cost)
            .budget(budget)
            .run_local(g)
            .triangulations()
    }

    #[test]
    fn best_fill_on_a_cycle_is_optimal() {
        let g = Graph::cycle(8);
        let best = best_k(&g, 1, CostMeasure::Fill, EnumerationBudget::unlimited());
        assert_eq!(best[0].fill_count(), 5);
    }

    #[test]
    fn best_width_matches_exhaustive_minimum() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        let exhaustive_min = BruteForce::minimal_triangulations(&g)
            .iter()
            .map(mintri_chordal::treewidth_of_chordal)
            .min()
            .unwrap();
        let best = best_k(&g, 1, CostMeasure::Width, EnumerationBudget::unlimited());
        assert_eq!(best[0].width(), exhaustive_min);
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let g = Graph::cycle(6);
        let top = best_k(&g, 5, CostMeasure::Fill, EnumerationBudget::unlimited());
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].fill_count() <= w[1].fill_count());
        }
        // k larger than the answer count returns everything
        let all = best_k(&g, 100, CostMeasure::Width, EnumerationBudget::unlimited());
        assert_eq!(all.len(), 14);
    }

    #[test]
    fn result_budget_limits_exploration() {
        let g = Graph::cycle(9);
        let top = best_k(&g, 2, CostMeasure::Fill, EnumerationBudget::results(5));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn zero_k_is_empty() {
        let g = Graph::cycle(5);
        assert!(best_k(&g, 0, CostMeasure::Width, EnumerationBudget::unlimited()).is_empty());
    }

    #[test]
    fn custom_cost_closures_run_through_best_k_of_stream() {
        let g = Graph::cycle(7);
        let via_stream: Vec<_> = best_k_of_stream(
            Query::enumerate()
                .run_local(&g)
                .filter_map(crate::query::QueryItem::into_triangulation),
            4,
            EnumerationBudget::unlimited(),
            |t| t.fill_count(),
        )
        .iter()
        .map(|t| t.graph.edges())
        .collect();
        let via_query: Vec<_> = Query::best_k(4, CostMeasure::Fill)
            .run_local(&g)
            .triangulations()
            .iter()
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(via_stream, via_query);
    }
}

//! Brute-force enumeration of all minimal triangulations — the oracle the
//! incremental-polynomial-time enumerator is validated against on small
//! graphs.

use mintri_chordal::is_chordal;
use mintri_graph::{Graph, Node};
use mintri_triangulate::is_minimal_triangulation;

/// Test oracles over small graphs.
pub struct BruteForce;

impl BruteForce {
    /// All minimal triangulations of `g`, by exhaustive search over subsets
    /// of the non-edges. Exponential in the number of missing edges
    /// (capped at 20), so `|V| ≤ 7` in practice.
    pub fn minimal_triangulations(g: &Graph) -> Vec<Graph> {
        let n = g.num_nodes();
        let mut missing: Vec<(Node, Node)> = Vec::new();
        for u in 0..n as Node {
            for v in (u + 1)..n as Node {
                if !g.has_edge(u, v) {
                    missing.push((u, v));
                }
            }
        }
        let k = missing.len();
        assert!(k <= 20, "brute-force triangulation oracle is exponential");
        let mut out = Vec::new();
        for mask in 0u64..(1 << k) {
            let mut h = g.clone();
            for (i, &(u, v)) in missing.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    h.add_edge(u, v);
                }
            }
            if is_chordal(&h) && is_minimal_triangulation(g, &h) {
                out.push(h);
            }
        }
        out.sort_by_key(|h| h.edges());
        out
    }

    /// `|MinTri(g)|` by brute force.
    pub fn count_minimal_triangulations(g: &Graph) -> usize {
        Self::minimal_triangulations(g).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MinimalTriangulationsEnumerator;

    #[test]
    fn oracle_counts_on_known_graphs() {
        assert_eq!(
            BruteForce::count_minimal_triangulations(&Graph::cycle(4)),
            2
        );
        assert_eq!(
            BruteForce::count_minimal_triangulations(&Graph::cycle(5)),
            5
        );
        assert_eq!(
            BruteForce::count_minimal_triangulations(&Graph::cycle(6)),
            14
        );
        assert_eq!(BruteForce::count_minimal_triangulations(&Graph::path(5)), 1);
        assert_eq!(
            BruteForce::count_minimal_triangulations(&Graph::complete(4)),
            1
        );
    }

    #[test]
    fn enumerator_matches_oracle_exactly() {
        let graphs = vec![
            Graph::cycle(6),
            Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]), // K_{2,3}
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]),
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)]), // disconnected
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (6, 3),
                ],
            ),
        ];
        for g in graphs {
            let mut fast: Vec<Vec<(Node, Node)>> = MinimalTriangulationsEnumerator::new(&g)
                .map(|t| t.graph.edges())
                .collect();
            fast.sort();
            let slow: Vec<Vec<(Node, Node)>> = BruteForce::minimal_triangulations(&g)
                .iter()
                .map(|h| h.edges())
                .collect();
            assert_eq!(fast, slow, "mismatch on {g:?}");
        }
    }

    #[test]
    fn k23_has_exactly_two_minimal_triangulations() {
        // MinSep(K_{2,3}) = {{0,1}, {2,3,4}}, which cross: the maximal
        // parallel sets are the singletons.
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(BruteForce::count_minimal_triangulations(&g), 2);
    }
}

//! Maximal cliques: linear-time extraction for chordal graphs and
//! Bron–Kerbosch for general graphs (used as a test oracle and by the
//! tree-decomposition machinery).

use crate::peo::perfect_elimination_order;
use mintri_graph::{Graph, Node, NodeSet};

/// The maximal cliques of a *chordal* graph, given a perfect elimination
/// order.
///
/// Every maximal clique of a chordal graph is `C(v) = {v} ∪ RN(v)` for some
/// `v`, where `RN(v)` are the neighbors eliminated after `v` (Fulkerson &
/// Gross). `C(v)` fails to be maximal exactly when some earlier-eliminated
/// neighbor `u` of `v` satisfies `RN(u) ⊇ C(v)`; the subset checks are
/// word-parallel on bitsets.
///
/// Gavril's bound guarantees at most `n` maximal cliques. Cliques are
/// returned ordered by their representative's elimination position.
pub fn maximal_cliques_of_chordal(g: &Graph, peo: &[Node]) -> Vec<NodeSet> {
    let n = g.num_nodes();
    debug_assert_eq!(peo.len(), n);
    let mut pos = vec![0usize; n];
    for (i, &v) in peo.iter().enumerate() {
        pos[v as usize] = i;
    }

    // rn[v] = neighbors of v eliminated after v
    let mut remaining = NodeSet::full(n);
    let mut rn: Vec<NodeSet> = vec![NodeSet::new(0); n];
    for &v in peo {
        remaining.remove(v);
        rn[v as usize] = g.neighbors(v).intersection(&remaining);
    }

    let mut cliques = Vec::new();
    for &v in peo {
        let mut cv = rn[v as usize].clone();
        cv.insert(v);
        let maximal = g
            .neighbors(v)
            .iter()
            .filter(|&u| pos[u as usize] < pos[v as usize])
            .all(|u| !rn[u as usize].is_superset(&cv));
        if maximal {
            cliques.push(cv);
        }
    }
    cliques
}

/// The maximal cliques of a chordal graph (computes a PEO internally).
///
/// # Panics
/// Panics if `g` is not chordal; use [`maximal_cliques`] for general graphs.
pub fn maximal_cliques_chordal(g: &Graph) -> Vec<NodeSet> {
    let peo =
        perfect_elimination_order(g).expect("maximal_cliques_chordal requires a chordal graph");
    maximal_cliques_of_chordal(g, &peo)
}

/// All maximal cliques of an arbitrary graph, via Bron–Kerbosch with
/// pivoting. Exponential in the worst case — intended for small graphs and
/// as an oracle for the chordal fast path.
pub fn maximal_cliques(g: &Graph) -> Vec<NodeSet> {
    let n = g.num_nodes();
    let mut out = Vec::new();
    let mut r = NodeSet::new(n);
    let p = NodeSet::full(n);
    let x = NodeSet::new(n);
    bron_kerbosch(g, &mut r, p, x, &mut out);
    out.sort();
    out
}

fn bron_kerbosch(g: &Graph, r: &mut NodeSet, p: NodeSet, x: NodeSet, out: &mut Vec<NodeSet>) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    // pivot: vertex of P ∪ X with most neighbors in P
    let pivot = p
        .union(&x)
        .iter()
        .max_by_key(|&u| g.neighbors(u).intersection_len(&p))
        .expect("P ∪ X is nonempty here");
    let mut candidates = p.difference(g.neighbors(pivot));
    let mut p = p;
    let mut x = x;
    while let Some(v) = candidates.pop() {
        let nv = g.neighbors(v);
        r.insert(v);
        bron_kerbosch(g, r, p.intersection(nv), x.intersection(nv), out);
        r.remove(v);
        p.remove(v);
        x.insert(v);
    }
}

/// The treewidth of a *chordal* graph: its maximum clique size minus one.
///
/// # Panics
/// Panics if `g` is not chordal.
pub fn treewidth_of_chordal(g: &Graph) -> usize {
    let peo = perfect_elimination_order(g).expect("treewidth_of_chordal requires a chordal graph");
    let n = g.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut remaining = NodeSet::full(n);
    let mut best = 0;
    for &v in &peo {
        remaining.remove(v);
        best = best.max(g.neighbors(v).intersection_len(&remaining));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut cs: Vec<NodeSet>) -> Vec<Vec<Node>> {
        cs.sort();
        cs.iter().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn cliques_of_a_tree_are_edges() {
        let g = Graph::path(4);
        let cs = sorted(maximal_cliques_chordal(&g));
        assert_eq!(cs, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn cliques_of_complete_graph() {
        let g = Graph::complete(5);
        let cs = maximal_cliques_chordal(&g);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].len(), 5);
    }

    #[test]
    fn cliques_of_triangulated_square() {
        let mut g = Graph::cycle(4);
        g.add_edge(0, 2);
        let cs = sorted(maximal_cliques_chordal(&g));
        assert_eq!(cs, vec![vec![0, 1, 2], vec![0, 2, 3]]);
    }

    #[test]
    fn chordal_fast_path_matches_bron_kerbosch() {
        // a moderately interesting chordal graph: two triangles sharing an
        // edge plus pendant vertices
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5)]);
        let fast = sorted(maximal_cliques_chordal(&g));
        let slow = sorted(maximal_cliques(&g));
        assert_eq!(fast, slow);
    }

    #[test]
    fn bron_kerbosch_on_cycle() {
        let g = Graph::cycle(5);
        let cs = sorted(maximal_cliques(&g));
        assert_eq!(cs.len(), 5); // every edge is a maximal clique
        assert!(cs.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn bron_kerbosch_isolated_vertices() {
        let g = Graph::new(3);
        let cs = maximal_cliques(&g);
        assert_eq!(cs.len(), 3); // each singleton
        assert!(cs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn treewidth_examples() {
        assert_eq!(treewidth_of_chordal(&Graph::path(5)), 1);
        assert_eq!(treewidth_of_chordal(&Graph::complete(4)), 3);
        let mut g = Graph::cycle(4);
        g.add_edge(0, 2);
        assert_eq!(treewidth_of_chordal(&g), 2);
        assert_eq!(treewidth_of_chordal(&Graph::new(0)), 0);
        assert_eq!(treewidth_of_chordal(&Graph::new(3)), 0);
    }

    #[test]
    #[should_panic(expected = "chordal")]
    fn chordal_clique_extraction_rejects_non_chordal() {
        maximal_cliques_chordal(&Graph::cycle(4));
    }

    #[test]
    fn gavril_bound_holds() {
        // chordal graphs have at most n maximal cliques
        let mut g = Graph::cycle(7);
        for v in 2..6 {
            g.add_edge(0, v);
        }
        assert!(crate::is_chordal(&g));
        assert!(maximal_cliques_chordal(&g).len() <= g.num_nodes());
    }
}

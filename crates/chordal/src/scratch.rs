//! Scratch-space mirror of the clique-forest pipeline: maximal cliques →
//! maximum-weight spanning forest → distinct edge intersections, all into
//! pooled buffers.
//!
//! [`minimal_separators_with`] visits exactly the sets
//! [`CliqueForest::minimal_separators`] would return, in the same order,
//! without building a `CliqueForest` and without allocating once the
//! workspace is warm. The order argument: the final sequence is the
//! *sorted, deduplicated* list of edge intersections, which depends only
//! on which spanning-forest edges are accepted — and Kruskal accepts the
//! same edges here because the `(weight desc, i, j)` keys are pairwise
//! distinct, so the unstable sort below produces the exact permutation the
//! stable sort in [`CliqueForest::from_cliques`] does.
//!
//! [`CliqueForest::minimal_separators`]: crate::CliqueForest::minimal_separators
//! [`CliqueForest::from_cliques`]: crate::CliqueForest::from_cliques

use mintri_graph::{Graph, Node, NodeSet};

/// Reusable workspace for [`minimal_separators_with`]: the `RN(v)` table,
/// clique pool, weighted clique-graph edges, union-find arrays and the
/// separator pool. One per worker or sequential stream.
#[derive(Default)]
pub struct ForestScratch {
    pos: Vec<usize>,
    remaining: NodeSet,
    rn: Vec<NodeSet>,
    cliques: Vec<NodeSet>,
    clique_count: usize,
    weighted: Vec<(usize, u32, u32)>,
    uf_parent: Vec<u32>,
    uf_size: Vec<u32>,
    seps: Vec<NodeSet>,
    sep_count: usize,
    order: Vec<u32>,
}

/// Union-find find with path halving, on pooled arrays (mirrors
/// `UnionFind::find` in `cliquetree.rs`).
fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// Union by size, `>=` keeping the first root on ties (mirrors
/// `UnionFind::union`). Returns `false` if already united.
fn uf_union(parent: &mut [u32], size: &mut [u32], a: u32, b: u32) -> bool {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra == rb {
        return false;
    }
    let (big, small) = if size[ra as usize] >= size[rb as usize] {
        (ra, rb)
    } else {
        (rb, ra)
    };
    parent[small as usize] = big;
    size[big as usize] += size[small as usize];
    true
}

/// The minimal separators of the chordal graph `g` with perfect
/// elimination order `peo`, visited in the order
/// `CliqueForest::build_with_peo(g, peo).minimal_separators()` would
/// return them. `emit` borrows each separator; callers that need to keep
/// one clone (or intern) it.
pub fn minimal_separators_with(
    g: &Graph,
    peo: &[Node],
    ws: &mut ForestScratch,
    mut emit: impl FnMut(&NodeSet),
) {
    let n = g.num_nodes();
    debug_assert_eq!(peo.len(), n);

    // --- maximal cliques (mirrors `maximal_cliques_of_chordal`) ---
    ws.pos.clear();
    ws.pos.resize(n, 0);
    for (i, &v) in peo.iter().enumerate() {
        ws.pos[v as usize] = i;
    }
    ws.remaining.reset_full(n);
    if ws.rn.len() < n {
        ws.rn.resize_with(n, NodeSet::default);
    }
    for &v in peo {
        ws.remaining.remove(v);
        let rn_v = &mut ws.rn[v as usize];
        rn_v.clone_from(g.neighbors(v));
        rn_v.intersect_with(&ws.remaining);
    }
    ws.clique_count = 0;
    for &v in peo {
        if ws.cliques.len() == ws.clique_count {
            ws.cliques.push(NodeSet::default());
        }
        // candidate clique C(v) = RN(v) ∪ {v}, built in place
        ws.cliques[ws.clique_count].clone_from(&ws.rn[v as usize]);
        ws.cliques[ws.clique_count].insert(v);
        let cv = &ws.cliques[ws.clique_count];
        let maximal = g
            .neighbors(v)
            .iter()
            .filter(|&u| ws.pos[u as usize] < ws.pos[v as usize])
            .all(|u| !ws.rn[u as usize].is_superset(cv));
        if maximal {
            ws.clique_count += 1;
        }
    }

    // --- maximum-weight spanning forest (mirrors `from_cliques`) ---
    let k = ws.clique_count;
    ws.weighted.clear();
    for i in 0..k {
        for j in (i + 1)..k {
            let w = ws.cliques[i].intersection_len(&ws.cliques[j]);
            if w > 0 {
                ws.weighted.push((w, i as u32, j as u32));
            }
        }
    }
    // Kruskal on descending weight, ties by (i, j). The keys are pairwise
    // distinct, so the unstable sort is deterministic and matches the
    // stable sort used by `CliqueForest::from_cliques`.
    ws.weighted
        .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    ws.uf_parent.clear();
    ws.uf_parent.extend(0..k as u32);
    ws.uf_size.clear();
    ws.uf_size.resize(k, 1);
    ws.sep_count = 0;
    for idx in 0..ws.weighted.len() {
        let (_, i, j) = ws.weighted[idx];
        if uf_union(&mut ws.uf_parent, &mut ws.uf_size, i, j) {
            // accepted forest edge: record C_i ∩ C_j
            if ws.seps.len() == ws.sep_count {
                ws.seps.push(NodeSet::default());
            }
            ws.seps[ws.sep_count].clone_from(&ws.cliques[i as usize]);
            ws.seps[ws.sep_count].intersect_with(&ws.cliques[j as usize]);
            ws.sep_count += 1;
        }
    }

    // --- distinct intersections, sorted by set content (mirrors
    // `minimal_separators`: sort + dedup; the edge order never shows) ---
    ws.order.clear();
    ws.order.extend(0..ws.sep_count as u32);
    let seps = &ws.seps;
    ws.order
        .sort_unstable_by(|&a, &b| seps[a as usize].cmp(&seps[b as usize]));
    let mut prev: Option<u32> = None;
    for &i in &ws.order {
        if let Some(p) = prev {
            if seps[p as usize] == seps[i as usize] {
                continue;
            }
        }
        prev = Some(i);
        emit(&seps[i as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peo::perfect_elimination_order;
    use crate::CliqueForest;

    fn assert_matches_forest(g: &Graph, ws: &mut ForestScratch) {
        let peo = perfect_elimination_order(g).expect("test graphs are chordal");
        let expected: Vec<NodeSet> = CliqueForest::build_with_peo(g, &peo).minimal_separators();
        let mut got = Vec::new();
        minimal_separators_with(g, &peo, ws, |s| got.push(s.clone()));
        assert_eq!(got, expected);
    }

    #[test]
    fn scratch_separators_match_clique_forest() {
        // one shared workspace across graphs of different sizes
        let mut ws = ForestScratch::default();
        let mut square = Graph::cycle(4);
        square.add_edge(0, 2);
        let star_of_triangles = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (3, 4),
                (0, 4),
                (0, 5),
                (5, 6),
                (0, 6),
            ],
        );
        let disconnected = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        for g in [
            Graph::path(6),
            Graph::complete(5),
            square,
            star_of_triangles,
            disconnected,
            Graph::new(0),
            Graph::new(3),
        ] {
            assert_matches_forest(&g, &mut ws);
        }
    }
}

//! # mintri-chordal — chordal graph theory
//!
//! Everything the paper needs about chordal graphs (Section 2.3):
//!
//! * recognition via Maximum Cardinality Search / Lex-BFS and perfect
//!   elimination order verification,
//! * maximal clique extraction (linear-path for chordal graphs,
//!   Bron–Kerbosch as a general oracle),
//! * clique trees and the minimal separators of a chordal graph
//!   (Kumar–Madhavan, Theorem 2.2 — used as `ExtractMinSeps` in the
//!   `Extend` procedure of Figure 3),
//! * chordal treewidth.
//!
//! ```
//! use mintri_chordal::{is_chordal, maximal_cliques_chordal, CliqueForest, treewidth_of_chordal};
//! use mintri_graph::Graph;
//!
//! let mut g = Graph::cycle(4);
//! assert!(!is_chordal(&g)); // C4 has a chordless 4-cycle
//! g.add_edge(0, 2);
//! assert!(is_chordal(&g));
//! assert_eq!(treewidth_of_chordal(&g), 2);
//! assert_eq!(maximal_cliques_chordal(&g).len(), 2); // two triangles
//!
//! // the clique tree connects them through their shared separator {0, 2}
//! let forest = CliqueForest::build(&g);
//! assert_eq!(forest.minimal_separators().len(), 1);
//! ```

mod cliques;
mod cliquetree;
mod peo;
mod scratch;

pub use cliques::{
    maximal_cliques, maximal_cliques_chordal, maximal_cliques_of_chordal, treewidth_of_chordal,
};
pub use cliquetree::{minimal_separators_of_chordal, CliqueForest};
pub use peo::{
    is_chordal, is_perfect_elimination_order, lexbfs_order, mcs_order, perfect_elimination_order,
};
pub use scratch::{minimal_separators_with, ForestScratch};

//! Clique trees (junction trees) of chordal graphs, and the minimal
//! separators they induce.
//!
//! By Bernstein–Goodman, the clique trees of a connected chordal graph are
//! exactly the maximum-weight spanning trees of the *clique graph* — the
//! graph over maximal cliques where an edge `{C_i, C_j}` has weight
//! `|C_i ∩ C_j|`. The multiset of edge intersections of any clique tree is
//! the same, and its distinct sets are exactly `MinSep(g)`
//! (Kumar–Madhavan, Theorem 2.2 of the paper).

use crate::cliques::maximal_cliques_of_chordal;
use crate::peo::perfect_elimination_order;
use mintri_graph::{Graph, NodeSet};

/// A clique forest of a chordal graph: one clique tree per connected
/// component.
#[derive(Debug, Clone)]
pub struct CliqueForest {
    /// The maximal cliques (the future bags of a proper tree decomposition).
    pub cliques: Vec<NodeSet>,
    /// Forest edges `(i, j)` indexing into `cliques`, with `i < j`.
    pub edges: Vec<(usize, usize)>,
}

/// Minimal union-find used by Kruskal; path halving + union by size.
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unites the sets of `a` and `b`; returns `false` if already united.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

impl CliqueForest {
    /// Builds a clique forest of the chordal graph `g`.
    ///
    /// # Panics
    /// Panics if `g` is not chordal.
    pub fn build(g: &Graph) -> CliqueForest {
        let peo =
            perfect_elimination_order(g).expect("CliqueForest::build requires a chordal graph");
        Self::build_with_peo(g, &peo)
    }

    /// Builds a clique forest given a known perfect elimination order.
    pub fn build_with_peo(g: &Graph, peo: &[mintri_graph::Node]) -> CliqueForest {
        let cliques = maximal_cliques_of_chordal(g, peo);
        Self::from_cliques(cliques)
    }

    /// Builds a maximum-weight spanning forest over the given maximal
    /// cliques (weights are pairwise intersection sizes; zero-weight pairs
    /// are not connected).
    pub fn from_cliques(cliques: Vec<NodeSet>) -> CliqueForest {
        let k = cliques.len();
        let mut weighted: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                let w = cliques[i].intersection_len(&cliques[j]);
                if w > 0 {
                    weighted.push((w, i, j));
                }
            }
        }
        // Kruskal on descending weight; ties broken by (i, j) for determinism
        weighted.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut uf = UnionFind::new(k);
        let mut edges = Vec::with_capacity(k.saturating_sub(1));
        for (_, i, j) in weighted {
            if uf.union(i, j) {
                edges.push((i, j));
            }
        }
        edges.sort_unstable();
        CliqueForest { cliques, edges }
    }

    /// The multiset of clique-tree edge intersections (`C_i ∩ C_j` per
    /// forest edge). Invariant across all clique trees of the same graph.
    pub fn edge_separators(&self) -> Vec<NodeSet> {
        self.edges
            .iter()
            .map(|&(i, j)| self.cliques[i].intersection(&self.cliques[j]))
            .collect()
    }

    /// The minimal separators of the underlying chordal graph: the
    /// *distinct* clique-tree edge intersections. For a chordal graph there
    /// are fewer than `|V|` of them (Rose).
    ///
    /// Note: the empty separator of a disconnected graph is *not* reported
    /// (forest edges only join overlapping cliques); callers that care about
    /// disconnected inputs decompose into components first.
    pub fn minimal_separators(&self) -> Vec<NodeSet> {
        let mut seps = self.edge_separators();
        seps.sort();
        seps.dedup();
        seps
    }

    /// The width of the decomposition induced by this forest: largest clique
    /// size minus one.
    pub fn width(&self) -> usize {
        self.cliques
            .iter()
            .map(NodeSet::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Checks the junction (running-intersection) property: for every graph
    /// node, the cliques containing it form a connected subforest. This is a
    /// validation helper for tests; `build` always satisfies it.
    pub fn is_valid_junction_forest(&self, num_nodes: usize) -> bool {
        let k = self.cliques.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(i, j) in &self.edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        for v in 0..num_nodes as mintri_graph::Node {
            let holders: Vec<usize> = (0..k).filter(|&i| self.cliques[i].contains(v)).collect();
            if holders.len() <= 1 {
                continue;
            }
            // BFS within holder cliques only
            let holder_set: std::collections::HashSet<usize> = holders.iter().copied().collect();
            let mut seen = std::collections::HashSet::new();
            let mut stack = vec![holders[0]];
            seen.insert(holders[0]);
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if holder_set.contains(&j) && seen.insert(j) {
                        stack.push(j);
                    }
                }
            }
            if seen.len() != holders.len() {
                return false;
            }
        }
        true
    }
}

/// The minimal separators of a chordal graph (Theorem 2.2 interface).
///
/// # Panics
/// Panics if `g` is not chordal.
pub fn minimal_separators_of_chordal(g: &Graph) -> Vec<NodeSet> {
    CliqueForest::build(g).minimal_separators()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::Graph;

    #[test]
    fn path_clique_tree() {
        let g = Graph::path(4);
        let f = CliqueForest::build(&g);
        assert_eq!(f.cliques.len(), 3);
        assert_eq!(f.edges.len(), 2);
        assert!(f.is_valid_junction_forest(4));
        let seps = f.minimal_separators();
        let seps: Vec<Vec<u32>> = seps.iter().map(|s| s.to_vec()).collect();
        assert_eq!(seps, vec![vec![1], vec![2]]);
    }

    #[test]
    fn complete_graph_has_no_separators() {
        let g = Graph::complete(5);
        let f = CliqueForest::build(&g);
        assert_eq!(f.cliques.len(), 1);
        assert!(f.edges.is_empty());
        assert!(f.minimal_separators().is_empty());
        assert_eq!(f.width(), 4);
    }

    #[test]
    fn triangulated_square() {
        let mut g = Graph::cycle(4);
        g.add_edge(0, 2);
        let f = CliqueForest::build(&g);
        assert_eq!(f.cliques.len(), 2);
        assert_eq!(f.edges.len(), 1);
        let seps = f.minimal_separators();
        assert_eq!(seps.len(), 1);
        assert_eq!(seps[0].to_vec(), vec![0, 2]);
        assert_eq!(f.width(), 2);
    }

    #[test]
    fn rose_bound_fewer_separators_than_nodes() {
        // a chordal graph with several distinct separators
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (1, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        assert!(crate::is_chordal(&g));
        let seps = minimal_separators_of_chordal(&g);
        assert!(seps.len() < g.num_nodes());
        assert!(!seps.is_empty());
    }

    #[test]
    fn disconnected_graph_forest() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let f = CliqueForest::build(&g);
        assert_eq!(f.cliques.len(), 2);
        assert!(f.edges.is_empty()); // two components, no shared nodes
        assert!(f.is_valid_junction_forest(5));
    }

    #[test]
    fn edge_separator_multiset_multiplicity() {
        // star of triangles: triangles {0,1,2},{0,3,4},{0,5,6} share node 0
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (3, 4),
                (0, 4),
                (0, 5),
                (5, 6),
                (0, 6),
            ],
        );
        let f = CliqueForest::build(&g);
        assert_eq!(f.cliques.len(), 3);
        let multiset = f.edge_separators();
        assert_eq!(multiset.len(), 2);
        assert!(multiset.iter().all(|s| s.to_vec() == vec![0]));
        assert_eq!(f.minimal_separators().len(), 1);
    }

    #[test]
    fn junction_property_detects_violations() {
        // Deliberately broken forest: two cliques sharing node 1 but not
        // connected (and a third connected pair), on 4 nodes.
        let cliques = vec![
            NodeSet::from_iter(4, [0, 1]),
            NodeSet::from_iter(4, [1, 2]),
            NodeSet::from_iter(4, [2, 3]),
        ];
        let bad = CliqueForest {
            cliques,
            edges: vec![(1, 2)], // 0 and 1 share node 1 but are disconnected
        };
        assert!(!bad.is_valid_junction_forest(4));
    }
}

//! Chordality recognition via perfect elimination orders.
//!
//! A graph is chordal iff it admits a *perfect elimination order* (PEO): an
//! ordering `v_1, …, v_n` such that for every `v_i`, the neighbors of `v_i`
//! that come later in the order form a clique. Maximum Cardinality Search
//! (MCS) and Lex-BFS both produce a PEO whenever one exists
//! (Tarjan–Yannakakis [41] in the paper's bibliography); verifying a
//! candidate order then decides chordality in near-linear time.

use mintri_graph::{Graph, Node, NodeSet};

/// Computes a Maximum Cardinality Search order of `g`.
///
/// The returned vector is in *elimination order*: index 0 is eliminated
/// first. MCS itself visits vertices in the reverse of this order, always
/// choosing an unvisited vertex with the maximum number of visited
/// neighbors. If `g` is chordal, the result is a perfect elimination order.
pub fn mcs_order(g: &Graph) -> Vec<Node> {
    let n = g.num_nodes();
    let mut weight = vec![0usize; n];
    let mut visited = NodeSet::new(n);
    // buckets[w] = vertices with current weight w (lazily cleaned)
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); n + 1];
    buckets[0].extend(0..n as Node);
    let mut max_weight = 0usize;
    let mut visit_order = Vec::with_capacity(n);

    for _ in 0..n {
        // find the highest-weight unvisited vertex
        let v = loop {
            match buckets[max_weight].pop() {
                Some(v) if !visited.contains(v) && weight[v as usize] == max_weight => break v,
                Some(_) => continue, // stale entry
                None => {
                    debug_assert!(max_weight > 0, "ran out of candidates");
                    max_weight -= 1;
                }
            }
        };
        visited.insert(v);
        visit_order.push(v);
        for u in g.neighbors(v).iter() {
            if !visited.contains(u) {
                let w = &mut weight[u as usize];
                *w += 1;
                buckets[*w].push(u);
                max_weight = max_weight.max(*w);
            }
        }
    }

    visit_order.reverse();
    visit_order
}

/// Verifies that `order` (elimination order, index 0 eliminated first) is a
/// perfect elimination order of `g`.
///
/// Uses the classic test: for each vertex `v` with later neighbors `RN(v)`,
/// let `p` be the earliest-eliminated member of `RN(v)`; it suffices that
/// `RN(v) \ {p} ⊆ N(p)`.
pub fn is_perfect_elimination_order(g: &Graph, order: &[Node]) -> bool {
    let n = g.num_nodes();
    assert_eq!(order.len(), n, "order must cover all nodes");
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        assert!(pos[v as usize] == usize::MAX, "order must not repeat nodes");
        pos[v as usize] = i;
    }

    let mut remaining = NodeSet::full(n);
    for &v in order {
        remaining.remove(v);
        let rn = g.neighbors(v).intersection(&remaining);
        let Some(p) = rn.iter().min_by_key(|&u| pos[u as usize]) else {
            continue;
        };
        let mut rest = rn;
        rest.remove(p);
        if !rest.is_subset(g.neighbors(p)) {
            return false;
        }
    }
    true
}

/// Decides whether `g` is chordal (every cycle of length > 3 has a chord).
pub fn is_chordal(g: &Graph) -> bool {
    is_perfect_elimination_order(g, &mcs_order(g))
}

/// Returns a perfect elimination order of `g` if it is chordal.
pub fn perfect_elimination_order(g: &Graph) -> Option<Vec<Node>> {
    let order = mcs_order(g);
    is_perfect_elimination_order(g, &order).then_some(order)
}

/// Computes a Lex-BFS order of `g` (elimination order, index 0 first).
///
/// Lex-BFS is an independent PEO-producing search; it is used to
/// cross-validate [`mcs_order`] and as an alternative seed ordering for
/// triangulation heuristics. Implemented by partition refinement over a
/// list of buckets.
pub fn lexbfs_order(g: &Graph) -> Vec<Node> {
    let n = g.num_nodes();
    // sequence of buckets; the visit order picks from the front bucket
    let mut buckets: Vec<Vec<Node>> = vec![(0..n as Node).collect()];
    let mut visited = NodeSet::new(n);
    let mut visit_order = Vec::with_capacity(n);

    while let Some(front) = buckets.first_mut() {
        let Some(v) = front.pop() else {
            buckets.remove(0);
            continue;
        };
        if visited.contains(v) {
            continue;
        }
        visited.insert(v);
        visit_order.push(v);
        // split every bucket into (neighbors of v, non-neighbors), neighbors first
        let nv = g.neighbors(v);
        let mut refined = Vec::with_capacity(buckets.len() * 2);
        for bucket in buckets.drain(..) {
            let (hit, miss): (Vec<Node>, Vec<Node>) = bucket
                .into_iter()
                .filter(|&u| !visited.contains(u))
                .partition(|&u| nv.contains(u));
            if !hit.is_empty() {
                refined.push(hit);
            }
            if !miss.is_empty() {
                refined.push(miss);
            }
        }
        buckets = refined;
    }

    visit_order.reverse();
    visit_order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trees_and_complete_graphs_are_chordal() {
        assert!(is_chordal(&Graph::path(7)));
        assert!(is_chordal(&Graph::complete(6)));
        assert!(is_chordal(&Graph::new(0)));
        assert!(is_chordal(&Graph::new(1)));
        assert!(is_chordal(&Graph::cycle(3)));
    }

    #[test]
    fn long_cycles_are_not_chordal() {
        for n in 4..9 {
            assert!(!is_chordal(&Graph::cycle(n)), "C{n} must not be chordal");
        }
    }

    #[test]
    fn chorded_cycle_is_chordal() {
        let mut g = Graph::cycle(5);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert!(is_chordal(&g));
    }

    #[test]
    fn grid_is_not_chordal() {
        // 2x2 grid = C4
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (0, 2), (1, 3)]);
        assert!(!is_chordal(&g));
    }

    #[test]
    fn peo_verification_rejects_bad_orders() {
        // P3: 0-1-2. Eliminating 1 first demands {0,2} be a clique -> reject.
        let g = Graph::path(3);
        assert!(!is_perfect_elimination_order(&g, &[1, 0, 2]));
        assert!(is_perfect_elimination_order(&g, &[0, 1, 2]));
        assert!(is_perfect_elimination_order(&g, &[0, 2, 1]));
    }

    #[test]
    fn mcs_order_is_peo_on_chordal_inputs() {
        let mut g = Graph::complete(4);
        // glue a pendant triangle
        let mut h = Graph::new(6);
        for (u, v) in g.edges() {
            h.add_edge(u, v);
        }
        h.add_edge(3, 4);
        h.add_edge(3, 5);
        h.add_edge(4, 5);
        g = h;
        let order = mcs_order(&g);
        assert!(is_perfect_elimination_order(&g, &order));
    }

    #[test]
    fn lexbfs_agrees_with_mcs_on_chordality() {
        let chordal = {
            let mut g = Graph::cycle(6);
            g.add_edge(0, 2);
            g.add_edge(0, 3);
            g.add_edge(0, 4);
            g
        };
        assert!(is_perfect_elimination_order(
            &chordal,
            &lexbfs_order(&chordal)
        ));
        let non_chordal = Graph::cycle(6);
        assert!(!is_perfect_elimination_order(
            &non_chordal,
            &lexbfs_order(&non_chordal)
        ));
    }

    #[test]
    fn disconnected_chordal() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        assert!(is_chordal(&g));
        let order = mcs_order(&g);
        assert_eq!(order.len(), 6);
    }

    #[test]
    #[should_panic(expected = "repeat")]
    fn peo_check_rejects_duplicates() {
        let g = Graph::path(3);
        is_perfect_elimination_order(&g, &[0, 0, 1]);
    }
}

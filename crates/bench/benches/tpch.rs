//! Section 6.2.3 micro-benchmark: TPC-H query enumeration. The paper
//! reports all 22 queries finishing within 5 seconds; the bench tracks a
//! fast chordal query, a small cyclic one, and the Q7 outlier (first 100
//! results).

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::MinimalTriangulationsEnumerator;
use mintri_workloads::tpch_query;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpch");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for number in [3u8, 5, 9] {
        let q = tpch_query(number);
        group.bench_function(format!("q{number}_full"), |b| {
            b.iter(|| black_box(MinimalTriangulationsEnumerator::new(black_box(&q.graph)).count()))
        });
    }
    let q7 = tpch_query(7);
    group.bench_function("q7_first100", |b| {
        b.iter(|| {
            black_box(
                MinimalTriangulationsEnumerator::new(black_box(&q7.graph))
                    .take(100)
                    .count(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figures 9 & 10 micro-benchmark: the case-study machinery — a budgeted
//! anytime run on a Promedas-style graph including the per-result width and
//! fill instrumentation, plus the running-minimum extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::pgm::promedas;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = promedas(24, 72, 4, 42);
    let mut group = c.benchmark_group("fig9_fig10_case_study");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("promedas_case_study_50_results", |b| {
        b.iter(|| {
            let outcome = AnytimeSearch::new(black_box(&g))
                .budget(EnumerationBudget::results(50))
                .run();
            let widths = outcome.running_min(|r| r.width);
            let fills = outcome.running_min(|r| r.fill);
            black_box((outcome.records.len(), widths.len(), fills.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Tables 1 & 2 micro-benchmark: a quality-statistics run (budgeted
//! enumeration plus width/fill aggregation) on one instance per backend —
//! the unit of work behind every row of the tables.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_bench::AlgoChoice;
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::PgmFamily;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let inst = PgmFamily::ObjectDetection.instances(1, 42).remove(0);
    let mut group = c.benchmark_group("tables_quality_stats");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for algo in AlgoChoice::BOTH {
        group.bench_function(format!("{}_quality_100_results", algo.name()), |b| {
            b.iter(|| {
                let outcome = AnytimeSearch::new(black_box(&inst.graph))
                    .triangulator(algo.triangulator())
                    .budget(EnumerationBudget::results(100))
                    .run();
                black_box(outcome.quality())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 7 micro-benchmark: enumeration delay on Erdős–Rényi graphs for
//! `p ∈ {0.3, 0.5, 0.7}` (the full sweep is `src/bin/fig7_random_delay.rs`).
//! Tracks the time to the first 10 triangulations of `G(40, p)`.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::random::erdos_renyi;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_random_delay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for p in [0.3, 0.5, 0.7] {
        let g = erdos_renyi(40, p, 42);
        for algo in mintri_bench::AlgoChoice::BOTH {
            group.bench_function(format!("{}_n40_p{}_first10", algo.name(), p), |b| {
                b.iter(|| {
                    let outcome = AnytimeSearch::new(black_box(&g))
                        .triangulator(algo.triangulator())
                        .budget(EnumerationBudget::results(10))
                        .run();
                    black_box(outcome.records.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * crossing-test memoization on vs off (the `MSGraph` cache);
//! * the triangulation backend inside `Extend` (MCS-M vs LB-Triang vs the
//!   naive complete-fill + sandwich);
//! * minimal-separator interning is exercised implicitly by both.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::{MinimalTriangulationsEnumerator, MsGraph};
use mintri_sgr::PrintMode;
use mintri_triangulate::{CompleteFill, LbTriang, McsM, Triangulator};
use mintri_workloads::random::grid;
use std::hint::black_box;
use std::time::Duration;

fn crossing_cache(c: &mut Criterion) {
    let g = grid(6, 6);
    let mut group = c.benchmark_group("ablation_crossing_cache");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("cache_on_first30", |b| {
        b.iter(|| {
            let ms = MsGraph::new(black_box(&g));
            let e = MinimalTriangulationsEnumerator::from_msgraph(ms, PrintMode::UponGeneration);
            black_box(e.take(30).count())
        })
    });
    group.bench_function("cache_off_first30", |b| {
        b.iter(|| {
            let ms = MsGraph::new(black_box(&g)).without_crossing_cache();
            let e = MinimalTriangulationsEnumerator::from_msgraph(ms, PrintMode::UponGeneration);
            black_box(e.take(30).count())
        })
    });
    group.finish();
}

fn extend_backend(c: &mut Criterion) {
    let g = grid(5, 5);
    let mut group = c.benchmark_group("ablation_extend_backend");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    type BackendFactory = fn() -> Box<dyn Triangulator>;
    let backends: Vec<(&str, BackendFactory)> = vec![
        ("mcs_m", || Box::new(McsM)),
        ("lb_triang_minfill", || Box::new(LbTriang::min_fill())),
        ("complete_fill_sandwich", || Box::new(CompleteFill)),
    ];
    for (name, make) in backends {
        group.bench_function(format!("{name}_first20"), |b| {
            b.iter(|| {
                let e = MinimalTriangulationsEnumerator::with_config(
                    black_box(&g),
                    make(),
                    PrintMode::UponGeneration,
                );
                black_box(e.take(20).count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, crossing_cache, extend_backend);
criterion_main!(benches);

//! Figure 6 micro-benchmark: enumeration delay on PGM-style graphs for the
//! two triangulation backends. The full-scale sweep lives in
//! `src/bin/fig6_pgm_delay.rs`; this bench tracks regressions in the time
//! to produce the first 20 triangulations of one representative instance
//! per family.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::PgmFamily;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_pgm_delay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for family in [
        PgmFamily::Promedas,
        PgmFamily::ObjectDetection,
        PgmFamily::Grids,
    ] {
        let inst = family.instances(1, 42).remove(0);
        for algo in mintri_bench::AlgoChoice::BOTH {
            group.bench_function(format!("{}_{}_first20", algo.name(), inst.name), |b| {
                b.iter(|| {
                    let outcome = AnytimeSearch::new(black_box(&inst.graph))
                        .triangulator(algo.triangulator())
                        .budget(EnumerationBudget::results(20))
                        .run();
                    black_box(outcome.records.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Figure 8 micro-benchmark: full enumeration of TPC-H Q7 under the two
//! printing modes (UG = `EnumMIS`, UP = `EnumMISHold`). Both must produce
//! the same 4-digit result count; the bench tracks their total runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_core::MinimalTriangulationsEnumerator;
use mintri_sgr::PrintMode;
use mintri_workloads::tpch_query;
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let q7 = tpch_query(7);
    let mut group = c.benchmark_group("fig8_printing_modes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    for (name, mode) in [
        ("UG", PrintMode::UponGeneration),
        ("UP", PrintMode::UponPop),
    ] {
        group.bench_function(format!("q7_full_{name}"), |b| {
            b.iter(|| {
                let count = MinimalTriangulationsEnumerator::with_config(
                    black_box(&q7.graph),
                    Box::new(mintri_triangulate::McsM),
                    mode,
                )
                .count();
                black_box(count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Substrate micro-benchmarks: the building blocks whose costs dominate the
//! enumeration loop — minimal separator generation, the crossing test,
//! chordality recognition, the triangulation algorithms, and chordal clique
//! extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use mintri_chordal::{is_chordal, maximal_cliques_chordal, CliqueForest};
use mintri_separators::{crossing, MinimalSeparatorIter};
use mintri_triangulate::{lb_triang, mcs_m, OrderingStrategy};
use mintri_workloads::pgm::promedas;
use mintri_workloads::random::{erdos_renyi, grid};
use std::hint::black_box;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let grid10 = grid(10, 10);
    let gnp = erdos_renyi(60, 0.3, 42);
    let pro = promedas(24, 72, 4, 42);

    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("minsep_first200_grid10", |b| {
        b.iter(|| {
            black_box(
                MinimalSeparatorIter::new(black_box(&grid10))
                    .take(200)
                    .count(),
            )
        })
    });

    let seps: Vec<_> = MinimalSeparatorIter::new(&grid10).take(40).collect();
    group.bench_function("crossing_40x40_grid10", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for s in &seps {
                for t in &seps {
                    if crossing(black_box(&grid10), s, t) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });

    group.bench_function("mcs_m_gnp60", |b| {
        b.iter(|| black_box(mcs_m(black_box(&gnp)).fill_count()))
    });

    group.bench_function("lb_triang_minfill_gnp60", |b| {
        b.iter(|| black_box(lb_triang(black_box(&gnp), &OrderingStrategy::MinFill).fill_count()))
    });

    let tri = mcs_m(&pro);
    group.bench_function("is_chordal_promedas_triangulated", |b| {
        b.iter(|| black_box(is_chordal(black_box(&tri.graph))))
    });

    group.bench_function("maximal_cliques_chordal_promedas", |b| {
        b.iter(|| black_box(maximal_cliques_chordal(black_box(&tri.graph)).len()))
    });

    group.bench_function("clique_forest_minseps_promedas", |b| {
        b.iter(|| {
            black_box(
                CliqueForest::build(black_box(&tri.graph))
                    .minimal_separators()
                    .len(),
            )
        })
    });

    // clique-tree enumeration (Theorem 5.1's per-class machinery)
    let chordal_grid = mcs_m(&grid(4, 4)).graph;
    group.bench_function("spanning_forests_first50_grid4x4", |b| {
        b.iter(|| {
            black_box(
                mintri_treedecomp::proper_decompositions_of_chordal(black_box(&chordal_grid))
                    .take(50)
                    .count(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! A minimal `--key value` command-line parser for the harness binaries
//! (keeping the workspace free of CLI dependencies).

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`. Flags must be `--key value` pairs.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter.next().unwrap_or_else(|| {
                    panic!("missing value for --{key}");
                });
                values.insert(key.to_string(), value);
            } else {
                panic!("unexpected positional argument {arg:?}; use --key value");
            }
        }
        Args { values }
    }

    /// A `u64` argument with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer"))
            })
            .unwrap_or(default)
    }

    /// A `usize` argument with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_u64(key, default as u64) as usize
    }

    /// A string argument with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_pairs() {
        let a = Args::from_iter(
            ["--budget-ms", "500", "--family", "grids"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.get_u64("budget-ms", 0), 500);
        assert_eq!(a.get_str("family", ""), "grids");
        assert_eq!(a.get_usize("instances", 3), 3);
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn rejects_dangling_flags() {
        Args::from_iter(["--budget-ms".to_string()]);
    }
}

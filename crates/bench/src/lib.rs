//! # mintri-bench — the experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and figure
//! of the paper's Section 6 (see `src/bin/`) and for the Criterion
//! micro-benchmarks (see `benches/`). EXPERIMENTS.md maps each binary to
//! its table/figure and records paper-vs-measured outcomes.

pub mod args;
pub mod baseline;
pub mod runs;

pub use args::Args;
pub use runs::{run_budgeted, AlgoChoice};

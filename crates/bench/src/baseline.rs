//! The DunceCap-style exhaustive baseline of Section 6.1.3.
//!
//! The paper compared against the DunceCap enumerator of *all* generalized
//! hypertree decompositions, observed it to be 3–4 orders of magnitude
//! slower on small TPC-H queries and unable to finish Q7/Q9 within two
//! hours, and excluded it from the plots. We reproduce that comparison
//! with a deadline-guarded exhaustive search over fill-edge subsets: it
//! enumerates the same objects (minimal triangulations) by brute force,
//! exactly the kind of unguided exponential search DunceCap performs over
//! bag partitions.

use mintri_chordal::is_chordal;
use mintri_graph::{Graph, Node};
use mintri_triangulate::is_minimal_triangulation;
use std::time::{Duration, Instant};

/// Outcome of a deadline-guarded baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineOutcome {
    /// Finished: found this many minimal triangulations.
    Completed(usize),
    /// Hit the deadline after examining this many candidate edge subsets.
    TimedOut(u64),
}

/// Exhaustively enumerates minimal triangulations by trying every subset of
/// the missing edges, aborting at `deadline`.
pub fn exhaustive_count(g: &Graph, deadline: Duration) -> BaselineOutcome {
    let start = Instant::now();
    let n = g.num_nodes();
    let mut missing: Vec<(Node, Node)> = Vec::new();
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            if !g.has_edge(u, v) {
                missing.push((u, v));
            }
        }
    }
    let k = missing.len();
    if k >= 63 {
        return BaselineOutcome::TimedOut(0);
    }
    let mut count = 0usize;
    let mut examined = 0u64;
    for mask in 0u64..(1 << k) {
        examined += 1;
        if examined.is_multiple_of(1024) && start.elapsed() >= deadline {
            return BaselineOutcome::TimedOut(examined);
        }
        let mut h = g.clone();
        for (i, &(u, v)) in missing.iter().enumerate() {
            if mask & (1 << i) != 0 {
                h.add_edge(u, v);
            }
        }
        if is_chordal(&h) && is_minimal_triangulation(g, &h) {
            count += 1;
        }
    }
    BaselineOutcome::Completed(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_on_tiny_graphs() {
        assert_eq!(
            exhaustive_count(&Graph::cycle(5), Duration::from_secs(5)),
            BaselineOutcome::Completed(5)
        );
    }

    #[test]
    fn times_out_on_large_search_spaces() {
        // C20 has 170 missing edges: the subset space cannot even be indexed
        let g = Graph::cycle(20);
        assert_eq!(
            exhaustive_count(&g, Duration::from_millis(50)),
            BaselineOutcome::TimedOut(0)
        );
        // C12 (54 missing edges) can start but must hit the deadline
        let g = Graph::cycle(12);
        match exhaustive_count(&g, Duration::from_millis(20)) {
            BaselineOutcome::TimedOut(examined) => assert!(examined > 0),
            BaselineOutcome::Completed(_) => panic!("cannot finish 2^54 subsets in 20 ms"),
        }
    }
}

//! Measures what adaptive execution buys on a **repeat visit**: a mixed
//! query family (full enumeration, ranked best-k, one-per-class tree
//! decompositions) is driven twice through the **same** engine under
//! the default `ExecPolicy::Auto`. Run 1 is cold — every query computes
//! live while the profiler learns per-atom costs. Run 2 hits the warm
//! tier the first run deposited: answer replay where the session
//! survives, profile-steered dispatch everywhere else. Emits
//! `BENCH_adaptive.json`.
//!
//! The gate reading is `run1_seconds / run2_seconds` — the second visit
//! must be at least 1.2x the first (CI gates via
//! `bench_check --adaptive`; in practice replay puts the ratio far
//! higher, the floor guards against the profile/dispatch layer ever
//! making a repeat visit *slower*). Both runs must scan identical
//! answer counts: adaptivity reschedules, it never answers.
//!
//! Flags: `--out FILE` (default `BENCH_adaptive.json`), `--quick 1`
//! (CI smoke: smaller cycles), `--rounds N` (cold/warm pairs, default
//! 3; every round gets a fresh engine so run 1 is genuinely cold).

use mintri_bench::Args;
use mintri_core::query::CostMeasure;
use mintri_core::TdEnumerationMode;
use mintri_engine::{Engine, EngineConfig, Query};
use mintri_graph::{Graph, Node};
use mintri_workloads::random::{chained_cycles, chord_cycle};
use std::fmt::Write as _;
use std::time::Instant;

struct Measured {
    seconds: f64,
    scanned: usize,
}

/// Drives the mixed workload to completion on `engine` under the
/// default (Auto) policy; total wall time and total item count.
fn drive(engine: &Engine, graphs: &[Graph]) -> Measured {
    let started = Instant::now();
    let mut scanned = 0;
    for g in graphs {
        scanned += engine.run(g, Query::enumerate()).count();
        scanned += engine.run(g, Query::best_k(3, CostMeasure::Width)).count();
        scanned += engine
            .run(g, Query::decompose(TdEnumerationMode::OnePerClass))
            .count();
    }
    Measured {
        seconds: started.elapsed().as_secs_f64(),
        scanned,
    }
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_adaptive.json");
    let quick = args.get_usize("quick", 0) != 0;
    let rounds = args.get_usize("rounds", 3).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Chord-cycles exercise the flat path; chained cycles decompose
    // into one atom per cycle, so the composed odometer (where Auto's
    // cursor and thread-split decisions live) carries real queries.
    let n = if quick { 10 } else { 12 };
    let mut graphs: Vec<Graph> = (2..(n as Node - 1)).map(|j| chord_cycle(n, j)).collect();
    graphs.push(chained_cycles(&[4, 5, 6]));
    graphs.push(chained_cycles(&[5, 6]));

    eprintln!(
        "adaptive: {} graphs x 3 queries x {rounds} rounds, run 1 (cold) vs run 2 (same engine) …",
        graphs.len()
    );
    let mut run1_seconds = 0.0;
    let mut run2_seconds = 0.0;
    let mut run1_scanned = 0;
    let mut run2_scanned = 0;
    let mut profile_entries = 0;
    for _ in 0..rounds {
        let engine = Engine::with_config(EngineConfig {
            threads: cpus.min(4),
            ..EngineConfig::default()
        });
        let run1 = drive(&engine, &graphs);
        run1_seconds += run1.seconds;
        run1_scanned = run1.scanned;
        let run2 = drive(&engine, &graphs);
        run2_seconds += run2.seconds;
        run2_scanned = run2.scanned;
        profile_entries = engine.profile_views().len();
    }
    assert!(
        profile_entries > 0,
        "run 1 must have taught the profiler something"
    );

    let ratio = run1_seconds / run2_seconds.max(1e-9);
    eprintln!(
        "gate: run 1 {run1_seconds:.4}s, run 2 {run2_seconds:.4}s ({ratio:.0}x) \
         over {run1_scanned} answers, {profile_entries} profile entries"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"adaptive_gain\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"mixed_C{n}_chord_chained_cycles\","
    );
    let _ = writeln!(json, "    \"queries_per_run\": {},", graphs.len() * 3);
    let _ = writeln!(json, "    \"run1_seconds\": {run1_seconds:.6},");
    let _ = writeln!(json, "    \"run2_seconds\": {run2_seconds:.6},");
    let _ = writeln!(json, "    \"run1_over_run2\": {ratio:.2},");
    let _ = writeln!(json, "    \"run1_scanned\": {run1_scanned},");
    let _ = writeln!(json, "    \"run2_scanned\": {run2_scanned},");
    let _ = writeln!(json, "    \"profile_entries\": {profile_entries}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! End-to-end win of the atom-decomposition planning layer: the same
//! enumeration query, unreduced (whole-graph frontier, `--no-plan`) vs.
//! planned (per-atom streams + product composer), on workloads with
//! several non-trivial atoms. Emits `BENCH_reduction.json` so future PRs
//! can watch the reduction stay ahead.
//!
//! Workloads are cycles chained through cut vertices and glued edges —
//! each cycle is one atom, so the unreduced path drives the exponential
//! product through a single frontier while the planned path enumerates
//! each cycle once and recombines. Both paths stream every result to
//! completion and their counts are asserted equal, so `speedup` is a
//! genuine end-to-end (same-answer-set) ratio.
//!
//! Flags: `--out FILE` (default `BENCH_reduction.json`), `--quick 1`
//! (smoke mode for CI: smallest workload only).
//!
//! Per the `BENCH_engine.json` convention the document stamps the host's
//! CPU count and `"speedup_observable": false` when `cpus == 1` — the
//! *planning* speedups here are sequential-vs-sequential and remain
//! valid either way (the stamp gates only thread-scaling readings).

use mintri_bench::Args;
use mintri_core::query::{ExecPolicy, Plan, Query};
use mintri_graph::Graph;
use mintri_workloads::random::chained_cycles;
use std::fmt::Write as _;
use std::time::Instant;

/// Seconds (and result count) to stream the whole enumeration.
fn time_enumeration(g: &Graph, planned: bool) -> (usize, f64) {
    let started = Instant::now();
    let produced = Query::enumerate()
        .policy(ExecPolicy::fixed().with_planned(planned))
        .run_local(g)
        .count();
    (produced, started.elapsed().as_secs_f64())
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_reduction.json");
    let quick = args.get_usize("quick", 0) != 0;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_observable = cpus > 1;

    let workloads: Vec<(&str, Graph)> = if quick {
        vec![("3xC6_chain", chained_cycles(&[6, 6, 6]))]
    } else {
        vec![
            ("3xC6_chain", chained_cycles(&[6, 6, 6])),
            ("4xC6_chain", chained_cycles(&[6, 6, 6, 6])),
            ("3xC7_chain", chained_cycles(&[7, 7, 7])),
            ("C7_C6_C5_C4_chain", chained_cycles(&[7, 6, 5, 4])),
        ]
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"reduction_gain\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"speedup_observable\": {speedup_observable},");
    let _ = writeln!(json, "  \"workloads\": [");

    let mut first = true;
    for (name, g) in &workloads {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        let plan = Plan::of(g);
        eprintln!(
            "workload {name}: {} nodes, {} atoms …",
            g.num_nodes(),
            plan.atoms.len()
        );
        assert!(
            plan.atoms.len() >= 3 || quick,
            "reduction workloads must have several non-trivial atoms"
        );

        let (n_unreduced, unreduced_s) = time_enumeration(g, false);
        let (n_planned, planned_s) = time_enumeration(g, true);
        assert_eq!(
            n_unreduced, n_planned,
            "planned and unreduced enumerations must agree on {name}"
        );
        let speedup = unreduced_s / planned_s.max(1e-9);
        eprintln!(
            "  {n_planned} results: unreduced {unreduced_s:.3}s, planned {planned_s:.3}s \
             ({speedup:.1}x)"
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{name}\",");
        let _ = writeln!(json, "      \"nodes\": {},", g.num_nodes());
        let _ = writeln!(json, "      \"atoms\": {},", plan.atoms.len());
        let _ = writeln!(json, "      \"results\": {n_planned},");
        let _ = writeln!(json, "      \"unreduced_seconds\": {unreduced_s:.6},");
        let _ = writeln!(json, "      \"planned_seconds\": {planned_s:.6},");
        let _ = writeln!(json, "      \"speedup\": {speedup:.2}");
        let _ = write!(json, "    }}");
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

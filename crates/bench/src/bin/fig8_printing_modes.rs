//! Figure 8: delay behavior of the two printing modes on TPC-H Q7 —
//! UG (Upon Generation, `EnumMIS`) against UP (Upon Pop, `EnumMISHold`).
//! UG prints in bursts; UP paces the output; both finish together with the
//! same result set.
//!
//! Emits CSV: `mode,result_index,elapsed_us`, then a bucketed
//! `mode,bucket_ms,results_in_bucket` summary mirroring the paper's
//! results-per-10ms bars.
//!
//! Flags: `--query` (default 7), `--bucket-ms` (default 10).

use mintri_bench::Args;
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_sgr::PrintMode;
use mintri_workloads::tpch_query;

fn main() {
    let args = Args::parse();
    let number = args.get_u64("query", 7) as u8;
    let bucket_ms = args.get_u64("bucket-ms", 10).max(1);
    let q = tpch_query(number);

    println!("mode,result_index,elapsed_us");
    let mut bucketed: Vec<(&str, Vec<usize>)> = Vec::new();
    for (name, mode) in [
        ("UG", PrintMode::UponGeneration),
        ("UP", PrintMode::UponPop),
    ] {
        let outcome = AnytimeSearch::new(&q.graph)
            .mode(mode)
            .budget(EnumerationBudget::unlimited())
            .run();
        let mut buckets: Vec<usize> = Vec::new();
        for r in &outcome.records {
            println!("{},{},{}", name, r.index, r.at.as_micros());
            let b = (r.at.as_millis() as u64 / bucket_ms) as usize;
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        eprintln!(
            "# {name}: {} results in {:.1} ms (Q{number})",
            outcome.records.len(),
            outcome.elapsed.as_secs_f64() * 1e3
        );
        bucketed.push((name, buckets));
    }

    println!("mode,bucket_ms,results_in_bucket");
    for (name, buckets) in bucketed {
        for (i, count) in buckets.iter().enumerate() {
            println!("{},{},{}", name, i as u64 * bucket_ms, count);
        }
    }
}

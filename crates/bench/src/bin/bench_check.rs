//! The bench-regression gate: parses `BENCH_*.json` documents (with the
//! same `mintri_core::json` parser the wire uses — the benches' output
//! is not write-only either) and fails loudly when an invariant doesn't
//! hold. CI runs it after the `--quick` bench smoke runs; locally it
//! doubles as a sanity check on freshly regenerated baselines.
//!
//! Checks:
//! * `--serve FILE` (`serve_throughput` output): the warm-replay gate —
//!   `warm_is_replay` true, warm and cold scans count the same answer
//!   set, and warm-replay req/s at least `--min-ratio` (default 10)
//!   times cold.
//! * `--reduction FILE` (`reduction_gain` output): every workload
//!   enumerated a positive number of results in positive time (the
//!   planned-vs-unreduced *equality* is asserted inside the bench run
//!   itself; this guards the document).
//! * `--ranked FILE` (`ranked_gain` output): every workload's ranked
//!   best-k ran at least `--min-ranked-ratio` (default 3) times faster
//!   than the exhaustive scan, with the full complement of winners
//!   (the winner *equality* is asserted inside the bench run itself).
//! * `--store FILE` (`store_gain` output): the persistence gate —
//!   `hydrated_is_replay` true, hydrated and cold scans count the same
//!   answer set, and disk-hydration at least `--min-store-ratio`
//!   (default 5) times faster than cold compute.
//! * `--telemetry FILE` (`telemetry_overhead` output): span tracing
//!   cost stays under `--max-overhead-pct` (default 5) and the traced
//!   run produced results.
//! * `--kernel FILE` (`kernel_gain` output): the scratch-space execution
//!   kernel keeps cold enumeration at least `--min-kernel-ratio`
//!   (default 1.3, fractional allowed) times faster than the ablated
//!   allocating path, with a positive `Extend` count on both sides.
//! * `--adaptive FILE` (`adaptive_gain` output): the repeat-visit gate
//!   — run 1 and run 2 scan the same answer set, run 1 taught the
//!   profiler at least one entry, and the second visit through the same
//!   engine ran at least `--min-adaptive-ratio` (default 1.2,
//!   fractional allowed) times faster than the first.
//! * `--parse FILE`: the file parses with `mintri_core::json` — the
//!   serve smoke uses this to prove a `"trace": true` response
//!   round-trips through the core parser.
//!
//! Exits non-zero on the first violation, printing what failed.

use mintri_bench::Args;
use mintri_core::json::JsonValue;
use std::process::ExitCode;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn field<'a>(doc: &'a JsonValue, path: &[&str]) -> Result<&'a JsonValue, String> {
    let mut v = doc;
    for key in path {
        v = v
            .get(key)
            .ok_or_else(|| format!("missing field {:?}", path.join(".")))?;
    }
    Ok(v)
}

fn check_serve(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let gate = field(&doc, &["gate"])?;
    let replay = field(gate, &["warm_is_replay"])?
        .as_bool()
        .ok_or("warm_is_replay must be a boolean")?;
    if !replay {
        return Err(format!("{path}: warm requests did not replay"));
    }
    let cold_scanned = field(gate, &["cold_scanned"])?
        .as_usize()
        .ok_or("cold_scanned must be an integer")?;
    let warm_scanned = field(gate, &["warm_scanned"])?
        .as_usize()
        .ok_or("warm_scanned must be an integer")?;
    if cold_scanned == 0 || cold_scanned != warm_scanned {
        return Err(format!(
            "{path}: scan counts diverge (cold {cold_scanned}, warm {warm_scanned})"
        ));
    }
    let ratio = field(gate, &["warm_over_cold"])?
        .as_f64()
        .ok_or("warm_over_cold must be a number")?;
    if ratio < min_ratio {
        return Err(format!(
            "{path}: warm-replay only {ratio:.2}x cold (gate: >= {min_ratio}x)"
        ));
    }
    eprintln!(
        "serve ok: {} — replay {ratio:.0}x cold over {cold_scanned} answers",
        field(gate, &["workload"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

fn check_reduction(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    let workloads = field(&doc, &["workloads"])?
        .as_array()
        .ok_or("workloads must be an array")?;
    if workloads.is_empty() {
        return Err(format!("{path}: no workloads recorded"));
    }
    for w in workloads {
        let name = field(w, &["name"])?.as_str().unwrap_or("?").to_string();
        let results = field(w, &["results"])?
            .as_usize()
            .ok_or_else(|| format!("{name}: results must be an integer"))?;
        if results == 0 {
            return Err(format!("{path}: workload {name} produced no results"));
        }
        for key in ["unreduced_seconds", "planned_seconds"] {
            let seconds = field(w, &[key])?
                .as_f64()
                .ok_or_else(|| format!("{name}: {key} must be a number"))?;
            if seconds <= 0.0 || seconds.is_nan() {
                return Err(format!("{path}: workload {name} has {key} = {seconds}"));
            }
        }
    }
    eprintln!(
        "reduction ok: {} workloads, all non-degenerate",
        workloads.len()
    );
    Ok(())
}

fn check_ranked(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let k = field(&doc, &["k"])?
        .as_usize()
        .ok_or("k must be an integer")?;
    let workloads = field(&doc, &["workloads"])?
        .as_array()
        .ok_or("workloads must be an array")?;
    if workloads.is_empty() {
        return Err(format!("{path}: no workloads recorded"));
    }
    for w in workloads {
        let name = format!(
            "{}/{}",
            field(w, &["name"])?.as_str().unwrap_or("?"),
            field(w, &["cost"])?.as_str().unwrap_or("?")
        );
        let winners = field(w, &["winners"])?
            .as_usize()
            .ok_or_else(|| format!("{name}: winners must be an integer"))?;
        if winners != k {
            return Err(format!(
                "{path}: workload {name} produced {winners} winners (asked for {k})"
            ));
        }
        for key in ["exhaustive_seconds", "ranked_seconds"] {
            let seconds = field(w, &[key])?
                .as_f64()
                .ok_or_else(|| format!("{name}: {key} must be a number"))?;
            if seconds <= 0.0 || seconds.is_nan() {
                return Err(format!("{path}: workload {name} has {key} = {seconds}"));
            }
        }
        let speedup = field(w, &["speedup"])?
            .as_f64()
            .ok_or_else(|| format!("{name}: speedup must be a number"))?;
        if speedup.is_nan() || speedup < min_ratio {
            return Err(format!(
                "{path}: workload {name} ranked only {speedup:.2}x exhaustive \
                 (gate: >= {min_ratio}x)"
            ));
        }
        eprintln!("ranked ok: {name} — {speedup:.1}x exhaustive at k={k}");
    }
    Ok(())
}

fn check_store(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let gate = field(&doc, &["gate"])?;
    let replay = field(gate, &["hydrated_is_replay"])?
        .as_bool()
        .ok_or("hydrated_is_replay must be a boolean")?;
    if !replay {
        return Err(format!("{path}: disk-hydrated requests did not replay"));
    }
    let cold_scanned = field(gate, &["cold_scanned"])?
        .as_usize()
        .ok_or("cold_scanned must be an integer")?;
    let hydrated_scanned = field(gate, &["hydrated_scanned"])?
        .as_usize()
        .ok_or("hydrated_scanned must be an integer")?;
    if cold_scanned == 0 || cold_scanned != hydrated_scanned {
        return Err(format!(
            "{path}: scan counts diverge (cold {cold_scanned}, hydrated {hydrated_scanned})"
        ));
    }
    let ratio = field(gate, &["cold_over_hydrated"])?
        .as_f64()
        .ok_or("cold_over_hydrated must be a number")?;
    if ratio.is_nan() || ratio < min_ratio {
        return Err(format!(
            "{path}: disk-hydration only {ratio:.2}x cold (gate: >= {min_ratio}x)"
        ));
    }
    eprintln!(
        "store ok: {} — disk-hydrate {ratio:.0}x cold over {cold_scanned} answers",
        field(gate, &["workload"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

fn check_telemetry(path: &str, max_overhead_pct: f64) -> Result<(), String> {
    let doc = load(path)?;
    let results = field(&doc, &["results"])?
        .as_usize()
        .ok_or("results must be an integer")?;
    if results == 0 {
        return Err(format!("{path}: traced run produced no results"));
    }
    for key in ["untraced_seconds", "traced_seconds"] {
        let seconds = field(&doc, &[key])?
            .as_f64()
            .ok_or_else(|| format!("{key} must be a number"))?;
        if seconds <= 0.0 || seconds.is_nan() {
            return Err(format!("{path}: {key} = {seconds}"));
        }
    }
    let overhead = field(&doc, &["overhead_pct"])?
        .as_f64()
        .ok_or("overhead_pct must be a number")?;
    if overhead.is_nan() || overhead > max_overhead_pct {
        return Err(format!(
            "{path}: tracing costs {overhead:.2}% (gate: <= {max_overhead_pct}%)"
        ));
    }
    eprintln!(
        "telemetry ok: {} — tracing {overhead:.2}% over {results} answers",
        field(&doc, &["family"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

fn check_kernel(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let extends = field(&doc, &["extends_per_sweep"])?
        .as_usize()
        .ok_or("extends_per_sweep must be an integer")?;
    if extends == 0 {
        return Err(format!("{path}: the family triggered no Extend calls"));
    }
    for key in ["ablated_seconds", "kernel_seconds"] {
        let seconds = field(&doc, &[key])?
            .as_f64()
            .ok_or_else(|| format!("{key} must be a number"))?;
        if seconds <= 0.0 || seconds.is_nan() {
            return Err(format!("{path}: {key} = {seconds}"));
        }
    }
    let speedup = field(&doc, &["speedup"])?
        .as_f64()
        .ok_or("speedup must be a number")?;
    if speedup.is_nan() || speedup < min_ratio {
        return Err(format!(
            "{path}: scratch kernel only {speedup:.2}x the allocating path \
             (gate: >= {min_ratio}x)"
        ));
    }
    eprintln!(
        "kernel ok: {} — scratch kernel {speedup:.2}x over {extends} extends/sweep",
        field(&doc, &["family"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

fn check_adaptive(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let gate = field(&doc, &["gate"])?;
    let run1_scanned = field(gate, &["run1_scanned"])?
        .as_usize()
        .ok_or("run1_scanned must be an integer")?;
    let run2_scanned = field(gate, &["run2_scanned"])?
        .as_usize()
        .ok_or("run2_scanned must be an integer")?;
    if run1_scanned == 0 || run1_scanned != run2_scanned {
        return Err(format!(
            "{path}: scan counts diverge (run 1 {run1_scanned}, run 2 {run2_scanned}) — \
             adaptivity reschedules, it must never answer"
        ));
    }
    let entries = field(gate, &["profile_entries"])?
        .as_usize()
        .ok_or("profile_entries must be an integer")?;
    if entries == 0 {
        return Err(format!("{path}: run 1 taught the profiler nothing"));
    }
    for key in ["run1_seconds", "run2_seconds"] {
        let seconds = field(gate, &[key])?
            .as_f64()
            .ok_or_else(|| format!("{key} must be a number"))?;
        if seconds <= 0.0 || seconds.is_nan() {
            return Err(format!("{path}: {key} = {seconds}"));
        }
    }
    let ratio = field(gate, &["run1_over_run2"])?
        .as_f64()
        .ok_or("run1_over_run2 must be a number")?;
    if ratio.is_nan() || ratio < min_ratio {
        return Err(format!(
            "{path}: second visit only {ratio:.2}x the first (gate: >= {min_ratio}x)"
        ));
    }
    eprintln!(
        "adaptive ok: {} — repeat visit {ratio:.1}x cold over {run1_scanned} answers, \
         {entries} profile entries",
        field(gate, &["workload"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

/// Not a gate on values — a gate on *shape*: the document must survive
/// the same parser the wire clients use.
fn check_parse(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    eprintln!(
        "parse ok: {path} ({})",
        match &doc {
            JsonValue::Obj(fields) => format!("object, {} fields", fields.len()),
            JsonValue::Arr(items) => format!("array, {} items", items.len()),
            _ => "scalar".to_string(),
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let min_ratio = args.get_u64("min-ratio", 10) as f64;
    let min_ranked_ratio = args.get_u64("min-ranked-ratio", 3) as f64;
    let min_store_ratio = args.get_u64("min-store-ratio", 5) as f64;
    let max_overhead_pct = args.get_u64("max-overhead-pct", 5) as f64;
    // Fractional gate (1.3x is a meaningful floor), so parsed as f64
    // rather than through get_u64 like the integer ratios above.
    let min_kernel_ratio = args
        .get_str("min-kernel-ratio", "1.3")
        .parse::<f64>()
        .unwrap_or(1.3);
    let min_adaptive_ratio = args
        .get_str("min-adaptive-ratio", "1.2")
        .parse::<f64>()
        .unwrap_or(1.2);
    let serve = args.get_str("serve", "");
    let reduction = args.get_str("reduction", "");
    let ranked = args.get_str("ranked", "");
    let store = args.get_str("store", "");
    let telemetry = args.get_str("telemetry", "");
    let kernel = args.get_str("kernel", "");
    let adaptive = args.get_str("adaptive", "");
    let parse = args.get_str("parse", "");
    if serve.is_empty()
        && reduction.is_empty()
        && ranked.is_empty()
        && store.is_empty()
        && telemetry.is_empty()
        && kernel.is_empty()
        && adaptive.is_empty()
        && parse.is_empty()
    {
        eprintln!(
            "usage: bench_check [--serve BENCH_serve.json] [--reduction BENCH_reduction.json] \
             [--ranked BENCH_ranked.json] [--store BENCH_store.json] \
             [--telemetry BENCH_telemetry.json] [--kernel BENCH_kernel.json] \
             [--adaptive BENCH_adaptive.json] [--parse FILE.json] \
             [--min-ratio R] [--min-ranked-ratio R] [--min-store-ratio R] [--max-overhead-pct P] \
             [--min-kernel-ratio R] [--min-adaptive-ratio R]"
        );
        return ExitCode::FAILURE;
    }
    let mut checks: Vec<Result<(), String>> = Vec::new();
    if !serve.is_empty() {
        checks.push(check_serve(&serve, min_ratio));
    }
    if !reduction.is_empty() {
        checks.push(check_reduction(&reduction));
    }
    if !ranked.is_empty() {
        checks.push(check_ranked(&ranked, min_ranked_ratio));
    }
    if !store.is_empty() {
        checks.push(check_store(&store, min_store_ratio));
    }
    if !telemetry.is_empty() {
        checks.push(check_telemetry(&telemetry, max_overhead_pct));
    }
    if !kernel.is_empty() {
        checks.push(check_kernel(&kernel, min_kernel_ratio));
    }
    if !adaptive.is_empty() {
        checks.push(check_adaptive(&adaptive, min_adaptive_ratio));
    }
    if !parse.is_empty() {
        checks.push(check_parse(&parse));
    }
    for check in checks {
        if let Err(e) = check {
            eprintln!("BENCH CHECK FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! The bench-regression gate: parses `BENCH_*.json` documents (with the
//! same `mintri_core::json` parser the wire uses — the benches' output
//! is not write-only either) and fails loudly when an invariant doesn't
//! hold. CI runs it after the `--quick` bench smoke runs; locally it
//! doubles as a sanity check on freshly regenerated baselines.
//!
//! Checks:
//! * `--serve FILE` (`serve_throughput` output): the warm-replay gate —
//!   `warm_is_replay` true, warm and cold scans count the same answer
//!   set, and warm-replay req/s at least `--min-ratio` (default 10)
//!   times cold.
//! * `--reduction FILE` (`reduction_gain` output): every workload
//!   enumerated a positive number of results in positive time (the
//!   planned-vs-unreduced *equality* is asserted inside the bench run
//!   itself; this guards the document).
//!
//! Exits non-zero on the first violation, printing what failed.

use mintri_bench::Args;
use mintri_core::json::JsonValue;
use std::process::ExitCode;

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn field<'a>(doc: &'a JsonValue, path: &[&str]) -> Result<&'a JsonValue, String> {
    let mut v = doc;
    for key in path {
        v = v
            .get(key)
            .ok_or_else(|| format!("missing field {:?}", path.join(".")))?;
    }
    Ok(v)
}

fn check_serve(path: &str, min_ratio: f64) -> Result<(), String> {
    let doc = load(path)?;
    let gate = field(&doc, &["gate"])?;
    let replay = field(gate, &["warm_is_replay"])?
        .as_bool()
        .ok_or("warm_is_replay must be a boolean")?;
    if !replay {
        return Err(format!("{path}: warm requests did not replay"));
    }
    let cold_scanned = field(gate, &["cold_scanned"])?
        .as_usize()
        .ok_or("cold_scanned must be an integer")?;
    let warm_scanned = field(gate, &["warm_scanned"])?
        .as_usize()
        .ok_or("warm_scanned must be an integer")?;
    if cold_scanned == 0 || cold_scanned != warm_scanned {
        return Err(format!(
            "{path}: scan counts diverge (cold {cold_scanned}, warm {warm_scanned})"
        ));
    }
    let ratio = field(gate, &["warm_over_cold"])?
        .as_f64()
        .ok_or("warm_over_cold must be a number")?;
    if ratio < min_ratio {
        return Err(format!(
            "{path}: warm-replay only {ratio:.2}x cold (gate: >= {min_ratio}x)"
        ));
    }
    eprintln!(
        "serve ok: {} — replay {ratio:.0}x cold over {cold_scanned} answers",
        field(gate, &["workload"])?.as_str().unwrap_or("?")
    );
    Ok(())
}

fn check_reduction(path: &str) -> Result<(), String> {
    let doc = load(path)?;
    let workloads = field(&doc, &["workloads"])?
        .as_array()
        .ok_or("workloads must be an array")?;
    if workloads.is_empty() {
        return Err(format!("{path}: no workloads recorded"));
    }
    for w in workloads {
        let name = field(w, &["name"])?.as_str().unwrap_or("?").to_string();
        let results = field(w, &["results"])?
            .as_usize()
            .ok_or_else(|| format!("{name}: results must be an integer"))?;
        if results == 0 {
            return Err(format!("{path}: workload {name} produced no results"));
        }
        for key in ["unreduced_seconds", "planned_seconds"] {
            let seconds = field(w, &[key])?
                .as_f64()
                .ok_or_else(|| format!("{name}: {key} must be a number"))?;
            if seconds <= 0.0 || seconds.is_nan() {
                return Err(format!("{path}: workload {name} has {key} = {seconds}"));
            }
        }
    }
    eprintln!(
        "reduction ok: {} workloads, all non-degenerate",
        workloads.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = Args::parse();
    let min_ratio = args.get_u64("min-ratio", 10) as f64;
    let serve = args.get_str("serve", "");
    let reduction = args.get_str("reduction", "");
    if serve.is_empty() && reduction.is_empty() {
        eprintln!("usage: bench_check [--serve BENCH_serve.json] [--reduction BENCH_reduction.json] [--min-ratio R]");
        return ExitCode::FAILURE;
    }
    let mut checks: Vec<Result<(), String>> = Vec::new();
    if !serve.is_empty() {
        checks.push(check_serve(&serve, min_ratio));
    }
    if !reduction.is_empty() {
        checks.push(check_reduction(&reduction));
    }
    for check in checks {
        if let Err(e) = check {
            eprintln!("BENCH CHECK FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! Figure 6 (a/b): average delay between minimal-triangulation printouts on
//! the probabilistic-graphical-model benchmarks, for LB_TRIANG and MCS_M,
//! plotted against the number of edges.
//!
//! Emits CSV: `algo,family,instance,nodes,edges,results,completed,avg_delay_ms`.
//!
//! Flags: `--budget-ms` (default 1000; the paper used 30-minute runs),
//! `--instances` per family (default 4; the paper's counts are in
//! `PgmFamily::paper_instance_count`), `--seed`, `--algo`.

use mintri_bench::{run_budgeted, AlgoChoice, Args};
use mintri_workloads::PgmFamily;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 1000);
    let instances = args.get_usize("instances", 4);
    let seed = args.get_u64("seed", 42);
    let algos = AlgoChoice::parse_list(&args.get_str("algo", "both"));

    println!("algo,family,instance,nodes,edges,results,completed,avg_delay_ms");
    for algo in algos {
        for family in PgmFamily::ALL {
            for inst in family.instances(instances, seed) {
                let outcome = run_budgeted(&inst.graph, algo, budget_ms);
                let avg_ms = outcome
                    .average_delay()
                    .map(|d| d.as_secs_f64() * 1e3)
                    .unwrap_or(f64::NAN);
                println!(
                    "{},{},{},{},{},{},{},{:.3}",
                    algo.name(),
                    family.name(),
                    inst.name,
                    inst.graph.num_nodes(),
                    inst.graph.num_edges(),
                    outcome.records.len(),
                    outcome.completed,
                    avg_ms
                );
            }
        }
    }
}

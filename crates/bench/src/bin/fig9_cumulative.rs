//! Figure 9 (case study): cumulative number of results over time on a
//! single Promedas-style graph — all minimal triangulations, those of the
//! minimum observed width, and those no wider than the first result.
//!
//! Emits CSV: `elapsed_ms,total,min_width_results,leq_w1_results`.
//!
//! Flags: `--budget-ms` (default 10000; the paper ran 30 minutes),
//! `--seed`, `--diseases` / `--findings` (default 24/72, a mid-size
//! Promedas-like graph).

use mintri_bench::Args;
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::pgm::promedas;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 10_000);
    let seed = args.get_u64("seed", 7);
    let diseases = args.get_usize("diseases", 24);
    let findings = args.get_usize("findings", 72);
    let g = promedas(diseases, findings, 4, seed);
    eprintln!(
        "# case study graph: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    let outcome = AnytimeSearch::new(&g)
        .budget(EnumerationBudget::time(Duration::from_millis(budget_ms)))
        .run();

    let first_width = outcome.records.first().map(|r| r.width).unwrap_or(0);
    let min_width = outcome.records.iter().map(|r| r.width).min().unwrap_or(0);

    println!("elapsed_ms,total,min_width_results,leq_w1_results");
    let (mut total, mut at_min, mut leq_w1) = (0usize, 0usize, 0usize);
    for r in &outcome.records {
        total += 1;
        if r.width == min_width {
            at_min += 1;
        }
        if r.width <= first_width {
            leq_w1 += 1;
        }
        println!("{},{},{},{}", r.at.as_millis(), total, at_min, leq_w1);
    }
    eprintln!(
        "# {} results, first width {}, min width {}, completed: {}",
        total, first_width, min_width, outcome.completed
    );
}

//! Table 2: fill statistics of the generated triangulations per dataset
//! family and triangulation backend — #trng, min-f, #≤f1 (%), %f↓ (max) —
//! the fill-measure counterpart of Table 1.
//!
//! Flags: `--budget-ms` (default 1000), `--instances` (default 3),
//! `--seed`, `--algo`.

use mintri_bench::{run_budgeted, AlgoChoice, Args};
use mintri_core::QualityStats;
use mintri_workloads::PgmFamily;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 1000);
    let instances = args.get_usize("instances", 3);
    let seed = args.get_u64("seed", 42);
    let algos = AlgoChoice::parse_list(&args.get_str("algo", "both"));

    println!("| Dataset | #trng | min-f | #<=f1 (%) | %f_down (max) |");
    println!("|---|---|---|---|---|");
    for algo in algos {
        println!("| **{}** | | | | |", algo.name());
        for family in PgmFamily::ALL {
            let stats: Vec<QualityStats> = family
                .instances(instances, seed)
                .iter()
                .filter_map(|inst| run_budgeted(&inst.graph, algo, budget_ms).quality())
                .collect();
            if stats.is_empty() {
                continue;
            }
            let k = stats.len() as f64;
            let avg = |f: &dyn Fn(&QualityStats) -> f64| stats.iter().map(f).sum::<f64>() / k;
            let trng = avg(&|s| s.num_results as f64);
            let min_f = avg(&|s| s.min_fill as f64);
            let leq = avg(&|s| s.num_leq_first_fill as f64);
            let leq_pct = avg(&|s| 100.0 * s.num_leq_first_fill as f64 / s.num_results as f64);
            let f_down = avg(&|s| s.fill_improvement_pct);
            let f_down_max = stats
                .iter()
                .map(|s| s.fill_improvement_pct)
                .fold(0.0f64, f64::max);
            println!(
                "| {} ({}) | {:.1} | {:.1} | {:.1} ({:.1}%) | {:.1} ({:.1}) |",
                family.name(),
                stats.len(),
                trng,
                min_f,
                leq,
                leq_pct,
                f_down,
                f_down_max
            );
        }
    }
}

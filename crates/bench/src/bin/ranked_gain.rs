//! End-to-end win of the ranked best-k gear: the same best-k query,
//! exhaustive (`--no-ranked`: scan every result, keep the top k) vs.
//! ranked (output-sensitive: stop after ~k pulls), both cold — no warm
//! sessions, no replay caches. Emits `BENCH_ranked.json` so future PRs
//! can watch the ranked gear stay ahead; `bench_check --ranked` gates
//! the speedup at `--min-ranked-ratio` (default 3).
//!
//! Workloads are the families where exhaustive best-k hurts most:
//! * `bestk_C12_chord` — a 12-cycle plus one chord; the atom
//!   decomposition drops the triangle and leaves one C11 atom with
//!   4862 minimal triangulations, all of which the exhaustive gear
//!   scans for any k.
//! * `bestk_4xC6_chain` — four 6-cycles chained through cut vertices;
//!   the composed product has 14^4 = 38416 results, which the ranked
//!   odometer never materializes.
//!
//! `first_result` delay is recorded for both gears: ranked best-k must
//! not only finish earlier, it must *start* emitting winners without
//! draining the enumeration first.
//!
//! Flags: `--out FILE` (default `BENCH_ranked.json`), `--k K` (default
//! 5), `--reps N` (default 3, min-of-N timing), `--quick 1` (smoke mode
//! for CI: smallest workload only).

use mintri_bench::Args;
use mintri_core::query::{CostMeasure, ExecPolicy, Query};
use mintri_graph::Graph;
use mintri_workloads::random::{chained_cycles, chord_cycle};
use std::fmt::Write as _;
use std::time::Instant;

/// One cold best-k run: (ordered winner fill lists, seconds to drain,
/// seconds to the first emitted result).
fn time_best_k(
    g: &Graph,
    k: usize,
    cost: CostMeasure,
    ranked: bool,
) -> (Vec<Vec<(u32, u32)>>, f64, f64) {
    let started = Instant::now();
    let mut response = Query::best_k(k, cost)
        .policy(ExecPolicy::fixed().with_ranked(ranked))
        .run_local(g);
    let mut first_s = 0.0;
    let mut winners = Vec::new();
    for item in response.by_ref() {
        if winners.is_empty() {
            first_s = started.elapsed().as_secs_f64();
        }
        if let Some(tri) = item.into_triangulation() {
            winners.push(tri.fill);
        }
    }
    (winners, started.elapsed().as_secs_f64(), first_s)
}

/// Min-of-`reps` timing; the winners are asserted identical across reps.
fn best_of(
    g: &Graph,
    k: usize,
    cost: CostMeasure,
    ranked: bool,
    reps: usize,
) -> (Vec<Vec<(u32, u32)>>, f64, f64) {
    let (winners, mut total, mut first) = time_best_k(g, k, cost, ranked);
    for _ in 1..reps {
        let (w, t, f) = time_best_k(g, k, cost, ranked);
        assert_eq!(w, winners, "winners must be stable across reps");
        total = total.min(t);
        first = first.min(f);
    }
    (winners, total, first)
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_ranked.json");
    let k = args.get_usize("k", 5);
    let reps = args.get_usize("reps", 3).max(1);
    let quick = args.get_usize("quick", 0) != 0;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let workloads: Vec<(&str, Graph)> = if quick {
        vec![("bestk_C12_chord", chord_cycle(12, 2))]
    } else {
        vec![
            ("bestk_C12_chord", chord_cycle(12, 2)),
            ("bestk_4xC6_chain", chained_cycles(&[6, 6, 6, 6])),
        ]
    };

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"ranked_gain\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"k\": {k},");
    let _ = writeln!(json, "  \"workloads\": [");

    let mut first_entry = true;
    for (name, g) in &workloads {
        for cost in [CostMeasure::Width, CostMeasure::Fill] {
            let cost_name = match cost {
                CostMeasure::Width => "width",
                CostMeasure::Fill => "fill",
            };
            eprintln!("workload {name} ({cost_name}, k={k}) …");

            let (exh_winners, exh_s, exh_first_s) = best_of(g, k, cost, false, reps);
            let (ranked_winners, ranked_s, ranked_first_s) = best_of(g, k, cost, true, reps);
            assert_eq!(
                ranked_winners, exh_winners,
                "{name}/{cost_name}: ranked and exhaustive winners must agree bit for bit"
            );
            assert_eq!(ranked_winners.len(), k, "{name}/{cost_name}: k winners");

            let speedup = exh_s / ranked_s.max(1e-9);
            let first_speedup = exh_first_s / ranked_first_s.max(1e-9);
            eprintln!(
                "  exhaustive {exh_s:.4}s (first {exh_first_s:.4}s), \
                 ranked {ranked_s:.4}s (first {ranked_first_s:.4}s) — {speedup:.1}x"
            );

            if !first_entry {
                json.push_str(",\n");
            }
            first_entry = false;
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"name\": \"{name}\",");
            let _ = writeln!(json, "      \"cost\": \"{cost_name}\",");
            let _ = writeln!(json, "      \"nodes\": {},", g.num_nodes());
            let _ = writeln!(json, "      \"winners\": {},", ranked_winners.len());
            let _ = writeln!(json, "      \"exhaustive_seconds\": {exh_s:.6},");
            let _ = writeln!(
                json,
                "      \"exhaustive_first_result_seconds\": {exh_first_s:.6},"
            );
            let _ = writeln!(json, "      \"ranked_seconds\": {ranked_s:.6},");
            let _ = writeln!(
                json,
                "      \"ranked_first_result_seconds\": {ranked_first_s:.6},"
            );
            let _ = writeln!(json, "      \"first_result_speedup\": {first_speedup:.2},");
            let _ = writeln!(json, "      \"speedup\": {speedup:.2}");
            let _ = write!(json, "    }}");
        }
    }
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Runs the entire Section 6 reproduction — every figure and table — and
//! writes the outputs under `results/`. One command to regenerate
//! everything referenced by EXPERIMENTS.md.
//!
//! Flags: `--out-dir` (default `results`), `--scale` multiplier applied to
//! all default budgets (default 1; the paper's 30-minute runs would be
//! roughly `--scale 900`).

use mintri_bench::{run_budgeted, AlgoChoice, Args};
use mintri_core::{AnytimeSearch, EnumerationBudget, QualityStats};
use mintri_sgr::PrintMode;
use mintri_workloads::pgm::promedas;
use mintri_workloads::{all_queries, random_suite, PgmFamily};
use std::fmt::Write as _;
use std::fs;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_dir = args.get_str("out-dir", "results");
    let scale = args.get_u64("scale", 1).max(1);
    fs::create_dir_all(&out_dir)?;

    // Figure 6
    let mut fig6 =
        String::from("algo,family,instance,nodes,edges,results,completed,avg_delay_ms\n");
    for algo in AlgoChoice::BOTH {
        for family in PgmFamily::ALL {
            for inst in family.instances(3, 42) {
                let o = run_budgeted(&inst.graph, algo, 2000 * scale);
                let avg = o
                    .average_delay()
                    .map(|d| d.as_secs_f64() * 1e3)
                    .unwrap_or(f64::NAN);
                let _ = writeln!(
                    fig6,
                    "{},{},{},{},{},{},{},{:.3}",
                    algo.name(),
                    family.name(),
                    inst.name,
                    inst.graph.num_nodes(),
                    inst.graph.num_edges(),
                    o.records.len(),
                    o.completed,
                    avg
                );
            }
        }
    }
    fs::write(format!("{out_dir}/fig6_pgm_delay.csv"), fig6)?;
    eprintln!("fig6 done");

    // Figure 7
    let mut fig7 = String::from("algo,n,p,edges,results,completed,avg_delay_ms\n");
    for algo in AlgoChoice::BOTH {
        for (p, inst) in random_suite(90, 10, 42) {
            let o = run_budgeted(&inst.graph, algo, 800 * scale);
            let avg = o
                .average_delay()
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN);
            let _ = writeln!(
                fig7,
                "{},{},{},{},{},{},{:.3}",
                algo.name(),
                inst.graph.num_nodes(),
                p,
                inst.graph.num_edges(),
                o.records.len(),
                o.completed,
                avg
            );
        }
    }
    fs::write(format!("{out_dir}/fig7_random_delay.csv"), fig7)?;
    eprintln!("fig7 done");

    // Figure 8
    let q7 = mintri_workloads::tpch_query(7);
    let mut fig8 = String::from("mode,result_index,elapsed_us\n");
    for (name, mode) in [
        ("UG", PrintMode::UponGeneration),
        ("UP", PrintMode::UponPop),
    ] {
        let o = AnytimeSearch::new(&q7.graph).mode(mode).run();
        for r in &o.records {
            let _ = writeln!(fig8, "{},{},{}", name, r.index, r.at.as_micros());
        }
    }
    fs::write(format!("{out_dir}/fig8_printing_modes.csv"), fig8)?;
    eprintln!("fig8 done");

    // Figures 9 & 10 (case study)
    let case = promedas(24, 72, 4, 7);
    let o = AnytimeSearch::new(&case)
        .budget(EnumerationBudget::time(Duration::from_millis(8000 * scale)))
        .run();
    let first_w = o.records.first().map(|r| r.width).unwrap_or(0);
    let min_w = o.records.iter().map(|r| r.width).min().unwrap_or(0);
    let mut fig9 = String::from("elapsed_ms,total,min_width_results,leq_w1_results\n");
    let (mut total, mut at_min, mut leq) = (0, 0, 0);
    for r in &o.records {
        total += 1;
        if r.width == min_w {
            at_min += 1;
        }
        if r.width <= first_w {
            leq += 1;
        }
        let _ = writeln!(fig9, "{},{},{},{}", r.at.as_millis(), total, at_min, leq);
    }
    fs::write(format!("{out_dir}/fig9_cumulative.csv"), fig9)?;
    let mut fig10 = String::from("measure,elapsed_ms,value\n");
    for (at, w) in o.running_min(|r| r.width) {
        let _ = writeln!(fig10, "min_width,{},{}", at.as_millis(), w);
    }
    for (at, f) in o.running_min(|r| r.fill) {
        let _ = writeln!(fig10, "min_fill,{},{}", at.as_millis(), f);
    }
    fs::write(format!("{out_dir}/fig10_quality_over_time.csv"), fig10)?;
    eprintln!("fig9/fig10 done");

    // Tables 1 & 2
    for (table, width_table) in [
        ("table1_width_stats.md", true),
        ("table2_fill_stats.md", false),
    ] {
        let mut out = if width_table {
            String::from(
                "| Dataset | #trng | min-w | #<=w1 (%) | %w_down (max) |\n|---|---|---|---|---|\n",
            )
        } else {
            String::from(
                "| Dataset | #trng | min-f | #<=f1 (%) | %f_down (max) |\n|---|---|---|---|---|\n",
            )
        };
        for algo in AlgoChoice::BOTH {
            let _ = writeln!(out, "| **{}** | | | | |", algo.name());
            for family in PgmFamily::ALL {
                let stats: Vec<QualityStats> = family
                    .instances(3, 42)
                    .iter()
                    .filter_map(|inst| run_budgeted(&inst.graph, algo, 1500 * scale).quality())
                    .collect();
                if stats.is_empty() {
                    continue;
                }
                let k = stats.len() as f64;
                let avg = |f: &dyn Fn(&QualityStats) -> f64| stats.iter().map(f).sum::<f64>() / k;
                let (minv, leqv, pctv, maxv) = if width_table {
                    (
                        avg(&|s| s.min_width as f64),
                        avg(&|s| s.num_leq_first_width as f64),
                        avg(&|s| s.width_improvement_pct),
                        stats
                            .iter()
                            .map(|s| s.width_improvement_pct)
                            .fold(0.0, f64::max),
                    )
                } else {
                    (
                        avg(&|s| s.min_fill as f64),
                        avg(&|s| s.num_leq_first_fill as f64),
                        avg(&|s| s.fill_improvement_pct),
                        stats
                            .iter()
                            .map(|s| s.fill_improvement_pct)
                            .fold(0.0, f64::max),
                    )
                };
                let _ = writeln!(
                    out,
                    "| {} ({}) | {:.1} | {:.1} | {:.1} | {:.1} ({:.1}) |",
                    family.name(),
                    stats.len(),
                    avg(&|s| s.num_results as f64),
                    minv,
                    leqv,
                    pctv,
                    maxv
                );
            }
        }
        fs::write(format!("{out_dir}/{table}"), out)?;
    }
    eprintln!("tables done");

    // TPC-H statistics
    let mut tpch = String::from("query,nodes,edges,chordal,minseps,mintri\n");
    for q in all_queries() {
        let seps = mintri_separators::all_minimal_separators(&q.graph).len();
        let count = mintri_core::MinimalTriangulationsEnumerator::new(&q.graph)
            .take(100_000)
            .count();
        let _ = writeln!(
            tpch,
            "Q{},{},{},{},{},{}",
            q.number,
            q.graph.num_nodes(),
            q.graph.num_edges(),
            mintri_chordal::is_chordal(&q.graph),
            seps,
            count
        );
    }
    fs::write(format!("{out_dir}/tpch_stats.csv"), tpch)?;
    eprintln!("tpch done — all outputs in {out_dir}/");
    Ok(())
}

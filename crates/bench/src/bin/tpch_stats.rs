//! Section 6.2.3: the TPC-H query statistics — per query: graph size,
//! chordality, number of minimal separators, number of minimal
//! triangulations, the minimum width over all enumerated triangulations,
//! total enumeration time, and the DunceCap-style exhaustive baseline with
//! a deadline (the paper reports its own implementation 3–4 orders of
//! magnitude faster, with the baseline unable to finish Q7/Q9).
//!
//! Emits CSV:
//! `query,nodes,edges,chordal,minseps,mintri,min_width,max_bag,enum_ms,baseline`.
//!
//! Flags: `--baseline-ms` deadline per query (default 2000), `--cap`
//! maximum triangulations to enumerate per query (default 100000).

use mintri_bench::baseline::{exhaustive_count, BaselineOutcome};
use mintri_bench::Args;
use mintri_chordal::is_chordal;
use mintri_core::MinimalTriangulationsEnumerator;
use mintri_separators::all_minimal_separators;
use mintri_workloads::all_queries;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let baseline_ms = args.get_u64("baseline-ms", 2000);
    let cap = args.get_usize("cap", 100_000);

    println!("query,nodes,edges,chordal,minseps,mintri,min_width,max_bag,enum_ms,baseline");
    let mut enum_total = 0.0f64;
    for q in all_queries() {
        let g = &q.graph;
        let seps = all_minimal_separators(g).len();
        let start = Instant::now();
        let mut count = 0usize;
        let mut min_width = usize::MAX;
        for t in MinimalTriangulationsEnumerator::new(g).take(cap) {
            count += 1;
            min_width = min_width.min(t.width());
        }
        let enum_ms = start.elapsed().as_secs_f64() * 1e3;
        enum_total += enum_ms;
        let baseline = match exhaustive_count(g, Duration::from_millis(baseline_ms)) {
            BaselineOutcome::Completed(c) => c.to_string(),
            BaselineOutcome::TimedOut(seen) => format!("timeout({seen} subsets)"),
        };
        println!(
            "Q{},{},{},{},{},{},{},{},{:.3},{}",
            q.number,
            g.num_nodes(),
            g.num_edges(),
            is_chordal(g),
            seps,
            count,
            min_width,
            min_width + 1,
            enum_ms,
            baseline
        );
    }
    eprintln!(
        "# all 22 queries enumerated in {:.2} s (paper: within 5 seconds); \
         baseline deadline was {} ms per query",
        enum_total / 1e3,
        baseline_ms
    );
}

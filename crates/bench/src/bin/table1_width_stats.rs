//! Table 1: width statistics of the generated triangulations per dataset
//! family and triangulation backend — #trng, min-w, #≤w1 (%), %w↓ (max) —
//! after a budgeted execution per graph (the paper used 30 minutes each).
//!
//! Prints a markdown table shaped like the paper's Table 1 (values are
//! per-family averages, maxima in parentheses).
//!
//! Flags: `--budget-ms` (default 1000), `--instances` (default 3),
//! `--seed`, `--algo`.

use mintri_bench::{run_budgeted, AlgoChoice, Args};
use mintri_core::QualityStats;
use mintri_workloads::PgmFamily;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 1000);
    let instances = args.get_usize("instances", 3);
    let seed = args.get_u64("seed", 42);
    let algos = AlgoChoice::parse_list(&args.get_str("algo", "both"));

    println!("| Dataset | #trng | min-w | #<=w1 (%) | %w_down (max) |");
    println!("|---|---|---|---|---|");
    for algo in algos {
        println!("| **{}** | | | | |", algo.name());
        for family in PgmFamily::ALL {
            let stats: Vec<QualityStats> = family
                .instances(instances, seed)
                .iter()
                .filter_map(|inst| run_budgeted(&inst.graph, algo, budget_ms).quality())
                .collect();
            if stats.is_empty() {
                continue;
            }
            let k = stats.len() as f64;
            let avg = |f: &dyn Fn(&QualityStats) -> f64| stats.iter().map(f).sum::<f64>() / k;
            let trng = avg(&|s| s.num_results as f64);
            let min_w = avg(&|s| s.min_width as f64);
            let leq = avg(&|s| s.num_leq_first_width as f64);
            let leq_pct = avg(&|s| 100.0 * s.num_leq_first_width as f64 / s.num_results as f64);
            let w_down = avg(&|s| s.width_improvement_pct);
            let w_down_max = stats
                .iter()
                .map(|s| s.width_improvement_pct)
                .fold(0.0f64, f64::max);
            println!(
                "| {} ({}) | {:.1} | {:.1} | {:.1} ({:.1}%) | {:.1} ({:.1}) |",
                family.name(),
                stats.len(),
                trng,
                min_w,
                leq,
                leq_pct,
                w_down,
                w_down_max
            );
        }
    }
}

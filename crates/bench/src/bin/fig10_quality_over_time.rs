//! Figure 10 (case study): the minimum observed width and fill over time on
//! the same Promedas-style graph as Figure 9. Width typically bottoms out
//! quickly; fill keeps improving for longer.
//!
//! Emits CSV: `measure,elapsed_ms,value` (one row per improvement of each
//! running minimum).
//!
//! Flags as in `fig9_cumulative`.

use mintri_bench::Args;
use mintri_core::{AnytimeSearch, EnumerationBudget};
use mintri_workloads::pgm::promedas;
use std::time::Duration;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 10_000);
    let seed = args.get_u64("seed", 7);
    let diseases = args.get_usize("diseases", 24);
    let findings = args.get_usize("findings", 72);
    let g = promedas(diseases, findings, 4, seed);

    let outcome = AnytimeSearch::new(&g)
        .budget(EnumerationBudget::time(Duration::from_millis(budget_ms)))
        .run();

    println!("measure,elapsed_ms,value");
    for (at, w) in outcome.running_min(|r| r.width) {
        println!("min_width,{},{}", at.as_millis(), w);
    }
    for (at, f) in outcome.running_min(|r| r.fill) {
        println!("min_fill,{},{}", at.as_millis(), f);
    }
    eprintln!(
        "# {} results over {:.1} ms on a {}-node graph",
        outcome.records.len(),
        outcome.elapsed.as_secs_f64() * 1e3,
        g.num_nodes()
    );
}

//! Figure 7 (a/b): average delay on Erdős–Rényi `G(n, p)` graphs for
//! `p ∈ {0.3, 0.5, 0.7}` and growing `n`, for both triangulation backends.
//!
//! Emits CSV: `algo,n,p,edges,results,completed,avg_delay_ms`.
//!
//! Flags: `--budget-ms` (default 1000), `--max-n` (default 90; the paper
//! sweeps to 200 with 30-minute budgets), `--step` (default 10), `--seed`,
//! `--algo`.

use mintri_bench::{run_budgeted, AlgoChoice, Args};
use mintri_workloads::random_suite;

fn main() {
    let args = Args::parse();
    let budget_ms = args.get_u64("budget-ms", 1000);
    let max_n = args.get_usize("max-n", 90);
    let step = args.get_usize("step", 10);
    let seed = args.get_u64("seed", 42);
    let algos = AlgoChoice::parse_list(&args.get_str("algo", "both"));

    println!("algo,n,p,edges,results,completed,avg_delay_ms");
    for algo in algos.iter().copied() {
        for (p, inst) in random_suite(max_n, step, seed) {
            let outcome = run_budgeted(&inst.graph, algo, budget_ms);
            let avg_ms = outcome
                .average_delay()
                .map(|d| d.as_secs_f64() * 1e3)
                .unwrap_or(f64::NAN);
            println!(
                "{},{},{},{},{},{},{:.3}",
                algo.name(),
                inst.graph.num_nodes(),
                p,
                inst.graph.num_edges(),
                outcome.records.len(),
                outcome.completed,
                avg_ms
            );
        }
    }
}

//! Load generator for the HTTP transport: boots an in-process
//! `mintri-serve` server over one shared engine and measures request
//! throughput **cold** (every request hits a graph the engine has never
//! seen — the full enumeration runs) vs. **warm-replay** (the same query
//! again — served from the session's completed answer cache with zero
//! `Extend` calls). Emits `BENCH_serve.json`.
//!
//! The gate workload is a budget-free best-k scan with `"plan": false`
//! and `"ranked": false`: the response body is tiny (k = 2 items), so
//! the measured ratio is compute-vs-replay, not JSON rendering;
//! planning is disabled so every distinct cold graph owns a distinct
//! whole-graph session (no atom sharing between the "cold" requests);
//! the ranked gear is disabled because its output-sensitive scan never
//! drains the enumeration, which is the very compute this gate measures. Cold graphs are an `n`-cycle
//! plus one chord at varying positions — structurally similar cost,
//! pairwise distinct fingerprints. A second, ungated workload streams a
//! full `enumerate` (items and all) for end-to-end wire throughput.
//!
//! Flags: `--out FILE` (default `BENCH_serve.json`), `--quick 1` (CI
//! smoke: smaller cycle, fewer rounds), `--warm N` (warm requests,
//! default 50).
//!
//! Per the `BENCH_engine.json` convention the document stamps the
//! host's CPU count and `"speedup_observable": false` when `cpus == 1`
//! — the replay-vs-compute ratios here are single-stream and remain
//! valid either way (the stamp gates only thread-scaling readings).
//!
//! `bench_check` consumes this file and fails CI when the warm-replay
//! gate (ratio, equal scan counts, `is_replay`) regresses.

use mintri_bench::Args;
use mintri_core::json::{graph_to_json, JsonValue};
use mintri_engine::Engine;
use mintri_graph::{Graph, Node};
use mintri_serve::client::Client;
use mintri_serve::{ServeConfig, Server};
use mintri_workloads::random::chord_cycle;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Measured {
    requests: usize,
    seconds: f64,
    scanned_last: usize,
    replay_last: bool,
}

/// Runs `specs` sequentially over one keep-alive connection; returns
/// wall-clock plus the last response's scan count and replay flag.
fn drive(client: &mut Client, specs: &[String]) -> Measured {
    let started = Instant::now();
    let mut scanned_last = 0;
    let mut replay_last = false;
    for spec in specs {
        let resp = client
            .request("POST", "/v1/query", Some(spec))
            .expect("query request");
        assert_eq!(resp.status, 200, "query failed: {}", resp.body);
        let doc = JsonValue::parse(&resp.body).expect("response parses");
        scanned_last = doc
            .get("outcome")
            .and_then(|o| o.get("scanned"))
            .and_then(JsonValue::as_usize)
            .expect("outcome.scanned");
        replay_last = doc
            .get("is_replay")
            .and_then(JsonValue::as_bool)
            .expect("is_replay");
    }
    Measured {
        requests: specs.len(),
        seconds: started.elapsed().as_secs_f64(),
        scanned_last,
        replay_last,
    }
}

fn upload(client: &mut Client, g: &Graph) -> String {
    let resp = client
        .request("POST", "/v1/graphs", Some(&graph_to_json(g)))
        .expect("upload request");
    assert_eq!(resp.status, 200, "upload failed: {}", resp.body);
    JsonValue::parse(&resp.body)
        .expect("upload response parses")
        .get("graph_id")
        .and_then(JsonValue::as_str)
        .expect("graph_id")
        .to_string()
}

// `"ranked": false` keeps this the full-scan gate: the ranked gear is
// output-sensitive (stops after ~k pulls, deposits no answer cache), so
// a ranked cold request would neither exercise the compute being gated
// nor arm the warm replay.
fn best_k_spec(graph_id: &str) -> String {
    format!(
        r#"{{"graph_id":"{graph_id}","query":{{"task":{{"type":"best_k","k":2,"cost":"width"}},"plan":false,"ranked":false}}}}"#
    )
}

fn enumerate_spec(graph_id: &str) -> String {
    format!(r#"{{"graph_id":"{graph_id}","query":{{"task":{{"type":"enumerate"}}}}}}"#)
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_serve.json");
    let quick = args.get_usize("quick", 0) != 0;
    let warm_rounds = args.get_usize("warm", 50);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_observable = cpus > 1;

    // The chord family: quick keeps CI fast, full pushes the cold cost
    // up so the ratio reading is steadier.
    let n = if quick { 10 } else { 12 };
    let chords: Vec<Node> = (2..(n as Node - 1)).collect();

    let server = Server::bind(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
        Arc::new(Engine::new()),
    )?;
    let addr = server.local_addr()?;
    let handle = server.handle()?;
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr)?;

    // -- gate workload: best-k over the chord family ---------------------
    let ids: Vec<String> = chords
        .iter()
        .map(|&j| upload(&mut client, &chord_cycle(n, j)))
        .collect();
    eprintln!(
        "cold: {} distinct C{n}+chord graphs, best-k scan each …",
        ids.len()
    );
    let cold_specs: Vec<String> = ids.iter().map(|id| best_k_spec(id)).collect();
    let cold = drive(&mut client, &cold_specs);
    assert!(!cold.replay_last, "cold requests must compute, not replay");

    // The gate graph is the last cold one; its scan count is in hand.
    let gate_id = ids.last().expect("non-empty chord family");
    let cold_scanned = cold.scanned_last;
    eprintln!("warm: {warm_rounds} replays of the same best-k query …");
    let warm_specs: Vec<String> = (0..warm_rounds).map(|_| best_k_spec(gate_id)).collect();
    let warm = drive(&mut client, &warm_specs);
    assert!(warm.replay_last, "warm requests must replay");
    assert_eq!(
        warm.scanned_last, cold_scanned,
        "replay must scan the same answer set"
    );

    let cold_rps = cold.requests as f64 / cold.seconds.max(1e-9);
    let warm_rps = warm.requests as f64 / warm.seconds.max(1e-9);
    let ratio = warm_rps / cold_rps.max(1e-9);
    eprintln!("gate: cold {cold_rps:.1} req/s, warm-replay {warm_rps:.1} req/s ({ratio:.0}x)");

    // -- side workload: full enumerate stream over the wire --------------
    let enum_id = upload(&mut client, &Graph::cycle(if quick { 7 } else { 8 }));
    let enum_cold = drive(&mut client, &[enumerate_spec(&enum_id)]);
    let enum_warm_specs: Vec<String> = (0..warm_rounds).map(|_| enumerate_spec(&enum_id)).collect();
    let enum_warm = drive(&mut client, &enum_warm_specs);
    assert!(enum_warm.replay_last);
    assert_eq!(enum_warm.scanned_last, enum_cold.scanned_last);
    let enum_cold_rps = enum_cold.requests as f64 / enum_cold.seconds.max(1e-9);
    let enum_warm_rps = enum_warm.requests as f64 / enum_warm.seconds.max(1e-9);
    eprintln!(
        "enumerate: cold {enum_cold_rps:.1} req/s, warm {enum_warm_rps:.1} req/s \
         ({} results per response)",
        enum_cold.scanned_last
    );

    drop(client);
    handle.shutdown();
    server_thread.join().expect("server thread").ok();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve_throughput\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"speedup_observable\": {speedup_observable},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(json, "    \"workload\": \"bestk_C{n}_chord\",");
    let _ = writeln!(json, "    \"cold_requests\": {},", cold.requests);
    let _ = writeln!(json, "    \"cold_seconds\": {:.6},", cold.seconds);
    let _ = writeln!(json, "    \"cold_rps\": {cold_rps:.2},");
    let _ = writeln!(json, "    \"warm_requests\": {},", warm.requests);
    let _ = writeln!(json, "    \"warm_seconds\": {:.6},", warm.seconds);
    let _ = writeln!(json, "    \"warm_rps\": {warm_rps:.2},");
    let _ = writeln!(json, "    \"warm_over_cold\": {ratio:.2},");
    let _ = writeln!(json, "    \"cold_scanned\": {cold_scanned},");
    let _ = writeln!(json, "    \"warm_scanned\": {},", warm.scanned_last);
    let _ = writeln!(json, "    \"warm_is_replay\": {}", warm.replay_last);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"enumerate\": {{");
    let _ = writeln!(
        json,
        "    \"workload\": \"enumerate_C{}\",",
        if quick { 7 } else { 8 }
    );
    let _ = writeln!(
        json,
        "    \"results_per_response\": {},",
        enum_cold.scanned_last
    );
    let _ = writeln!(json, "    \"cold_rps\": {enum_cold_rps:.2},");
    let _ = writeln!(json, "    \"warm_rps\": {enum_warm_rps:.2},");
    let _ = writeln!(json, "    \"warm_is_replay\": {}", enum_warm.replay_last);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Dispatch overhead of the typed `Query` → `Response` front door vs.
//! driving the sequential iterator directly, plus the engine's
//! query-path costs (cold run and warm replay). Emits `BENCH_query.json`
//! so future PRs can watch the front door stay thin.
//!
//! Three configurations per workload, all streaming the same `k`
//! results:
//!
//! * `direct`    — `MinimalTriangulationsEnumerator` (the kernel);
//! * `run_local` — `Query::enumerate().run_local(&g)` (adds budget
//!   checks, per-result quality records and the response plumbing);
//! * `engine`    — `Engine::run` on a cold session (adds fingerprinting,
//!   the session store and the shared-memo `MsGraph`), then the same
//!   query again as a warm `is_replay()` serve.
//!
//! Flags: `--out FILE` (default `BENCH_query.json`), `--results K`
//! (default 1500), `--max-n N` (default 40).
//!
//! Like `BENCH_engine.json`, the document stamps the host's CPU count
//! and `"speedup_observable": false` when `cpus == 1` — single-core
//! parallel numbers measure coordination overhead, not scaling (the
//! overhead figures here are sequential and remain valid either way).

use mintri_core::query::{ExecPolicy, Query};
use mintri_core::{EnumerationBudget, MinimalTriangulationsEnumerator};
use mintri_engine::Engine;
use mintri_workloads::random_suite;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock seconds to stream the first `k` triangulations.
fn time_stream<I: Iterator>(stream: I, k: usize) -> (usize, f64) {
    let started = Instant::now();
    let produced = stream.take(k).count();
    (produced, started.elapsed().as_secs_f64())
}

fn main() -> std::io::Result<()> {
    let args = mintri_bench::Args::parse();
    let out_path = args.get_str("out", "BENCH_query.json");
    let k = args.get_usize("results", 1500);
    let max_n = args.get_usize("max-n", 40);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_observable = cpus > 1;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"query_overhead\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"speedup_observable\": {speedup_observable},");
    let _ = writeln!(json, "  \"results_per_run\": {k},");
    let _ = writeln!(json, "  \"workloads\": [");

    let suite: Vec<_> = random_suite(max_n, 20, 42)
        .into_iter()
        .filter(|(p, _)| *p < 0.6)
        .collect();
    let mut first = true;
    for (p, inst) in &suite {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        eprintln!("workload {} …", inst.name);
        let g = &inst.graph;

        let (n_direct, direct_s) = time_stream(MinimalTriangulationsEnumerator::new(g), k);
        let (n_local, local_s) = {
            let started = Instant::now();
            let produced = Query::enumerate()
                .budget(EnumerationBudget::results(k))
                .run_local(g)
                .count();
            (produced, started.elapsed().as_secs_f64())
        };
        assert_eq!(n_direct, n_local, "the front door must not change counts");

        // Engine path: cold query, then the warm replay of the same query.
        // Replay needs a *completed* enumeration, so only time it when the
        // workload finishes within k results.
        let engine = Engine::new();
        let (n_engine, engine_s) = {
            let started = Instant::now();
            let produced = engine
                .run(
                    g,
                    Query::enumerate()
                        .budget(EnumerationBudget::results(k))
                        .policy(ExecPolicy::fixed().with_threads(1)),
                )
                .count();
            (produced, started.elapsed().as_secs_f64())
        };
        assert_eq!(n_direct, n_engine);
        let replay = if n_direct < k {
            let started = Instant::now();
            let response = engine.run(
                g,
                Query::enumerate().policy(ExecPolicy::fixed().with_threads(1)),
            );
            let replayed = response.is_replay();
            let produced = response.count();
            assert!(replayed && produced == n_direct);
            Some(started.elapsed().as_secs_f64())
        } else {
            None
        };

        let pct = |s: f64| 100.0 * (s - direct_s) / direct_s;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", inst.name);
        let _ = writeln!(json, "      \"p\": {p},");
        let _ = writeln!(json, "      \"nodes\": {},", g.num_nodes());
        let _ = writeln!(json, "      \"results\": {n_direct},");
        let _ = writeln!(
            json,
            "      \"direct\": {{\"seconds\": {direct_s:.6}, \"avg_delay_us\": {:.3}}},",
            1e6 * direct_s / n_direct.max(1) as f64
        );
        let _ = writeln!(
            json,
            "      \"run_local\": {{\"seconds\": {local_s:.6}, \"overhead_pct\": {:.2}}},",
            pct(local_s)
        );
        let _ = writeln!(
            json,
            "      \"engine_cold\": {{\"seconds\": {engine_s:.6}, \"overhead_pct\": {:.2}}}{}",
            pct(engine_s),
            if replay.is_some() { "," } else { "" }
        );
        if let Some(replay_s) = replay {
            let _ = writeln!(
                json,
                "      \"engine_replay\": {{\"seconds\": {replay_s:.6}, \"speedup_vs_direct\": {:.1}}}",
                direct_s / replay_s.max(1e-9)
            );
        }
        let _ = write!(json, "    }}");
    }
    json.push_str("\n  ],\n");

    // The serving story through the front door, on a graph whose
    // enumeration *completes* (replay requires a finished run): cold
    // engine query vs. warm `is_replay()` serve of the same query.
    let small = mintri_workloads::random::erdos_renyi(18, 0.3, 42);
    let engine = Engine::new();
    let started = Instant::now();
    let cold_n = engine
        .run(
            &small,
            Query::enumerate().policy(ExecPolicy::fixed().with_threads(1)),
        )
        .count();
    let cold_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let warm = engine.run(
        &small,
        Query::enumerate().policy(ExecPolicy::fixed().with_threads(1)),
    );
    assert!(warm.is_replay());
    let warm_n = warm.count();
    let warm_s = started.elapsed().as_secs_f64();
    assert_eq!(cold_n, warm_n);
    let _ = writeln!(
        json,
        "  \"session_replay\": {{\"graph\": \"gnp_n18_p0.3\", \"results\": {cold_n}, \
         \"cold_seconds\": {cold_s:.6}, \"warm_seconds\": {warm_s:.6}, \"speedup\": {:.1}}}",
        cold_s / warm_s.max(1e-9)
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Thread-scaling baseline for the parallel engine: sequential delay vs.
//! `ParallelEnumerator` at 1/2/4/8 threads over the Figure-7 random
//! workloads, plus the session layer's warm-replay speedup. Emits
//! `BENCH_engine.json` so future PRs have a perf trajectory to compare
//! against.
//!
//! Flags: `--out FILE` (default `BENCH_engine.json`), `--results K`
//! (triangulations measured per configuration, default 1500),
//! `--max-n N` (largest random-graph size, default 50).
//!
//! The JSON records the host's CPU count: on a single-core box the
//! multi-thread rows measure coordination overhead, not scaling — so the
//! top-level `"speedup_observable"` field is stamped `false` whenever
//! `cpus == 1`, and readers (humans and future PRs comparing perf
//! trajectories) must ignore `speedup_vs_sequential` in that case rather
//! than mistake ≈1× coordination-overhead numbers for a scaling result.

use mintri_bench::Args;
use mintri_core::MinimalTriangulationsEnumerator;
use mintri_engine::{Engine, ParallelEnumerator, Query};
use mintri_workloads::random_suite;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-clock seconds to stream the first `k` triangulations.
fn time_stream<I: Iterator>(stream: I, k: usize) -> (usize, f64) {
    let started = Instant::now();
    let produced = stream.take(k).count();
    (produced, started.elapsed().as_secs_f64())
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_engine.json");
    let k = args.get_usize("results", 1500);
    let max_n = args.get_usize("max-n", 50);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let speedup_observable = cpus > 1;
    if !speedup_observable {
        eprintln!(
            "warning: only 1 CPU visible — parallel rows measure coordination \
             overhead, not scaling; stamping \"speedup_observable\": false"
        );
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"engine_scaling\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"speedup_observable\": {speedup_observable},");
    let _ = writeln!(json, "  \"results_per_run\": {k},");
    let _ = writeln!(json, "  \"workloads\": [");

    let suite: Vec<_> = random_suite(max_n, 20, 42)
        .into_iter()
        .filter(|(p, _)| *p < 0.6) // densest family is too slow for a baseline
        .collect();
    let mut first_workload = true;
    for (p, inst) in &suite {
        if !first_workload {
            json.push_str(",\n");
        }
        first_workload = false;
        eprintln!("workload {} …", inst.name);

        let (seq_n, seq_s) = time_stream(MinimalTriangulationsEnumerator::new(&inst.graph), k);
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", inst.name);
        let _ = writeln!(json, "      \"p\": {p},");
        let _ = writeln!(json, "      \"nodes\": {},", inst.graph.num_nodes());
        let _ = writeln!(json, "      \"edges\": {},", inst.graph.num_edges());
        let _ = writeln!(json, "      \"results\": {seq_n},");
        let _ = writeln!(
            json,
            "      \"sequential\": {{\"seconds\": {seq_s:.6}, \"avg_delay_us\": {:.3}}},",
            1e6 * seq_s / seq_n.max(1) as f64
        );
        let _ = writeln!(json, "      \"parallel\": [");
        for (i, threads) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let (par_n, par_s) = time_stream(ParallelEnumerator::new(&inst.graph, threads), k);
            assert_eq!(par_n, seq_n, "parallel run must produce the same count");
            let _ = writeln!(
                json,
                "        {{\"threads\": {threads}, \"seconds\": {par_s:.6}, \
                 \"avg_delay_us\": {:.3}, \"speedup_vs_sequential\": {:.3}}}{}",
                1e6 * par_s / par_n.max(1) as f64,
                seq_s / par_s,
                if i < 3 { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = write!(json, "    }}");
    }
    json.push_str("\n  ],\n");

    // The serving story, measured on a graph whose enumeration *completes*
    // (replay requires a finished run): warm-session replay vs cold query.
    let small = mintri_workloads::random::erdos_renyi(18, 0.3, 42);
    let engine = Engine::new();
    let (replay_n, cold_s) = time_stream(engine.run(&small, Query::enumerate()), usize::MAX);
    let (_, warm_s) = time_stream(engine.run(&small, Query::enumerate()), usize::MAX);
    let _ = writeln!(
        json,
        "  \"session_replay\": {{\"graph\": \"gnp_n18_p0.3\", \"results\": {replay_n}, \
         \"cold_seconds\": {cold_s:.6}, \"warm_seconds\": {warm_s:.6}, \"speedup\": {:.1}}}",
        cold_s / warm_s.max(1e-9)
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Measures what the persistent warm-state tier buys: the same query
//! family is driven **cold** (fresh engine, empty `--store-dir`), then
//! **disk-hydrated** (a brand-new engine over the same directory — the
//! restart / second-replica story: plans and answer caches come back
//! from snapshots, zero `Extend` calls), then **RAM-warm** (the same
//! engine again — the in-memory replay ceiling). Emits
//! `BENCH_store.json`.
//!
//! The workload mirrors the serve-throughput gate: a family of
//! `n`-cycles plus one chord at varying positions, enumerated to
//! completion so every graph deposits its answer list. The gate reading
//! is `cold_seconds / hydrated_seconds` — hydration re-interns
//! separators instead of re-running `EnumMIS`, so it must be a large
//! multiple (CI gates >= 5x via `bench_check --store`).
//!
//! Flags: `--out FILE` (default `BENCH_store.json`), `--quick 1` (CI
//! smoke: smaller cycles), `--rounds N` (passes per phase, default 3;
//! cold rounds run on distinct fresh directories so every pass is
//! genuinely cold, hydrated rounds reopen the same directory with a
//! fresh engine).

use mintri_bench::Args;
use mintri_engine::{Engine, EngineConfig, Query, Store, StoreConfig};
use mintri_graph::{Graph, Node};
use mintri_workloads::random::chord_cycle;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A scratch store root, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("mintri-store-gain-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine_over(dir: &ScratchDir) -> Engine {
    Engine::with_store(
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        Arc::new(Store::open(StoreConfig::at(&dir.0)).expect("store opens")),
    )
}

struct Measured {
    seconds: f64,
    scanned: usize,
    all_replayed: bool,
}

/// Enumerates every graph to completion on `engine`; total wall time,
/// total result count, and whether every response was a replay.
fn drive(engine: &Engine, graphs: &[Graph]) -> Measured {
    let started = Instant::now();
    let mut scanned = 0;
    let mut all_replayed = true;
    for g in graphs {
        let response = engine.run(g, Query::enumerate());
        all_replayed &= response.is_replay();
        scanned += response.count();
    }
    Measured {
        seconds: started.elapsed().as_secs_f64(),
        scanned,
        all_replayed,
    }
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_store.json");
    let quick = args.get_usize("quick", 0) != 0;
    let rounds = args.get_usize("rounds", 3).max(1);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let n = if quick { 10 } else { 12 };
    let graphs: Vec<Graph> = (2..(n as Node - 1)).map(|j| chord_cycle(n, j)).collect();

    // -- cold: fresh engine, empty directory, every round ----------------
    eprintln!(
        "cold: {} distinct C{n}+chord graphs x {rounds} rounds …",
        graphs.len()
    );
    let mut cold_seconds = 0.0;
    let mut cold_scanned = 0;
    for round in 0..rounds {
        let dir = ScratchDir::new(&format!("cold-{round}"));
        let engine = engine_over(&dir);
        let cold = drive(&engine, &graphs);
        assert!(!cold.all_replayed, "cold rounds must compute, not replay");
        cold_seconds += cold.seconds;
        cold_scanned = cold.scanned;
    }

    // -- seed one directory, then hydrate fresh engines from it ----------
    let dir = ScratchDir::new("warm");
    {
        let seeder = engine_over(&dir);
        drive(&seeder, &graphs);
        seeder.store().expect("store attached").flush();
    }
    eprintln!("hydrated: fresh engine over the seeded directory x {rounds} rounds …");
    let mut hydrated_seconds = 0.0;
    let mut hydrated_scanned = 0;
    let mut hydrated_is_replay = true;
    let mut ram_seconds = 0.0;
    let mut ram_scanned = 0;
    let mut store_entries = 0;
    let mut store_bytes = 0;
    for _ in 0..rounds {
        let engine = engine_over(&dir);
        let hydrated = drive(&engine, &graphs);
        hydrated_seconds += hydrated.seconds;
        hydrated_scanned = hydrated.scanned;
        hydrated_is_replay &= hydrated.all_replayed;
        // -- RAM-warm ceiling: the same engine, sessions already hot ----
        let ram = drive(&engine, &graphs);
        assert!(ram.all_replayed, "the second pass must replay from RAM");
        ram_seconds += ram.seconds;
        ram_scanned = ram.scanned;
        let store = engine.store().expect("store attached");
        store_entries = store.entries();
        store_bytes = store.bytes_stored();
    }

    let ratio = cold_seconds / hydrated_seconds.max(1e-9);
    let ram_ratio = cold_seconds / ram_seconds.max(1e-9);
    eprintln!(
        "gate: cold {cold_seconds:.4}s, disk-hydrated {hydrated_seconds:.4}s ({ratio:.0}x), \
         RAM-warm {ram_seconds:.4}s ({ram_ratio:.0}x) over {cold_scanned} answers"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"store_gain\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"gate\": {{");
    let _ = writeln!(json, "    \"workload\": \"enumerate_C{n}_chord\",");
    let _ = writeln!(json, "    \"queries_per_round\": {},", graphs.len());
    let _ = writeln!(json, "    \"cold_seconds\": {cold_seconds:.6},");
    let _ = writeln!(json, "    \"hydrated_seconds\": {hydrated_seconds:.6},");
    let _ = writeln!(json, "    \"ram_seconds\": {ram_seconds:.6},");
    let _ = writeln!(json, "    \"cold_over_hydrated\": {ratio:.2},");
    let _ = writeln!(json, "    \"cold_over_ram\": {ram_ratio:.2},");
    let _ = writeln!(json, "    \"cold_scanned\": {cold_scanned},");
    let _ = writeln!(json, "    \"hydrated_scanned\": {hydrated_scanned},");
    let _ = writeln!(json, "    \"ram_scanned\": {ram_scanned},");
    let _ = writeln!(json, "    \"hydrated_is_replay\": {hydrated_is_replay},");
    let _ = writeln!(json, "    \"store_entries\": {store_entries},");
    let _ = writeln!(json, "    \"store_bytes\": {store_bytes}");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Gain of the scratch-space execution kernel: cold sequential
//! enumeration throughput (`Extend` calls per second) with the kernel on
//! vs. ablated (`MsGraph::without_scratch_kernel`), on the chord-cycle
//! family. Emits `BENCH_kernel.json` so CI can hold the kernel's speedup
//! above a floor (`bench_check --kernel`, default ≥ 1.3×).
//!
//! Both sides run the *same* enumeration — the kernel is identity-
//! preserving (see `tests/scratch_kernel.rs`) — so the delta is purely
//! the allocation traffic: per-`Extend` graph clones, bitset clones, BFS
//! queues, MCS-M buffers and clique-forest scratch that the ablated path
//! re-acquires from the allocator every call. A fresh `MsGraph` per
//! sweep keeps every pass cold (warm memo tables would collapse both
//! sides into cache lookups and hide the difference the gate is about).
//!
//! The speedup estimate is the median of paired per-round ratios
//! (ablated then kernel back to back each round), which cancels slow
//! clock-speed drift on a shared CI box; min-of-round times are reported
//! alongside. Single-threaded, so the speedup is observable on any
//! machine. Flags: `--out FILE` (default `BENCH_kernel.json`),
//! `--quick 1` (CI smoke: C10 family), `--rounds N` (default 5),
//! `--reps N` (family sweeps per timed pass; default 3, quick 6).

use mintri_bench::Args;
use mintri_core::{MinimalTriangulationsEnumerator, MsGraph};
use mintri_graph::{Graph, Node};
use mintri_sgr::PrintMode;
use mintri_workloads::random::chord_cycle;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed pass: `reps` cold sweeps over the whole family, each graph
/// enumerated to completion on a fresh `MsGraph`. Returns total `Extend`
/// calls per sweep and total seconds.
fn run_family(graphs: &[Graph], kernel: bool, reps: usize) -> (usize, f64) {
    let started = Instant::now();
    let mut extends = 0;
    for _ in 0..reps {
        extends = 0;
        for g in graphs {
            let ms = if kernel {
                MsGraph::new(g)
            } else {
                MsGraph::new(g).without_scratch_kernel()
            };
            let mut e =
                MinimalTriangulationsEnumerator::from_msgraph(ms, PrintMode::UponGeneration);
            let produced = e.by_ref().count();
            assert!(produced > 0, "family graph enumerated nothing");
            extends += e.msgraph_stats().extends;
        }
    }
    (extends, started.elapsed().as_secs_f64())
}

/// Paired rounds: each round times one ablated pass then one kernel pass
/// back to back; the speedup estimate is the *median of the per-round
/// time ratios* (ablated/kernel). Returns (extends per sweep, min
/// ablated s, min kernel s, median speedup).
fn measure(graphs: &[Graph], rounds: usize, reps: usize) -> (usize, f64, f64, f64) {
    let _ = run_family(graphs, true, 1); // untimed warmup
    let mut ablated = f64::INFINITY;
    let mut kernel = f64::INFINITY;
    let mut extends = 0;
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (n0, s0) = run_family(graphs, false, reps);
        let (n1, s1) = run_family(graphs, true, reps);
        assert_eq!(n0, n1, "the kernel must not change the Extend count");
        extends = n0;
        ablated = ablated.min(s0);
        kernel = kernel.min(s1);
        per_round.push(s0 / s1.max(1e-9));
    }
    per_round.sort_by(|a, b| a.total_cmp(b));
    let speedup = if per_round.len() % 2 == 1 {
        per_round[per_round.len() / 2]
    } else {
        (per_round[per_round.len() / 2 - 1] + per_round[per_round.len() / 2]) / 2.0
    };
    (extends, ablated, kernel, speedup)
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_kernel.json");
    let quick = args.get_usize("quick", 0) != 0;
    let rounds = args.get_usize("rounds", 5);
    let reps = args.get_usize("reps", if quick { 6 } else { 3 });
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // An n-cycle plus one chord at varying positions — the same cold
    // family the serve/telemetry gates sweep, rich enough that every
    // Extend saturates, triangulates and extracts separators.
    let n = if quick { 10 } else { 12 };
    let graphs: Vec<Graph> = (2..(n as Node - 1)).map(|j| chord_cycle(n, j)).collect();

    eprintln!(
        "kernel_gain: C{n} chord family, {} graphs, {rounds} rounds x {reps} sweeps",
        graphs.len()
    );
    let (extends, ablated_s, kernel_s, speedup) = measure(&graphs, rounds, reps);
    let ablated_rate = extends as f64 * reps as f64 / ablated_s.max(1e-9);
    let kernel_rate = extends as f64 * reps as f64 / kernel_s.max(1e-9);
    eprintln!("  ablated: {extends} extends/sweep, {ablated_rate:.0}/s (min of {rounds})");
    eprintln!("  kernel:  {extends} extends/sweep, {kernel_rate:.0}/s (min of {rounds})");
    eprintln!("  speedup: {speedup:.3}x (median of {rounds} paired rounds)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernel_gain\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    // Single-threaded paired comparison: the ratio does not depend on
    // the machine's core count.
    let _ = writeln!(json, "  \"speedup_observable\": true,");
    let _ = writeln!(json, "  \"family\": \"chord_cycle_n{n}\",");
    let _ = writeln!(json, "  \"graphs\": {},", graphs.len());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"reps_per_pass\": {reps},");
    let _ = writeln!(json, "  \"extends_per_sweep\": {extends},");
    let _ = writeln!(json, "  \"ablated_seconds\": {ablated_s:.6},");
    let _ = writeln!(json, "  \"kernel_seconds\": {kernel_s:.6},");
    let _ = writeln!(json, "  \"ablated_extends_per_sec\": {ablated_rate:.1},");
    let _ = writeln!(json, "  \"kernel_extends_per_sec\": {kernel_rate:.1},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

//! Cost of the observability layer: engine enumeration with per-query
//! span tracing (`Query::traced(true)`) vs. the same query untraced, on
//! the chord-cycle family. Emits `BENCH_telemetry.json` so CI can hold
//! the tracing tax under a hard ceiling (`bench_check --telemetry`,
//! default ≤ 5%).
//!
//! The registry counters/histograms are *always* on — they are plain
//! atomics on the hot paths and not separable — so the measured delta
//! is the span tree itself: `TraceBuilder` allocation, per-atom span
//! wrapping, clock reads and the attr writes at stream close. Both
//! sides run on a fresh cold `Engine` per round (no replay; replay
//! would serve from the answer cache and hide the enumeration cost the
//! gate is about), drain every result, and take a full `outcome()`
//! snapshot — the traced side pays for rendering the tree into the
//! outcome, which is part of the honest price.
//!
//! The overhead estimate is the median of paired per-round ratios
//! (untraced then traced back to back each round), which cancels the
//! slow clock-speed drift a shared CI box shows; the raw min-of-round
//! times are reported alongside. Flags: `--out FILE` (default
//! `BENCH_telemetry.json`), `--quick 1` (CI smoke: C10 family),
//! `--rounds N` (default 5, quick 9), `--reps N` (family sweeps per
//! timed pass; default 3, quick 12).

use mintri_bench::Args;
use mintri_core::query::{ExecPolicy, Query};
use mintri_engine::Engine;
use mintri_graph::{Graph, Node};
use mintri_workloads::random::chord_cycle;
use std::fmt::Write as _;
use std::time::Instant;

/// One timed pass: `reps` cold engine sweeps over the whole family
/// (fresh `Engine` per sweep — replay would hide the enumeration cost
/// the gate is about). Returns results per sweep and total seconds.
fn run_family(graphs: &[Graph], traced: bool, reps: usize) -> (usize, f64) {
    let started = Instant::now();
    let mut produced = 0;
    for _ in 0..reps {
        let engine = Engine::new();
        produced = 0;
        for g in graphs {
            let mut response = engine.run(
                g,
                Query::enumerate()
                    .policy(ExecPolicy::fixed().with_threads(1))
                    .traced(traced),
            );
            produced += response.by_ref().count();
            let outcome = response.outcome();
            assert_eq!(
                outcome.trace.is_some(),
                traced,
                "trace presence must follow the query flag"
            );
        }
    }
    (produced, started.elapsed().as_secs_f64())
}

/// Paired rounds: each round times one untraced pass then one traced
/// pass back to back, and the overhead estimate is the *median of the
/// per-round ratios*. Adjacent pairing cancels slow drift (frequency
/// scaling, noisy neighbours on a shared box) that min-of-rounds over
/// two separate series cannot; the median discards the odd preempted
/// round. Returns (results per sweep, min untraced s, min traced s,
/// median overhead pct).
fn measure(graphs: &[Graph], rounds: usize, reps: usize) -> (usize, f64, f64, f64) {
    let _ = run_family(graphs, false, 1); // untimed warmup
    let mut untraced = f64::INFINITY;
    let mut traced = f64::INFINITY;
    let mut produced = 0;
    let mut per_round = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let (n0, s0) = run_family(graphs, false, reps);
        let (n1, s1) = run_family(graphs, true, reps);
        assert_eq!(n0, n1, "tracing must not change the answer set");
        produced = n0;
        untraced = untraced.min(s0);
        traced = traced.min(s1);
        per_round.push(100.0 * (s1 - s0) / s0.max(1e-9));
    }
    per_round.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = if per_round.len() % 2 == 1 {
        per_round[per_round.len() / 2]
    } else {
        (per_round[per_round.len() / 2 - 1] + per_round[per_round.len() / 2]) / 2.0
    };
    (produced, untraced, traced, overhead_pct)
}

fn main() -> std::io::Result<()> {
    let args = Args::parse();
    let out_path = args.get_str("out", "BENCH_telemetry.json");
    let quick = args.get_usize("quick", 0) != 0;
    let rounds = args.get_usize("rounds", if quick { 9 } else { 5 });
    // Each timed pass sweeps the family `reps` times so one pass is
    // long enough (hundreds of ms) that scheduler jitter on a shared
    // box doesn't swamp a few-percent signal.
    let reps = args.get_usize("reps", if quick { 12 } else { 3 });
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Same family as `serve_throughput`: an n-cycle plus one chord at
    // varying positions — pairwise distinct fingerprints, so every
    // query is a genuine cold enumeration.
    let n = if quick { 10 } else { 12 };
    let graphs: Vec<Graph> = (2..(n as Node - 1)).map(|j| chord_cycle(n, j)).collect();

    eprintln!(
        "telemetry_overhead: C{n} chord family, {} graphs, {rounds} rounds x {reps} sweeps",
        graphs.len()
    );
    let (results, untraced_s, traced_s, overhead_pct) = measure(&graphs, rounds, reps);
    eprintln!("  untraced: {results} results/sweep in {untraced_s:.4}s (min of {rounds})");
    eprintln!("  traced:   {results} results/sweep in {traced_s:.4}s (min of {rounds})");
    eprintln!("  overhead: {overhead_pct:.2}% (median of {rounds} paired rounds)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"telemetry_overhead\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"family\": \"chord_cycle_n{n}\",");
    let _ = writeln!(json, "  \"graphs\": {},", graphs.len());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"reps_per_pass\": {reps},");
    let _ = writeln!(json, "  \"results\": {results},");
    let _ = writeln!(json, "  \"untraced_seconds\": {untraced_s:.6},");
    let _ = writeln!(json, "  \"traced_seconds\": {traced_s:.6},");
    let _ = writeln!(json, "  \"overhead_pct\": {overhead_pct:.3}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json)?;
    eprintln!("wrote {out_path}");
    Ok(())
}

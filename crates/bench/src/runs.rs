//! Budgeted enumeration runs shared by the figure/table binaries.

use mintri_core::{AnytimeOutcome, AnytimeSearch, EnumerationBudget};
use mintri_graph::Graph;
use mintri_sgr::PrintMode;
use mintri_triangulate::{LbTriang, McsM, Triangulator};
use std::time::Duration;

/// The two triangulation backends of the paper's study (Section 6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoChoice {
    /// `MCS_M`.
    McsM,
    /// `LB_TRIANG` with the min-fill heuristic.
    LbTriang,
}

impl AlgoChoice {
    /// Both backends, in the paper's table order.
    pub const BOTH: [AlgoChoice; 2] = [AlgoChoice::McsM, AlgoChoice::LbTriang];

    /// The paper's name for the backend.
    pub fn name(self) -> &'static str {
        match self {
            AlgoChoice::McsM => "MCS_M",
            AlgoChoice::LbTriang => "LB_TRIANG",
        }
    }

    /// Builds the triangulator.
    pub fn triangulator(self) -> Box<dyn Triangulator> {
        match self {
            AlgoChoice::McsM => Box::new(McsM),
            AlgoChoice::LbTriang => Box::new(LbTriang::min_fill()),
        }
    }

    /// Parses a `--algo` value (`mcsm`, `lbtriang`, `both`).
    pub fn parse_list(s: &str) -> Vec<AlgoChoice> {
        match s.to_ascii_lowercase().as_str() {
            "mcsm" | "mcs_m" => vec![AlgoChoice::McsM],
            "lbtriang" | "lb_triang" => vec![AlgoChoice::LbTriang],
            "both" => Self::BOTH.to_vec(),
            other => panic!("unknown --algo {other:?} (use mcsm, lbtriang or both)"),
        }
    }
}

/// Runs the enumeration on `g` for at most `budget_ms` milliseconds (the
/// scaled-down version of the paper's 30-minute executions).
pub fn run_budgeted(g: &Graph, algo: AlgoChoice, budget_ms: u64) -> AnytimeOutcome {
    AnytimeSearch::new(g)
        .triangulator(algo.triangulator())
        .mode(PrintMode::UponGeneration)
        .budget(EnumerationBudget::time(Duration::from_millis(budget_ms)))
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgeted_runs_terminate_and_produce() {
        let g = Graph::cycle(8);
        let out = run_budgeted(&g, AlgoChoice::McsM, 500);
        assert!(!out.records.is_empty());
    }

    #[test]
    fn algo_parsing() {
        assert_eq!(AlgoChoice::parse_list("both").len(), 2);
        assert_eq!(AlgoChoice::parse_list("mcsm"), vec![AlgoChoice::McsM]);
        assert_eq!(
            AlgoChoice::parse_list("LB_TRIANG"),
            vec![AlgoChoice::LbTriang]
        );
    }
}

//! Clique-minimal-separator (atom) decomposition — Leimer's theorem,
//! computed the Berry–Pogorelčnik–Simonet way.
//!
//! An **atom** of `g` is a maximal connected induced subgraph with no
//! clique separator. Leimer (1993) showed the decomposition is unique
//! and *factors minimal triangulations*: `MinTri(g)` is exactly the set
//! of independent combinations of the minimal triangulations of the
//! atoms (clique separators are never filled, and fill never crosses
//! one). The enumeration stack plans over this decomposition
//! (`mintri_core::query::Plan`) so a graph of ten small atoms costs the
//! sum of ten small enumerations, not one exponential blob.
//!
//! Finding a clique minimal separator does **not** require enumerating
//! `MinSep(g)` (exponential): for any *minimal triangulation* `h` of
//! `g`, the clique minimal separators of `g` are precisely the minimal
//! separators of `h` that induce cliques in `g` (Berry, Pogorelčnik,
//! Simonet 2010). `h` has at most `|V| − 1` minimal separators, read
//! off its clique forest — so each decomposition step is one MCS-M run
//! plus a clique-forest extraction, polynomial overall.
//!
//! ```
//! use mintri_graph::Graph;
//! use mintri_separators::atom_decomposition;
//!
//! // two 4-cycles sharing node 3: {3} is a clique minimal separator
//! let g = Graph::from_edges(
//!     7,
//!     &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 6), (6, 3)],
//! );
//! let d = atom_decomposition(&g);
//! assert_eq!(d.components.len(), 1);
//! assert_eq!(d.atoms.len(), 2); // the two cycles
//! assert_eq!(d.separators.len(), 1); // {3}
//! ```

use mintri_graph::traversal::{components_after_removing, components_within};
use mintri_graph::{Graph, NodeSet};
use mintri_triangulate::{minimal_triangulation, McsM};

/// The clique-minimal-separator decomposition of a graph: connected
/// components, atoms, and the separators the decomposition split on.
/// All node sets are in the input graph's node ids.
#[derive(Debug, Clone)]
pub struct AtomDecomposition {
    /// Connected components of the input, ordered by smallest node.
    /// Isolated vertices are single-node components.
    pub components: Vec<NodeSet>,
    /// The atoms, in the deterministic order the decomposition emits
    /// them (components in order, then recursive blocks by smallest
    /// node). Every vertex lies in at least one atom; two atoms overlap
    /// only inside a clique separator.
    pub atoms: Vec<NodeSet>,
    /// The clique minimal separators the decomposition split on, sorted
    /// and deduplicated. (Empty iff every component is an atom.)
    pub separators: Vec<NodeSet>,
}

impl AtomDecomposition {
    /// `true` iff decomposing bought nothing: the graph is connected and
    /// is its own single atom.
    pub fn is_trivial(&self) -> bool {
        self.atoms.len() == 1 && self.components.len() == 1
    }
}

/// A clique minimal separator of `g`, if one exists — found through a
/// minimal triangulation, never through `MinSep(g)` enumeration. The
/// choice is canonical (the lexicographically smallest candidate of the
/// MCS-M triangulation's clique forest), so the decomposition is
/// deterministic.
///
/// `g` may be disconnected; only separators of a single component are
/// returned (the empty set is not a clique separator in this sense —
/// split disconnected graphs into components first).
pub fn find_clique_minimal_separator(g: &Graph) -> Option<NodeSet> {
    let h = minimal_triangulation(g, &McsM);
    let mut candidates = mintri_chordal::minimal_separators_of_chordal(&h.graph);
    candidates.sort();
    candidates.into_iter().find(|s| g.is_clique(s))
}

/// Computes the full [`AtomDecomposition`] of `g`: connected components
/// first, then Leimer's recursive split of each component by clique
/// minimal separators into blocks `C ∪ N(C)` until no clique separator
/// remains. Polynomial: one MCS-M triangulation per split.
pub fn atom_decomposition(g: &Graph) -> AtomDecomposition {
    let components = components_within(g, &g.node_set());
    let mut atoms = Vec::new();
    let mut separators = Vec::new();
    for comp in &components {
        decompose_piece(g, comp.clone(), &mut atoms, &mut separators);
    }
    separators.sort();
    separators.dedup();
    AtomDecomposition {
        components,
        atoms,
        separators,
    }
}

/// Recursively splits the induced subgraph `g[piece]`, pushing its atoms
/// and the separators used. `piece` is connected.
fn decompose_piece(g: &Graph, piece: NodeSet, atoms: &mut Vec<NodeSet>, seps: &mut Vec<NodeSet>) {
    let (sub, old_of) = g.induced_subgraph(&piece);
    let Some(sep_local) = find_clique_minimal_separator(&sub) else {
        atoms.push(piece);
        return;
    };
    seps.push(lift(&sep_local, &old_of, g.num_nodes()));
    // Leimer blocks: one `C ∪ N(C)` per component of the piece minus the
    // separator. Each block is strictly smaller than the piece (the
    // separator leaves at least two components), so this terminates.
    for comp in components_after_removing(&sub, &sep_local) {
        let mut block = sub.neighborhood_of_set(&comp);
        block.union_with(&comp);
        decompose_piece(g, lift(&block, &old_of, g.num_nodes()), atoms, seps);
    }
}

/// Maps a node set of a renumbered subgraph back to the parent graph's
/// ids through the `new -> old` table.
fn lift(local: &NodeSet, old_of: &[mintri_graph::Node], n: usize) -> NodeSet {
    NodeSet::from_iter(n, local.iter().map(|v| old_of[v as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_minimal_separators;

    /// Ground-truth atom check (exponential; small graphs only): a piece
    /// is an atom iff it has no clique separator, i.e. no minimal
    /// separator of the induced subgraph is a clique.
    fn has_no_clique_separator(g: &Graph, piece: &NodeSet) -> bool {
        let (sub, _) = g.induced_subgraph(piece);
        all_minimal_separators(&sub)
            .iter()
            .all(|s| !sub.is_clique(s))
    }

    fn check_decomposition(g: &Graph) -> AtomDecomposition {
        let d = atom_decomposition(g);
        // every vertex covered
        let mut covered = NodeSet::new(g.num_nodes());
        for a in &d.atoms {
            covered.union_with(a);
        }
        assert_eq!(covered, g.node_set(), "atoms must cover every vertex");
        // every edge inside some atom
        for (u, v) in g.edges() {
            assert!(
                d.atoms.iter().any(|a| a.contains(u) && a.contains(v)),
                "edge ({u},{v}) not inside any atom"
            );
        }
        // each atom genuinely atomic, no atom contained in another
        for (i, a) in d.atoms.iter().enumerate() {
            assert!(has_no_clique_separator(g, a), "atom {a:?} is splittable");
            for (j, b) in d.atoms.iter().enumerate() {
                assert!(i == j || !a.is_subset(b), "atom {a:?} ⊆ atom {b:?}");
            }
        }
        // separators are genuine clique minimal separators
        for s in &d.separators {
            assert!(g.is_clique(s));
            assert!(crate::is_minimal_separator(g, s));
        }
        d
    }

    #[test]
    fn cycles_and_cliques_are_atoms() {
        for g in [Graph::cycle(5), Graph::cycle(8), Graph::complete(4)] {
            let d = check_decomposition(&g);
            assert!(d.is_trivial());
            assert_eq!(d.atoms.len(), 1);
            assert!(d.separators.is_empty());
        }
    }

    #[test]
    fn paths_decompose_into_edges() {
        let d = check_decomposition(&Graph::path(5));
        assert_eq!(d.atoms.len(), 4);
        assert_eq!(d.separators.len(), 3); // the internal nodes
        assert!(d.atoms.iter().all(|a| a.len() == 2));
    }

    #[test]
    fn two_cycles_glued_at_a_vertex() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
            ],
        );
        let d = check_decomposition(&g);
        assert_eq!(d.atoms.len(), 2);
        assert_eq!(d.separators.len(), 1);
        assert_eq!(d.separators[0].to_vec(), vec![3]);
    }

    #[test]
    fn cycles_glued_on_an_edge_split_there() {
        // C4 and C5 sharing the edge {0, 1}
        let mut g = Graph::from_edges(7, &[(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 6), (6, 1)]);
        g.add_edge(0, 1);
        let d = check_decomposition(&g);
        assert_eq!(d.atoms.len(), 2);
        assert_eq!(d.separators.len(), 1);
        assert_eq!(d.separators[0].to_vec(), vec![0, 1]);
    }

    #[test]
    fn disconnected_components_decompose_independently() {
        // C4 + P3 + isolated vertex
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 6)]);
        let d = check_decomposition(&g);
        assert_eq!(d.components.len(), 3);
        // C4 is one atom; P3 splits into two edges; the isolated vertex
        // is its own atom.
        assert_eq!(d.atoms.len(), 4);
    }

    #[test]
    fn chordal_graphs_decompose_into_maximal_cliques() {
        // two triangles sharing an edge, plus a pendant triangle
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (3, 5),
            ],
        );
        let d = check_decomposition(&g);
        assert_eq!(d.atoms.len(), 3);
        assert!(d.atoms.iter().all(|a| {
            let (sub, _) = g.induced_subgraph(a);
            sub.is_clique(&sub.node_set())
        }));
    }

    #[test]
    fn nested_separators_reach_fixpoint() {
        // a "caterpillar of cycles": C4 - C4 - C4 chained through cut
        // vertices 3 and 6
        let g = Graph::from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 6),
            ],
        );
        let d = check_decomposition(&g);
        assert_eq!(d.atoms.len(), 3);
        assert_eq!(d.separators.len(), 2);
    }

    #[test]
    fn finder_agrees_with_exhaustive_clique_separator_search() {
        // On every small graph: the MCS-M route finds a clique minimal
        // separator iff the exhaustive MinSep filter finds one.
        for (n, edges) in [
            (
                5,
                vec![(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)],
            ),
            (4, vec![(0, 1), (1, 2), (2, 3)]),
            (6, vec![(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]),
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
        ] {
            let g = Graph::from_edges(n, &edges);
            let exhaustive = all_minimal_separators(&g)
                .into_iter()
                .any(|s| g.is_clique(&s));
            assert_eq!(
                find_clique_minimal_separator(&g).is_some(),
                exhaustive,
                "{g:?}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let d = atom_decomposition(&Graph::new(0));
        assert!(d.components.is_empty() && d.atoms.is_empty());
        let d = atom_decomposition(&Graph::new(1));
        assert_eq!(d.atoms.len(), 1);
        let d = check_decomposition(&Graph::from_edges(2, &[(0, 1)]));
        assert_eq!(d.atoms.len(), 1);
    }
}

//! # mintri-separators — minimal separators and the crossing relation
//!
//! This crate implements the two access algorithms of the `MSGraph` SGR
//! (Section 3.1.1 of the paper):
//!
//! * [`MinimalSeparatorIter`] — the polynomial-delay variation (Figure 2) of
//!   the Berry–Bordat–Cogis algorithm for enumerating `MinSep(g)`, playing
//!   the role of `A_V^ms`;
//! * [`crossing`] — the crossing test `S ♮ T` (Section 2.2), playing the
//!   role of `A_E^ms`.
//!
//! A brute-force oracle ([`bruteforce`]) cross-validates both on small
//! graphs.
//!
//! ```
//! use mintri_graph::Graph;
//! use mintri_separators::{all_minimal_separators, crossing};
//!
//! let g = Graph::cycle(4);
//! let seps = all_minimal_separators(&g);
//! // the two diagonals {0,2} and {1,3} are the minimal separators…
//! assert_eq!(seps.len(), 2);
//! // …and they cross: no triangulation can saturate both
//! assert!(crossing(&g, &seps[0], &seps[1]));
//! ```

mod atoms;
mod berry;
mod cliquesep;
mod crossing;

pub mod bruteforce;

pub use atoms::{atom_decomposition, find_clique_minimal_separator, AtomDecomposition};
pub use berry::{all_minimal_separators, MinSepState, MinimalSeparatorIter};
pub use cliquesep::{
    clique_minimal_separators, is_clique_minimal_separator, minimal_uv_separators,
};
pub use crossing::{are_parallel, crossing, crossing_with, is_minimal_separator};

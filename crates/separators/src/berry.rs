//! Polynomial-delay enumeration of all minimal separators, after Berry,
//! Bordat and Cogis, in the variation of Figure 2 of the paper.
//!
//! The algorithm views minimal separators as neighborhoods of connected
//! components: it seeds the queue with `N(C)` for every component
//! `C ∈ C({v} ∪ N(v))` over all vertices `v`, and expands a popped
//! separator `S` by every `x ∈ S` into the neighborhoods of the components
//! of `g \ (S ∪ N(x))`. Every generated candidate is a genuine minimal
//! separator, and the process reaches all of them. The delay between two
//! consecutive results is `O(|V(g)|^3)`.
//!
//! Empty candidates (which arise only for disconnected inputs, where a whole
//! other component has an empty neighborhood) are suppressed: the iterator
//! yields the nonempty minimal separators, and disconnected graphs are
//! handled by per-component decomposition one level up (see
//! `mintri-core`).

use mintri_graph::traversal::components_after_removing;
use mintri_graph::{FxHashSet, Graph, NodeSet};
use std::collections::VecDeque;

/// The resumable state of the enumeration: the queue `Q` of generated but
/// unprocessed separators plus the deduplication set `Q ∪ P`.
///
/// Decoupling the state from the graph reference lets the `MSGraph` SGR use
/// it as its node cursor (the `A_V^ms` access algorithm), while
/// [`MinimalSeparatorIter`] packages both for standalone use.
#[derive(Debug, Clone, Default)]
pub struct MinSepState {
    /// Generated but not yet processed (the `Q` of Figure 2).
    queue: VecDeque<NodeSet>,
    /// Everything ever inserted into the queue (`Q ∪ P`), for deduplication.
    seen: FxHashSet<NodeSet>,
    seeded: bool,
}

impl MinSepState {
    /// Creates an unseeded state; the first [`MinSepState::next`] call seeds
    /// it from `g` (`O(|V| · (|V| + |E|))`).
    pub fn new() -> Self {
        Self::default()
    }

    fn push_candidate(&mut self, sep: NodeSet) {
        if !sep.is_empty() && !self.seen.contains(&sep) {
            self.seen.insert(sep.clone());
            self.queue.push_back(sep);
        }
    }

    /// Number of separators generated so far (including ones not yet
    /// yielded).
    pub fn generated(&self) -> usize {
        self.seen.len()
    }

    /// Produces the next minimal separator of `g`, or `None` when all have
    /// been enumerated. The same graph must be passed on every call.
    pub fn next(&mut self, g: &Graph) -> Option<NodeSet> {
        if !self.seeded {
            self.seeded = true;
            for v in g.nodes() {
                let closed = g.closed_neighborhood(v);
                for comp in components_after_removing(g, &closed) {
                    self.push_candidate(g.neighborhood_of_set(&comp));
                }
            }
        }
        let s = self.queue.pop_front()?;
        // expand S by every x ∈ S (lines 8–11 of Figure 2)
        for x in s.iter() {
            let mut removed = s.union(g.neighbors(x));
            removed.insert(x);
            for comp in components_after_removing(g, &removed) {
                self.push_candidate(g.neighborhood_of_set(&comp));
            }
        }
        Some(s)
    }
}

/// Lazy polynomial-delay iterator over `MinSep(g)`.
pub struct MinimalSeparatorIter<'g> {
    g: &'g Graph,
    state: MinSepState,
}

impl<'g> MinimalSeparatorIter<'g> {
    /// Starts the enumeration.
    pub fn new(g: &'g Graph) -> Self {
        MinimalSeparatorIter {
            g,
            state: MinSepState::new(),
        }
    }

    /// Number of separators generated so far (including ones not yet
    /// yielded).
    pub fn generated(&self) -> usize {
        self.state.generated()
    }
}

impl Iterator for MinimalSeparatorIter<'_> {
    type Item = NodeSet;

    fn next(&mut self) -> Option<NodeSet> {
        self.state.next(self.g)
    }
}

/// Collects all (nonempty) minimal separators of `g`. Convenience wrapper
/// over [`MinimalSeparatorIter`]; exponential output on worst-case inputs.
pub fn all_minimal_separators(g: &Graph) -> Vec<NodeSet> {
    let mut out: Vec<NodeSet> = MinimalSeparatorIter::new(g).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::Graph;

    fn as_vecs(seps: &[NodeSet]) -> Vec<Vec<u32>> {
        seps.iter().map(|s| s.to_vec()).collect()
    }

    #[test]
    fn path_separators_are_internal_nodes() {
        let g = Graph::path(5);
        let seps = all_minimal_separators(&g);
        assert_eq!(as_vecs(&seps), vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn cycle_separators_are_nonadjacent_pairs() {
        let g = Graph::cycle(5);
        let seps = all_minimal_separators(&g);
        // C5: every pair of non-adjacent nodes is a minimal separator -> 5 of them
        assert_eq!(seps.len(), 5);
        assert!(seps.iter().all(|s| s.len() == 2));
        for s in &seps {
            let v = s.to_vec();
            assert!(!g.has_edge(v[0], v[1]));
        }
    }

    #[test]
    fn complete_graph_has_none() {
        assert!(all_minimal_separators(&Graph::complete(5)).is_empty());
        assert!(all_minimal_separators(&Graph::new(1)).is_empty());
        assert!(all_minimal_separators(&Graph::new(0)).is_empty());
    }

    #[test]
    fn star_separator_is_the_center() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let seps = all_minimal_separators(&g);
        assert_eq!(as_vecs(&seps), vec![vec![0]]);
    }

    #[test]
    fn disconnected_graph_yields_per_component_separators() {
        // P3 + P3: minimal separators within components are the middles
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let seps = all_minimal_separators(&g);
        assert_eq!(as_vecs(&seps), vec![vec![1], vec![4]]);
    }

    #[test]
    fn k23_has_three_pair_separators_plus_sides() {
        // K_{2,3}: sides {0,1} and {2,3,4}
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        let seps = all_minimal_separators(&g);
        // {0,1} separates any two of {2,3,4}; each pair {2,3},{2,4},{3,4}
        // separates 0 from... no wait: removing {2,3} leaves 0-4-1 connected.
        // The minimal separators of K_{2,3} are {0,1} and {2,3,4}... removing
        // {2,3,4} separates 0 from 1. Check exact set:
        let vecs = as_vecs(&seps);
        assert!(vecs.contains(&vec![0, 1]));
        assert!(vecs.contains(&vec![2, 3, 4]));
        assert_eq!(vecs.len(), 2);
    }

    #[test]
    fn chordal_graph_matches_clique_tree_extraction() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (2, 3),
                (1, 3),
                (3, 4),
                (4, 5),
                (3, 5),
                (5, 6),
            ],
        );
        let mut from_tree = mintri_chordal::minimal_separators_of_chordal(&g);
        from_tree.sort();
        assert_eq!(all_minimal_separators(&g), from_tree);
    }

    #[test]
    fn iterator_is_lazy_and_deduplicated() {
        let g = Graph::cycle(6);
        let mut it = MinimalSeparatorIter::new(&g);
        let first = it.next().unwrap();
        assert!(!first.is_empty());
        let rest: Vec<_> = it.collect();
        let mut all: Vec<_> = std::iter::once(first).chain(rest).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before, "no duplicates may be yielded");
        // C6: separators are the 9 non-adjacent pairs... (6 "short" + 3 "diameter")
        assert_eq!(all.len(), 9);
    }
}

//! Brute-force oracles for cross-validating the separator machinery on
//! small graphs. Exponential — test use only (kept in the library so that
//! downstream crates' tests and property tests can share them).

use mintri_graph::traversal::separates;
use mintri_graph::{Graph, Node, NodeSet};

/// All minimal separators of `g`, straight from the definition in
/// Section 2.2: `S` is a minimal `(u,v)`-separator if it separates `u` from
/// `v` and no strict subset does; `S` is a minimal separator if it is a
/// minimal `(u,v)`-separator for some pair.
///
/// Exponential in `|V(g)|`; intended for graphs with at most ~12 nodes.
pub fn all_minimal_separators_bruteforce(g: &Graph) -> Vec<NodeSet> {
    let n = g.num_nodes();
    assert!(n <= 20, "brute-force separator oracle is exponential");
    let mut found: Vec<NodeSet> = Vec::new();
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            if g.has_edge(u, v) {
                continue; // adjacent nodes cannot be separated
            }
            for mask in 0u64..(1 << n) {
                if mask & (1 << u) != 0 || mask & (1 << v) != 0 {
                    continue;
                }
                let s = NodeSet::from_iter(n, (0..n as Node).filter(|&i| mask & (1 << i) != 0));
                if is_minimal_uv_separator(g, &s, u, v) {
                    found.push(s);
                }
            }
        }
    }
    found.sort();
    found.dedup();
    // the empty separator of disconnected graphs is excluded to match the
    // convention of the fast enumerator
    found.retain(|s| !s.is_empty());
    found
}

/// `true` iff `s` separates `u` from `v` and no strict subset of `s` does.
/// (Checking single-element removals suffices: separation is monotone under
/// supersets avoiding `u, v`.)
pub fn is_minimal_uv_separator(g: &Graph, s: &NodeSet, u: Node, v: Node) -> bool {
    if !separates(g, s, u, v) {
        return false;
    }
    for x in s.iter() {
        let mut smaller = s.clone();
        smaller.remove(x);
        if separates(g, &smaller, u, v) {
            return false;
        }
    }
    true
}

/// The crossing relation computed from first principles: `S ♮ T` iff some
/// pair `u, v ∈ T` is separated by `S`.
pub fn crossing_bruteforce(g: &Graph, s: &NodeSet, t: &NodeSet) -> bool {
    let tv = t.to_vec();
    for (i, &u) in tv.iter().enumerate() {
        for &v in &tv[i + 1..] {
            if separates(g, s, u, v) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{all_minimal_separators, crossing};
    use mintri_graph::Graph;

    #[test]
    fn oracle_agrees_with_fast_enumerator_on_fixed_graphs() {
        let graphs = vec![
            Graph::path(6),
            Graph::cycle(6),
            Graph::complete(4),
            Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]), // K_{2,3}
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]),                 // disconnected
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 2),
                ],
            ),
        ];
        for g in graphs {
            assert_eq!(
                all_minimal_separators(&g),
                all_minimal_separators_bruteforce(&g),
                "mismatch on {g:?}"
            );
        }
    }

    #[test]
    fn crossing_oracle_agrees_on_all_separator_pairs_of_c6() {
        let g = Graph::cycle(6);
        let seps = all_minimal_separators(&g);
        for s in &seps {
            for t in &seps {
                assert_eq!(
                    crossing(&g, s, t),
                    crossing_bruteforce(&g, s, t),
                    "mismatch for {s:?} vs {t:?}"
                );
            }
        }
    }

    #[test]
    fn crossing_is_symmetric_on_separator_pairs() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
                (1, 4),
            ],
        );
        let seps = all_minimal_separators(&g);
        for s in &seps {
            for t in &seps {
                assert_eq!(crossing(&g, s, t), crossing(&g, t, s));
            }
        }
    }
}

//! Clique minimal separators and pair-restricted separator enumeration —
//! the `ClqMinSep` toolbox of the paper's Section 4.1 (Theorem 4.4 is
//! stated in terms of it) plus the classic `(u, v)`-restricted view.

use crate::berry::MinimalSeparatorIter;
use crate::crossing::is_minimal_separator;
use mintri_graph::traversal::components_after_removing;
use mintri_graph::{Graph, Node, NodeSet};

/// The *clique* minimal separators of `g`: minimal separators that induce a
/// clique (`ClqMinSep(g)`). By Dirac's theorem, `g` is chordal iff *every*
/// minimal separator is one of these. Output is sorted and deduplicated;
/// exponential output is possible on worst-case inputs, like the full
/// enumeration.
pub fn clique_minimal_separators(g: &Graph) -> Vec<NodeSet> {
    let mut out: Vec<NodeSet> = MinimalSeparatorIter::new(g)
        .filter(|s| g.is_clique(s))
        .collect();
    out.sort();
    out
}

/// `true` iff `s` is a minimal separator of `g` that induces a clique.
pub fn is_clique_minimal_separator(g: &Graph, s: &NodeSet) -> bool {
    g.is_clique(s) && is_minimal_separator(g, s)
}

/// All minimal `(u, v)`-separators of `g`, for a fixed non-adjacent pair.
///
/// Uses the full-component characterization directly: `S` is a minimal
/// `(u, v)`-separator iff `S = N(C_u)` where `C_u` is the component of
/// `g \ S` containing `u`, and symmetrically for `v`. The enumeration
/// therefore filters the global minimal-separator stream by the
/// "separates `u` from `v` minimally" predicate; for the common case of
/// few separators this is simple and exact.
///
/// # Panics
/// Panics if `u` and `v` are adjacent or equal (no separator exists).
pub fn minimal_uv_separators(g: &Graph, u: Node, v: Node) -> Vec<NodeSet> {
    assert_ne!(u, v, "cannot separate a node from itself");
    assert!(!g.has_edge(u, v), "adjacent nodes cannot be separated");
    let mut out: Vec<NodeSet> = MinimalSeparatorIter::new(g)
        .filter(|s| is_minimal_uv_separator_fast(g, s, u, v))
        .collect();
    out.sort();
    out
}

/// `true` iff `s` (already known to be a minimal separator) is a minimal
/// `(u, v)`-separator: both the component of `u` and the component of `v`
/// in `g \ s` are *full* (their neighborhood is exactly `s`).
fn is_minimal_uv_separator_fast(g: &Graph, s: &NodeSet, u: Node, v: Node) -> bool {
    if s.contains(u) || s.contains(v) {
        return false;
    }
    let comps = components_after_removing(g, s);
    let cu = comps.iter().find(|c| c.contains(u));
    let cv = comps.iter().find(|c| c.contains(v));
    match (cu, cv) {
        (Some(cu), Some(cv)) => {
            !std::ptr::eq(cu, cv)
                && g.neighborhood_of_set(cu) == *s
                && g.neighborhood_of_set(cv) == *s
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::Graph;

    #[test]
    fn clique_separators_of_chordal_graphs_are_all_separators() {
        // chordal: two triangles sharing an edge
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]);
        let clique_seps = clique_minimal_separators(&g);
        let all = crate::all_minimal_separators(&g);
        assert_eq!(clique_seps, all);
        assert_eq!(clique_seps.len(), 1);
        assert_eq!(clique_seps[0].to_vec(), vec![1, 2]);
    }

    #[test]
    fn cycles_have_no_clique_separators() {
        // every minimal separator of C_n (n >= 4) is a non-adjacent pair
        for n in 4..8 {
            assert!(clique_minimal_separators(&Graph::cycle(n)).is_empty());
        }
    }

    #[test]
    fn mixed_graph_separator_classification() {
        // C4 with a pendant triangle on node 0: the pendant attachment is a
        // clique separator, the C4 pairs are not
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5), (0, 5)]);
        let clique_seps = clique_minimal_separators(&g);
        assert_eq!(clique_seps.len(), 1);
        assert_eq!(clique_seps[0].to_vec(), vec![0]);
        assert!(is_clique_minimal_separator(&g, &clique_seps[0]));
        let pair = NodeSet::from_iter(6, [1, 3]);
        assert!(!is_clique_minimal_separator(&g, &pair) || g.is_clique(&pair));
    }

    #[test]
    fn uv_separators_of_a_path() {
        let g = Graph::path(5);
        let seps = minimal_uv_separators(&g, 0, 4);
        let vecs: Vec<Vec<Node>> = seps.iter().map(|s| s.to_vec()).collect();
        assert_eq!(vecs, vec![vec![1], vec![2], vec![3]]);
        // only the middle node separates 1 from 3
        let seps13 = minimal_uv_separators(&g, 1, 3);
        assert_eq!(seps13.len(), 1);
        assert_eq!(seps13[0].to_vec(), vec![2]);
    }

    #[test]
    fn uv_separators_of_a_cycle() {
        let g = Graph::cycle(6);
        // separating antipodal nodes 0 and 3: pairs {1or2, 4or5}
        let seps = minimal_uv_separators(&g, 0, 3);
        assert_eq!(seps.len(), 4);
        for s in &seps {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn uv_separators_match_bruteforce_definition() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        for (u, v) in [(0u32, 2u32), (1, 3), (4, 6), (0, 5)] {
            if g.has_edge(u, v) {
                continue;
            }
            let fast = minimal_uv_separators(&g, u, v);
            let slow: Vec<NodeSet> = {
                let mut out = Vec::new();
                let n = g.num_nodes();
                for mask in 0u64..(1 << n) {
                    let s = NodeSet::from_iter(n, (0..n as Node).filter(|&i| mask & (1 << i) != 0));
                    if crate::bruteforce::is_minimal_uv_separator(&g, &s, u, v) && !s.is_empty() {
                        out.push(s);
                    }
                }
                out.sort();
                out
            };
            assert_eq!(fast, slow, "pair ({u},{v})");
        }
    }

    #[test]
    #[should_panic(expected = "adjacent")]
    fn uv_rejects_adjacent_pairs() {
        minimal_uv_separators(&Graph::path(3), 0, 1);
    }
}

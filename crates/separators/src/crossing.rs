//! The crossing relation `S ♮ T` between minimal separators (Section 2.2)
//! and a direct minimal-separator test.

use mintri_graph::traversal::{components_after_removing, count_components_meeting, BfsScratch};
use mintri_graph::{Graph, NodeSet};

/// `true` iff `s` crosses `t` in `g` (`S ♮ T`): there are nodes `u, v ∈ T`
/// such that `S` is a `(u, v)`-separator — equivalently, `T \ S` meets at
/// least two connected components of `g \ S`.
///
/// The relation is symmetric for minimal separators (Parra–Scheffler /
/// Kloks–Kratsch–Spinrad), which the property tests verify.
pub fn crossing(g: &Graph, s: &NodeSet, t: &NodeSet) -> bool {
    count_components_meeting(g, s, t) >= 2
}

/// [`crossing`] through a reusable [`BfsScratch`] — the same decision with
/// zero allocations once the scratch buffers are warm. This is the form
/// the enumeration kernel calls on every uncached edge query.
pub fn crossing_with(g: &Graph, s: &NodeSet, t: &NodeSet, scratch: &mut BfsScratch) -> bool {
    scratch.count_components_meeting(g, s, t) >= 2
}

/// `true` iff `s` and `t` are parallel (non-crossing).
pub fn are_parallel(g: &Graph, s: &NodeSet, t: &NodeSet) -> bool {
    !crossing(g, s, t)
}

/// Decides whether `s` is a minimal separator of `g`, using the
/// full-component characterization: `s` is a minimal separator iff `g \ s`
/// has at least two components `C` with `N(C) = s`.
pub fn is_minimal_separator(g: &Graph, s: &NodeSet) -> bool {
    let mut full = 0;
    for comp in components_after_removing(g, s) {
        if g.neighborhood_of_set(&comp) == *s {
            full += 1;
            if full == 2 {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::Graph;

    #[test]
    fn crossing_pairs_in_c4() {
        let g = Graph::cycle(4);
        let s = NodeSet::from_iter(4, [0, 2]);
        let t = NodeSet::from_iter(4, [1, 3]);
        assert!(crossing(&g, &s, &t));
        assert!(crossing(&g, &t, &s));
        assert!(!are_parallel(&g, &s, &t));
    }

    #[test]
    fn parallel_pairs_in_c6() {
        let g = Graph::cycle(6);
        // {0,2} and {0,4} are parallel: 2 and 4 both avoid... check: g\{0,2}
        // has components {1} and {3,4,5}; t={0,4}\s = {4} meets one.
        let s = NodeSet::from_iter(6, [0, 2]);
        let t = NodeSet::from_iter(6, [0, 4]);
        assert!(are_parallel(&g, &s, &t));
        assert!(are_parallel(&g, &t, &s));
        // but {0,3} and {1,4} cross
        let a = NodeSet::from_iter(6, [0, 3]);
        let b = NodeSet::from_iter(6, [1, 4]);
        assert!(crossing(&g, &a, &b));
        assert!(crossing(&g, &b, &a));
    }

    #[test]
    fn separator_never_crosses_itself() {
        let g = Graph::cycle(5);
        let s = NodeSet::from_iter(5, [0, 2]);
        assert!(!crossing(&g, &s, &s));
    }

    #[test]
    fn minimal_separator_test() {
        let g = Graph::path(5);
        assert!(is_minimal_separator(&g, &NodeSet::from_iter(5, [2])));
        // {1,2} separates 0 from 3 but is not minimal ({1} and {2} both work
        // for the relevant pairs; {1,2} has only one full component on the right)
        assert!(!is_minimal_separator(&g, &NodeSet::from_iter(5, [1, 2])));
        assert!(!is_minimal_separator(&g, &NodeSet::from_iter(5, [0])));
        assert!(!is_minimal_separator(&g, &NodeSet::new(5)));
    }

    #[test]
    fn empty_set_is_minimal_separator_of_disconnected_graph_by_full_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        // two components, both with empty neighborhoods -> two full components
        assert!(is_minimal_separator(&g, &NodeSet::new(4)));
    }
}

//! Separator enumeration on structured graph families where the answer is
//! known analytically or via the brute-force oracle.

use mintri_graph::{Graph, Node, NodeSet};
use mintri_separators::bruteforce::all_minimal_separators_bruteforce;
use mintri_separators::{
    all_minimal_separators, crossing, is_minimal_separator, MinimalSeparatorIter,
};

fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as Node;
            if c + 1 < cols {
                g.add_edge(id, id + 1);
            }
            if r + 1 < rows {
                g.add_edge(id, id + cols as Node);
            }
        }
    }
    g
}

#[test]
fn grid_3x3_matches_brute_force() {
    let g = grid(3, 3);
    assert_eq!(
        all_minimal_separators(&g),
        all_minimal_separators_bruteforce(&g)
    );
}

#[test]
fn every_yielded_set_is_a_minimal_separator() {
    let g = grid(3, 4);
    let mut count = 0;
    for s in MinimalSeparatorIter::new(&g) {
        assert!(is_minimal_separator(&g, &s), "{s:?} is not minimal");
        count += 1;
    }
    assert!(count > 10, "3x4 grids have many separators (got {count})");
}

#[test]
fn complete_multipartite_star_cases() {
    // K_{1,n}: only the center separates
    let star = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
    let seps = all_minimal_separators(&star);
    assert_eq!(seps.len(), 1);
    assert_eq!(seps[0].to_vec(), vec![0]);
}

#[test]
fn cycle_separator_count_is_non_adjacent_pairs() {
    // C_n: every pair of non-adjacent vertices, i.e. n(n-3)/2 separators
    for n in 4..10 {
        let g = Graph::cycle(n);
        assert_eq!(all_minimal_separators(&g).len(), n * (n - 3) / 2, "C{n}");
    }
}

#[test]
fn cycle_crossing_structure() {
    // In C_n, {a, b} crosses {c, d} iff the chords ac/bd interleave around
    // the cycle. Verify the count of crossing pairs on C5: the crossing
    // graph of C5's separators is the Petersen-complement structure — each
    // separator crosses exactly 2 others... verify via brute force instead.
    let g = Graph::cycle(5);
    let seps = all_minimal_separators(&g);
    for s in &seps {
        let crossing_count = seps.iter().filter(|t| crossing(&g, s, t)).count();
        // {i, i+2} crosses {i+1, i+3} and {i+1, i+4}: exactly 2
        assert_eq!(crossing_count, 2, "separator {s:?}");
    }
}

#[test]
fn nested_separators_are_parallel() {
    // In a path, all separators are singletons and pairwise parallel
    let g = Graph::path(8);
    let seps = all_minimal_separators(&g);
    assert_eq!(seps.len(), 6);
    for s in &seps {
        for t in &seps {
            assert!(!crossing(&g, s, t));
        }
    }
}

#[test]
fn separator_iterator_generated_counter_is_monotone() {
    let g = grid(3, 3);
    let mut it = MinimalSeparatorIter::new(&g);
    let mut last = it.generated();
    while it.next().is_some() {
        let now = it.generated();
        assert!(now >= last);
        last = now;
    }
}

#[test]
fn dense_graph_with_one_separator() {
    // two K4s sharing a triangle: unique minimal separator = the shared triangle
    let g = Graph::from_edges(
        5,
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 3),
            (0, 4),
            (1, 4),
            (2, 4),
        ],
    );
    let seps = all_minimal_separators(&g);
    assert_eq!(seps.len(), 1);
    assert_eq!(seps[0], NodeSet::from_iter(5, [0, 1, 2]));
}

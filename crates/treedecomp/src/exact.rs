//! Exact treewidth for small graphs, by dynamic programming over vertex
//! subsets (Bodlaender et al.'s formulation of the elimination-order DP).
//!
//! The treewidth of `g` equals the minimum over elimination orders of the
//! maximum back-degree, where eliminating `v` connects it to every
//! remaining vertex reachable through already-eliminated ones. The DP
//! memoizes on the *set of remaining vertices*: `tw(S) = min_{v ∈ S}
//! max(q(v, S), tw(S \ {v}))` with `q(v, S)` the number of vertices of
//! `S \ {v}` reachable from `v` via eliminated vertices. `O(2^n · n ·
//! (n + m))` — an oracle for validating the enumeration stack (the minimum
//! width over all minimal triangulations *is* the treewidth), not a
//! production solver.

use mintri_graph::traversal::component_of;
use mintri_graph::{FxHashMap, Graph, Node, NodeSet};

/// Computes the exact treewidth of `g`. Panics above 20 nodes (the DP is
/// exponential by design).
pub fn exact_treewidth(g: &Graph) -> usize {
    let n = g.num_nodes();
    assert!(
        n <= 20,
        "exact treewidth DP is exponential; use the enumerator for large graphs"
    );
    if n == 0 {
        return 0;
    }
    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut memo: FxHashMap<u32, usize> = FxHashMap::default();
    tw_rec(g, full, &mut memo)
}

/// Back-degree of `v` when the vertices outside `remaining` are already
/// eliminated: neighbors of `v` in `remaining`, plus vertices of
/// `remaining` reachable from `v` through eliminated vertices.
fn back_degree(g: &Graph, v: Node, remaining: u32) -> usize {
    let n = g.num_nodes();
    let rem_set = NodeSet::from_iter(n, (0..n as Node).filter(|&u| remaining & (1 << u) != 0));
    // allowed region for the reachability search: v plus eliminated vertices
    let mut allowed = g.node_set();
    allowed.difference_with(&rem_set);
    allowed.insert(v);
    let reach = component_of(g, v, &allowed);
    // boundary: remaining vertices adjacent to the reachable region
    let mut boundary = g.neighborhood_of_set(&reach);
    boundary.intersect_with(&rem_set);
    boundary.remove(v);
    boundary.len()
}

fn tw_rec(g: &Graph, remaining: u32, memo: &mut FxHashMap<u32, usize>) -> usize {
    if remaining == 0 {
        return 0;
    }
    if let Some(&tw) = memo.get(&remaining) {
        return tw;
    }
    let n = g.num_nodes();
    let mut best = usize::MAX;
    for v in 0..n as Node {
        if remaining & (1 << v) == 0 {
            continue;
        }
        let q = back_degree(g, v, remaining);
        if q >= best {
            continue; // cannot improve
        }
        let rest = tw_rec(g, remaining & !(1 << v), memo);
        best = best.min(q.max(rest));
    }
    memo.insert(remaining, best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_treewidths() {
        assert_eq!(exact_treewidth(&Graph::new(0)), 0);
        assert_eq!(exact_treewidth(&Graph::new(5)), 0);
        assert_eq!(exact_treewidth(&Graph::path(7)), 1);
        assert_eq!(exact_treewidth(&Graph::cycle(8)), 2);
        assert_eq!(exact_treewidth(&Graph::complete(6)), 5);
    }

    #[test]
    fn grid_treewidths() {
        // k×k grid has treewidth k
        let grid = |rows: usize, cols: usize| {
            let mut g = Graph::new(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    let id = (r * cols + c) as Node;
                    if c + 1 < cols {
                        g.add_edge(id, id + 1);
                    }
                    if r + 1 < rows {
                        g.add_edge(id, id + cols as Node);
                    }
                }
            }
            g
        };
        assert_eq!(exact_treewidth(&grid(2, 2)), 2);
        assert_eq!(exact_treewidth(&grid(3, 3)), 3);
        assert_eq!(exact_treewidth(&grid(3, 4)), 3);
        assert_eq!(exact_treewidth(&grid(4, 4)), 4);
    }

    #[test]
    fn complete_bipartite() {
        // tw(K_{m,n}) = min(m, n) for m, n >= 1... K_{2,3}: 2
        let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        assert_eq!(exact_treewidth(&g), 2);
    }

    #[test]
    fn chordal_graph_treewidth_matches_clique_number() {
        let mut g = Graph::cycle(6);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(0, 4);
        assert!(mintri_chordal::is_chordal(&g));
        assert_eq!(
            exact_treewidth(&g),
            mintri_chordal::treewidth_of_chordal(&g)
        );
    }

    #[test]
    fn disconnected_graph_takes_the_max() {
        // K4 + P3
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (5, 6),
            ],
        );
        assert_eq!(exact_treewidth(&g), 3);
    }
}

//! # mintri-treedecomp — tree decompositions and properness
//!
//! Section 5 of the paper: tree decompositions, the *proper* subclass
//! (those not strictly subsumed by another decomposition), and the
//! machinery behind Theorem 5.1 —
//!
//! * a proper tree decomposition of a chordal graph has exactly the maximal
//!   cliques as bags (Lemma 5.6);
//! * the decompositions within one `≡b`-class are the clique trees of the
//!   triangulation, i.e. the **maximum-weight spanning trees** of the clique
//!   graph (Jordan/Bernstein–Goodman), enumerable with polynomial delay
//!   ([`spanning::MaxWeightSpanningForests`]).
//!
//! ```
//! use mintri_graph::{Graph, NodeSet};
//! use mintri_treedecomp::TreeDecomposition;
//!
//! let g = Graph::path(4);
//! let d = TreeDecomposition {
//!     bags: vec![
//!         NodeSet::from_iter(4, [0, 1]),
//!         NodeSet::from_iter(4, [1, 2]),
//!         NodeSet::from_iter(4, [2, 3]),
//!     ],
//!     edges: vec![(0, 1), (1, 2)],
//! };
//! assert!(d.validate(&g).is_ok());
//! assert!(d.is_proper(&g)); // a path cannot be decomposed any better
//! assert_eq!(d.width(), 1);
//! assert_eq!(d.max_adhesion(), 1);
//! ```

mod decomposition;
mod exact;
mod measures;
pub mod spanning;

pub use decomposition::{proper_decompositions_of_chordal, TdError, TreeDecomposition};
pub use exact::exact_treewidth;

//! Tree decompositions (Section 2.4), their validation and quality
//! measures, and the properness test of Section 5.

use crate::spanning::{MaxWeightSpanningForests, WeightedGraph};
use mintri_chordal::{is_chordal, maximal_cliques_chordal};
use mintri_graph::{Graph, NodeSet};
use mintri_triangulate::is_minimal_triangulation;
use std::fmt;

/// A tree decomposition `(t, β)` of a graph, stored as the bags plus the
/// tree (forest, for disconnected graphs) edges over bag indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// The bags `β(v)`, one per tree node.
    pub bags: Vec<NodeSet>,
    /// Tree edges `(i, j)` with `i < j`, indexing into `bags`.
    pub edges: Vec<(usize, usize)>,
}

/// Why a candidate decomposition is not a valid tree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdError {
    /// The edge set contains a cycle or an out-of-range index.
    NotAForest,
    /// Some graph node appears in no bag.
    NodeNotCovered(mintri_graph::Node),
    /// Some graph edge is contained in no bag.
    EdgeNotCovered(mintri_graph::Node, mintri_graph::Node),
    /// Some node's bags do not form a connected subtree.
    JunctionViolated(mintri_graph::Node),
}

impl fmt::Display for TdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdError::NotAForest => write!(f, "bag graph is not a forest"),
            TdError::NodeNotCovered(v) => write!(f, "node {v} is covered by no bag"),
            TdError::EdgeNotCovered(u, v) => write!(f, "edge {{{u}, {v}}} is covered by no bag"),
            TdError::JunctionViolated(v) => {
                write!(f, "bags containing node {v} do not form a subtree")
            }
        }
    }
}

impl std::error::Error for TdError {}

impl TreeDecomposition {
    /// A one-bag decomposition containing every node (always valid; rarely
    /// proper).
    pub fn trivial(g: &Graph) -> TreeDecomposition {
        TreeDecomposition {
            bags: vec![g.node_set()],
            edges: Vec::new(),
        }
    }

    /// The *width*: size of the largest bag minus one.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(NodeSet::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// `saturate(g, d)`: `g` plus a clique on every bag (Section 2.4). For a
    /// valid decomposition this is always a triangulation of `g`
    /// (Proposition 5.5).
    pub fn saturate(&self, g: &Graph) -> Graph {
        let mut h = g.clone();
        for bag in &self.bags {
            h.saturate(bag);
        }
        h
    }

    /// The *fill* of the decomposition w.r.t. `g`: edges added by
    /// [`TreeDecomposition::saturate`].
    pub fn fill(&self, g: &Graph) -> usize {
        self.saturate(g).num_edges() - g.num_edges()
    }

    /// Validates the three tree-decomposition properties of Section 2.4
    /// against `g` (plus forest-ness of the edge set).
    pub fn validate(&self, g: &Graph) -> Result<(), TdError> {
        let k = self.bags.len();
        // forest check via union-find
        let mut parent: Vec<usize> = (0..k).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(i, j) in &self.edges {
            if i >= k || j >= k {
                return Err(TdError::NotAForest);
            }
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri == rj {
                return Err(TdError::NotAForest);
            }
            parent[ri] = rj;
        }
        // nodes covered
        for v in g.nodes() {
            if !self.bags.iter().any(|b| b.contains(v)) {
                return Err(TdError::NodeNotCovered(v));
            }
        }
        // edges covered
        for (u, v) in g.edges() {
            if !self.bags.iter().any(|b| b.contains(u) && b.contains(v)) {
                return Err(TdError::EdgeNotCovered(u, v));
            }
        }
        // junction property: the bags containing v are connected in the forest
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(i, j) in &self.edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        for v in g.nodes() {
            let holders: Vec<usize> = (0..k).filter(|&i| self.bags[i].contains(v)).collect();
            if holders.len() <= 1 {
                continue;
            }
            let mut seen = vec![false; k];
            seen[holders[0]] = true;
            let mut stack = vec![holders[0]];
            let mut reached = 1;
            while let Some(i) = stack.pop() {
                for &j in &adj[i] {
                    if self.bags[j].contains(v) && !seen[j] {
                        seen[j] = true;
                        reached += 1;
                        stack.push(j);
                    }
                }
            }
            if reached != holders.len() {
                return Err(TdError::JunctionViolated(v));
            }
        }
        Ok(())
    }

    /// The properness test of Section 5, via the bijection of Theorem 5.1:
    /// `d` is a proper tree decomposition of `g` iff it is valid,
    /// `h = saturate(g, d)` is a *minimal* triangulation of `g`, and the
    /// bags are exactly the maximal cliques of `h` (each appearing once).
    pub fn is_proper(&self, g: &Graph) -> bool {
        if self.validate(g).is_err() {
            return false;
        }
        let h = self.saturate(g);
        if !is_chordal(&h) || !is_minimal_triangulation(g, &h) {
            return false;
        }
        let mut bags = self.bags.clone();
        bags.sort();
        let has_duplicates = bags.windows(2).any(|w| w[0] == w[1]);
        if has_duplicates {
            return false;
        }
        let mut cliques = maximal_cliques_chordal(&h);
        cliques.sort();
        bags == cliques
    }
}

/// Enumerates, with polynomial delay, the proper tree decompositions of a
/// **chordal** graph `h` — i.e. the `≡b`-class `M(h)` of Theorem 5.1: all
/// clique trees of `h`, as maximum-weight spanning trees of the clique
/// graph.
///
/// # Panics
/// Panics if `h` is not chordal.
pub fn proper_decompositions_of_chordal(
    h: &Graph,
) -> impl Iterator<Item = TreeDecomposition> + 'static {
    let cliques = maximal_cliques_chordal(h);
    let k = cliques.len();
    let mut edges = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            let w = cliques[i].intersection_len(&cliques[j]) as i64;
            if w > 0 {
                edges.push((i, j, w));
            }
        }
    }
    let graph = WeightedGraph {
        num_nodes: k,
        edges: edges.clone(),
    };
    MaxWeightSpanningForests::new(graph).map(move |tree| TreeDecomposition {
        bags: cliques.clone(),
        edges: tree.iter().map(|&e| (edges[e].0, edges[e].1)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = Graph::cycle(5);
        let d = TreeDecomposition::trivial(&g);
        assert!(d.validate(&g).is_ok());
        assert_eq!(d.width(), 4);
        assert_eq!(d.fill(&g), 5);
    }

    #[test]
    fn path_decomposition_of_a_path() {
        let g = Graph::path(4);
        let d = TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(4, [0, 1]),
                NodeSet::from_iter(4, [1, 2]),
                NodeSet::from_iter(4, [2, 3]),
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(d.validate(&g).is_ok());
        assert_eq!(d.width(), 1);
        assert_eq!(d.fill(&g), 0);
        assert!(d.is_proper(&g));
    }

    #[test]
    fn validation_catches_each_violation() {
        let g = Graph::path(3);
        // node 2 missing
        let d1 = TreeDecomposition {
            bags: vec![NodeSet::from_iter(3, [0, 1])],
            edges: vec![],
        };
        assert_eq!(d1.validate(&g), Err(TdError::NodeNotCovered(2)));
        // edge 1-2 split across bags
        let d2 = TreeDecomposition {
            bags: vec![NodeSet::from_iter(3, [0, 1]), NodeSet::from_iter(3, [2])],
            edges: vec![(0, 1)],
        };
        assert_eq!(d2.validate(&g), Err(TdError::EdgeNotCovered(1, 2)));
        // junction violation: node 0 in bags 0 and 2 but not 1
        let d3 = TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(3, [0, 1]),
                NodeSet::from_iter(3, [1, 2]),
                NodeSet::from_iter(3, [0, 2]),
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert_eq!(d3.validate(&g), Err(TdError::JunctionViolated(0)));
        // cycle in the bag graph
        let d4 = TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(3, [0, 1]),
                NodeSet::from_iter(3, [1, 2]),
                NodeSet::from_iter(3, [1]),
            ],
            edges: vec![(0, 1), (1, 2), (0, 2)],
        };
        assert_eq!(d4.validate(&g), Err(TdError::NotAForest));
    }

    #[test]
    fn figure_4_properness_examples() {
        // The paper's Figure 4: g is the "kite" on {1,2,3,4} -> here 0-indexed:
        // edges 0-1, 1-2, 1-3, 2-3 (1 is the apex; {1,2,3} a triangle).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        // d1: bags {1,2,3} and {0,1} — proper
        let d1 = TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(4, [1, 2, 3]),
                NodeSet::from_iter(4, [0, 1]),
            ],
            edges: vec![(0, 1)],
        };
        assert!(d1.validate(&g).is_ok());
        assert!(d1.is_proper(&g));
        // d2: one bag {0,1,2,3} — improper (subsumed by d1)
        let d2 = TreeDecomposition::trivial(&g);
        assert!(!d2.is_proper(&g));
        // d3: d1 plus a redundant bag {2,3} — improper
        let d3 = TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(4, [1, 2, 3]),
                NodeSet::from_iter(4, [0, 1]),
                NodeSet::from_iter(4, [2, 3]),
            ],
            edges: vec![(0, 1), (0, 2)],
        };
        assert!(d3.validate(&g).is_ok());
        assert!(!d3.is_proper(&g));
    }

    #[test]
    fn saturation_produces_triangulations() {
        let g = Graph::cycle(6);
        let d = TreeDecomposition::trivial(&g);
        let h = d.saturate(&g);
        assert!(is_chordal(&h)); // complete graph
        assert!(h.is_supergraph_of(&g));
    }

    #[test]
    fn duplicate_bags_are_never_proper() {
        let g = Graph::path(2);
        let d = TreeDecomposition {
            bags: vec![NodeSet::from_iter(2, [0, 1]), NodeSet::from_iter(2, [0, 1])],
            edges: vec![(0, 1)],
        };
        assert!(d.validate(&g).is_ok());
        assert!(!d.is_proper(&g));
    }

    #[test]
    fn class_enumeration_for_a_path_is_unique() {
        let h = Graph::path(4);
        let ds: Vec<_> = proper_decompositions_of_chordal(&h).collect();
        assert_eq!(ds.len(), 1);
        assert!(ds[0].is_proper(&h));
    }

    #[test]
    fn class_enumeration_counts_clique_trees() {
        // three triangles sharing the apex 0: clique graph is K3 with equal
        // weights -> 3 clique trees
        let h = Graph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (0, 2),
                (0, 3),
                (3, 4),
                (0, 4),
                (0, 5),
                (5, 6),
                (0, 6),
            ],
        );
        assert!(is_chordal(&h));
        let ds: Vec<_> = proper_decompositions_of_chordal(&h).collect();
        assert_eq!(ds.len(), 3);
        for d in &ds {
            assert!(d.validate(&h).is_ok());
            assert!(d.is_proper(&h));
        }
    }

    #[test]
    fn class_enumeration_on_disconnected_chordal_graph() {
        let h = Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let ds: Vec<_> = proper_decompositions_of_chordal(&h).collect();
        assert_eq!(ds.len(), 1);
        assert!(ds[0].validate(&h).is_ok());
        assert_eq!(ds[0].num_bags(), 2);
    }
}

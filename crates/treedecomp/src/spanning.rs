//! Enumerating all maximum-weight spanning forests of an edge-weighted
//! graph, with polynomial delay.
//!
//! Theorem 5.1 reduces the enumeration of the proper tree decompositions in
//! one `≡b`-class to the enumeration of the maximum-weight spanning trees
//! of the clique graph (the paper cites Yamada–Kataoka–Watanabe \[43\]). We
//! use the classic Lawler-style partition scheme: find one optimal forest
//! `T`, report it, and split the remaining solution space by "contains
//! `e_1 … e_{i-1}` but not `e_i`" over the free edges of `T`; each
//! subproblem is solved by a constrained Kruskal run. Every optimal forest
//! is produced exactly once, with `O(|T| · m α(m))` work between outputs.

use std::collections::VecDeque;

/// An undirected edge-weighted graph for spanning-forest enumeration.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Edges `(u, v, weight)`.
    pub edges: Vec<(usize, usize, i64)>,
}

struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// A subproblem of the partition scheme: forests that contain all of
/// `included` and none of `excluded` (bitmask-free index sets).
struct Subproblem {
    included: Vec<usize>,
    excluded: Vec<usize>,
}

/// Iterator over all maximum-weight spanning forests, each reported as a
/// sorted `Vec` of edge indices into [`WeightedGraph::edges`].
pub struct MaxWeightSpanningForests {
    graph: WeightedGraph,
    /// Edge indices sorted by descending weight (Kruskal order).
    order: Vec<usize>,
    /// Weight and size of an unconstrained optimum.
    best_weight: i64,
    forest_size: usize,
    /// Pending subproblems (DFS).
    stack: Vec<Subproblem>,
    /// Buffered answers.
    pending: VecDeque<Vec<usize>>,
}

impl MaxWeightSpanningForests {
    /// Starts the enumeration.
    pub fn new(graph: WeightedGraph) -> Self {
        let mut order: Vec<usize> = (0..graph.edges.len()).collect();
        // descending weight; index order breaks ties for determinism
        order.sort_by(|&a, &b| graph.edges[b].2.cmp(&graph.edges[a].2).then(a.cmp(&b)));
        let mut it = MaxWeightSpanningForests {
            graph,
            order,
            best_weight: 0,
            forest_size: 0,
            stack: Vec::new(),
            pending: VecDeque::new(),
        };
        if let Some(t) = it.constrained_optimum(&[], &[]) {
            it.best_weight = t.iter().map(|&e| it.graph.edges[e].2).sum();
            it.forest_size = t.len();
            it.emit(t, Vec::new(), Vec::new());
        }
        it
    }

    /// Kruskal under constraints. Returns an optimal forest containing all
    /// `included` (assumed acyclic) and avoiding `excluded`, or `None` if
    /// `included` is cyclic.
    fn constrained_optimum(&self, included: &[usize], excluded: &[usize]) -> Option<Vec<usize>> {
        let mut uf = UnionFind::new(self.graph.num_nodes);
        let mut forest = Vec::with_capacity(self.forest_size.max(included.len()));
        for &e in included {
            let (u, v, _) = self.graph.edges[e];
            if !uf.union(u, v) {
                return None;
            }
            forest.push(e);
        }
        for &e in &self.order {
            if included.contains(&e) || excluded.contains(&e) {
                continue;
            }
            let (u, v, _) = self.graph.edges[e];
            if uf.union(u, v) {
                forest.push(e);
            }
        }
        forest.sort_unstable();
        Some(forest)
    }

    /// Reports `t` and pushes the child subproblems that partition the rest
    /// of the solutions under `(included, excluded)`.
    fn emit(&mut self, t: Vec<usize>, included: Vec<usize>, excluded: Vec<usize>) {
        let free: Vec<usize> = t
            .iter()
            .copied()
            .filter(|e| !included.contains(e))
            .collect();
        // children are pushed in reverse so that they pop in order
        for i in (0..free.len()).rev() {
            let mut inc = included.clone();
            inc.extend_from_slice(&free[..i]);
            let mut exc = excluded.clone();
            exc.push(free[i]);
            self.stack.push(Subproblem {
                included: inc,
                excluded: exc,
            });
        }
        self.pending.push_back(t);
    }
}

impl Iterator for MaxWeightSpanningForests {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        while self.pending.is_empty() {
            let sub = self.stack.pop()?;
            if let Some(t) = self.constrained_optimum(&sub.included, &sub.excluded) {
                let weight: i64 = t.iter().map(|&e| self.graph.edges[e].2).sum();
                if t.len() == self.forest_size && weight == self.best_weight {
                    self.emit(t, sub.included, sub.excluded);
                }
            }
        }
        self.pending.pop_front()
    }
}

/// Convenience: all maximum-weight spanning forests, materialized and
/// sorted.
pub fn all_max_weight_spanning_forests(graph: WeightedGraph) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = MaxWeightSpanningForests::new(graph).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force oracle: all subsets of edges of forest size, acyclic,
    /// spanning, of maximum weight.
    fn oracle(g: &WeightedGraph) -> Vec<Vec<usize>> {
        let m = g.edges.len();
        assert!(m <= 20);
        let mut best: Vec<Vec<usize>> = Vec::new();
        let mut best_key: Option<(usize, i64)> = None;
        for mask in 0u64..(1 << m) {
            let sel: Vec<usize> = (0..m).filter(|&e| mask & (1 << e) != 0).collect();
            let mut uf = UnionFind::new(g.num_nodes);
            if !sel.iter().all(|&e| uf.union(g.edges[e].0, g.edges[e].1)) {
                continue; // cyclic
            }
            let w: i64 = sel.iter().map(|&e| g.edges[e].2).sum();
            let key = (sel.len(), w);
            match best_key {
                None => {
                    best_key = Some(key);
                    best = vec![sel];
                }
                Some(k) => {
                    // maximize size first (spanning), then weight
                    use std::cmp::Ordering::*;
                    match (key.0.cmp(&k.0), key.1.cmp(&k.1)) {
                        (Greater, _) => {
                            best_key = Some(key);
                            best = vec![sel];
                        }
                        (Equal, Greater) => {
                            best_key = Some(key);
                            best = vec![sel];
                        }
                        (Equal, Equal) => best.push(sel),
                        _ => {}
                    }
                }
            }
        }
        best.sort();
        best
    }

    fn k_n_uniform(n: usize) -> WeightedGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v, 1));
            }
        }
        WeightedGraph {
            num_nodes: n,
            edges,
        }
    }

    #[test]
    fn cayley_counts_on_uniform_complete_graphs() {
        // n^(n-2) spanning trees of K_n with equal weights
        assert_eq!(all_max_weight_spanning_forests(k_n_uniform(3)).len(), 3);
        assert_eq!(all_max_weight_spanning_forests(k_n_uniform(4)).len(), 16);
        assert_eq!(all_max_weight_spanning_forests(k_n_uniform(5)).len(), 125);
    }

    #[test]
    fn unique_mst_when_weights_are_distinct() {
        let g = WeightedGraph {
            num_nodes: 4,
            edges: vec![(0, 1, 10), (1, 2, 9), (2, 3, 8), (3, 0, 7), (0, 2, 6)],
        };
        let all = all_max_weight_spanning_forests(g);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], vec![0, 1, 2]);
    }

    #[test]
    fn matches_oracle_on_mixed_weights() {
        let g = WeightedGraph {
            num_nodes: 5,
            edges: vec![
                (0, 1, 2),
                (1, 2, 2),
                (2, 3, 1),
                (3, 4, 2),
                (4, 0, 2),
                (0, 2, 2),
                (1, 3, 1),
            ],
        };
        assert_eq!(all_max_weight_spanning_forests(g.clone()), oracle(&g));
    }

    #[test]
    fn forests_of_disconnected_graphs() {
        let g = WeightedGraph {
            num_nodes: 5,
            edges: vec![(0, 1, 1), (1, 2, 1), (0, 2, 1), (3, 4, 1)],
        };
        let all = all_max_weight_spanning_forests(g.clone());
        // 3 trees on the triangle × 1 on the edge
        assert_eq!(all.len(), 3);
        assert_eq!(all, oracle(&g));
    }

    #[test]
    fn edgeless_graph_has_one_empty_forest() {
        let g = WeightedGraph {
            num_nodes: 3,
            edges: vec![],
        };
        assert_eq!(
            all_max_weight_spanning_forests(g),
            vec![Vec::<usize>::new()]
        );
    }

    #[test]
    fn no_duplicates_on_multigraph_like_ties() {
        let g = WeightedGraph {
            num_nodes: 4,
            edges: vec![(0, 1, 1), (0, 1, 1), (1, 2, 1), (2, 3, 1)],
        };
        let all = all_max_weight_spanning_forests(g.clone());
        assert_eq!(all.len(), 2); // either parallel edge
        assert_eq!(all, oracle(&g));
    }
}

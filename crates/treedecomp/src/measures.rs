//! Quality measures beyond width and fill.
//!
//! The paper's introduction motivates enumerating decompositions precisely
//! because applications rank them differently: join processing cares about
//! *adhesions* (parent–child bag intersections, Kalinsky et al. [27]),
//! weighted model counting about the CNF-tree parameter [28], and
//! junction-tree inference about the total table size. These measures let a
//! consumer score the enumerated decompositions without re-deriving the
//! plumbing.

use crate::TreeDecomposition;

impl TreeDecomposition {
    /// The adhesion sizes (`|bag_i ∩ bag_j|` per tree edge), unsorted.
    pub fn adhesion_sizes(&self) -> Vec<usize> {
        self.edges
            .iter()
            .map(|&(i, j)| self.bags[i].intersection_len(&self.bags[j]))
            .collect()
    }

    /// The largest adhesion — the dominant interface cost for caching-aware
    /// join plans.
    pub fn max_adhesion(&self) -> usize {
        self.adhesion_sizes().into_iter().max().unwrap_or(0)
    }

    /// Total junction-tree table size `Σ_bags domain^|bag|`, as an `f64` to
    /// survive large bags. The inference-cost proxy for a uniform domain.
    pub fn total_state_space(&self, domain: usize) -> f64 {
        self.bags
            .iter()
            .map(|b| (domain as f64).powi(b.len() as i32))
            .sum()
    }

    /// Sum of bag sizes (a compactness proxy; proper decompositions of the
    /// same graph can differ here only across bag classes).
    pub fn total_bag_size(&self) -> usize {
        self.bags.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_graph::NodeSet;

    fn path_decomposition() -> TreeDecomposition {
        TreeDecomposition {
            bags: vec![
                NodeSet::from_iter(4, [0, 1]),
                NodeSet::from_iter(4, [1, 2]),
                NodeSet::from_iter(4, [2, 3]),
            ],
            edges: vec![(0, 1), (1, 2)],
        }
    }

    #[test]
    fn adhesions_of_a_path() {
        let d = path_decomposition();
        assert_eq!(d.adhesion_sizes(), vec![1, 1]);
        assert_eq!(d.max_adhesion(), 1);
    }

    #[test]
    fn state_space_scales_with_domain() {
        let d = path_decomposition();
        assert_eq!(d.total_state_space(2), 12.0); // 3 bags × 2^2
        assert_eq!(d.total_state_space(10), 300.0);
        assert_eq!(d.total_bag_size(), 6);
    }

    #[test]
    fn single_bag_has_no_adhesions() {
        let d = TreeDecomposition {
            bags: vec![NodeSet::from_iter(3, [0, 1, 2])],
            edges: vec![],
        };
        assert_eq!(d.max_adhesion(), 0);
        assert!(d.adhesion_sizes().is_empty());
    }
}

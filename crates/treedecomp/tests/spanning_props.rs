//! Property tests for the maximum-weight spanning forest enumerator — the
//! engine behind Theorem 5.1's per-class polynomial delay.

use mintri_treedecomp::spanning::{
    all_max_weight_spanning_forests, MaxWeightSpanningForests, WeightedGraph,
};
use proptest::prelude::*;

/// A random weighted graph with up to 6 nodes and 9 edges, small weights
/// (to force plenty of ties — the interesting case).
fn weighted_graph() -> impl Strategy<Value = WeightedGraph> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1i64..=3), 0..=9).prop_map(move |raw| {
            let edges = raw
                .into_iter()
                .filter(|&(u, v, _)| u != v)
                .collect::<Vec<_>>();
            WeightedGraph {
                num_nodes: n,
                edges,
            }
        })
    })
}

/// Reference: exhaustive search over all edge subsets.
fn oracle(g: &WeightedGraph) -> Vec<Vec<usize>> {
    struct Uf(Vec<usize>);
    impl Uf {
        fn find(&mut self, mut x: usize) -> usize {
            while self.0[x] != x {
                self.0[x] = self.0[self.0[x]];
                x = self.0[x];
            }
            x
        }
        fn union(&mut self, a: usize, b: usize) -> bool {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                return false;
            }
            self.0[ra] = rb;
            true
        }
    }
    let m = g.edges.len();
    let mut best: Vec<Vec<usize>> = Vec::new();
    let mut best_key = (0usize, i64::MIN);
    for mask in 0u64..(1 << m) {
        let sel: Vec<usize> = (0..m).filter(|&e| mask & (1 << e) != 0).collect();
        let mut uf = Uf((0..g.num_nodes).collect());
        if !sel.iter().all(|&e| uf.union(g.edges[e].0, g.edges[e].1)) {
            continue;
        }
        let w: i64 = sel.iter().map(|&e| g.edges[e].2).sum();
        let key = (sel.len(), w);
        if key > best_key {
            best_key = key;
            best = vec![sel];
        } else if key == best_key {
            best.push(sel);
        }
    }
    best.sort();
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn enumeration_matches_exhaustive_search(g in weighted_graph()) {
        prop_assert_eq!(all_max_weight_spanning_forests(g.clone()), oracle(&g));
    }

    #[test]
    fn no_duplicates_and_all_valid(g in weighted_graph()) {
        let all: Vec<Vec<usize>> = MaxWeightSpanningForests::new(g.clone()).collect();
        let mut sorted = all.clone();
        sorted.sort();
        let n = sorted.len();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n, "duplicate forest emitted");
        // all reported forests have the same size and weight
        if let Some(first) = all.first() {
            let size = first.len();
            let weight: i64 = first.iter().map(|&e| g.edges[e].2).sum();
            for f in &all {
                prop_assert_eq!(f.len(), size);
                prop_assert_eq!(f.iter().map(|&e| g.edges[e].2).sum::<i64>(), weight);
            }
        }
    }

    #[test]
    fn lazy_prefix_is_consistent(g in weighted_graph()) {
        let all: Vec<Vec<usize>> = MaxWeightSpanningForests::new(g.clone()).collect();
        let prefix: Vec<Vec<usize>> = MaxWeightSpanningForests::new(g).take(3).collect();
        prop_assert_eq!(&all[..prefix.len().min(all.len())], &prefix[..]);
    }
}

//! Learned per-atom cost profiles — the statistics layer behind
//! `ExecPolicy::Auto`.
//!
//! Every stream the engine serves deposits one observation here, keyed
//! the same way sessions are: `(atom fingerprint, backend)`. Completed
//! live enumerations feed t-digest latency distributions (first-result
//! delay, mean inter-result gap) plus exact totals (results, `Extend`
//! calls, wall time); replays and hydrations bump hit counters. The
//! dispatch layer reads the profile back as a [`Prediction`] to choose
//! the pool atom, the cursor order, and the parallel-vs-sequential
//! threshold.
//!
//! **The invariant:** a profile steers *scheduling only*. Every
//! consumer must produce the same answer set (and, under a
//! deterministic contract, the same order) whether the profile is cold,
//! warm, stale, or wrong. That is why profiles carry no graph-equality
//! proof and why a corrupt or missing snapshot is only ever a cold
//! start.
//!
//! Profiles persist as [`ProfileSnapshot`] entries (kind 4) in the
//! `mintri-store` tier, so a restarted process schedules warm.

use mintri_store::{DigestSnapshot, ProfileSnapshot, Store};
use mintri_telemetry::{Counter, Gauge};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Buffered observations before a digest re-compresses.
const DIGEST_BUFFER: usize = 32;
/// t-digest compression: higher keeps more centroids (finer tails).
const COMPRESSION: f64 = 64.0;
/// Counter-only updates (replay/hydrate hits) between persists.
const PERSIST_EVERY: u32 = 32;

/// One weighted cluster of nearby observations.
#[derive(Debug, Clone, Copy)]
struct Centroid {
    mean: f64,
    weight: u64,
}

/// A small merging t-digest: observations buffer up and periodically
/// merge into a bounded centroid list, tight at the tails (the
/// `q(1-q)` size bound), so `p50`/`p99` stay accurate at a fixed
/// memory cost. Good enough for scheduling; not for billing.
#[derive(Debug, Clone, Default)]
pub struct TDigest {
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    count: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Folds one observation in (amortized O(1)).
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.buffer.push(v);
        if self.buffer.len() >= DIGEST_BUFFER {
            self.compress();
        }
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn compress(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut pts: Vec<Centroid> = std::mem::take(&mut self.centroids);
        pts.extend(
            self.buffer
                .drain(..)
                .map(|v| Centroid { mean: v, weight: 1 }),
        );
        pts.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        let total: u64 = pts.iter().map(|c| c.weight).sum();
        let mut out: Vec<Centroid> = Vec::with_capacity(pts.len().min(64));
        let mut acc = pts[0];
        let mut seen = 0u64; // weight already sealed into `out`
        for &c in &pts[1..] {
            let projected = acc.weight + c.weight;
            let q = (seen as f64 + projected as f64 / 2.0) / total as f64;
            let limit = (4.0 * total as f64 * q * (1.0 - q) / COMPRESSION).max(1.0);
            if projected as f64 <= limit {
                acc.mean =
                    (acc.mean * acc.weight as f64 + c.mean * c.weight as f64) / projected as f64;
                acc.weight = projected;
            } else {
                seen += acc.weight;
                out.push(acc);
                acc = c;
            }
        }
        out.push(acc);
        self.centroids = out;
    }

    /// The `q`-quantile estimate (`0.0 ≤ q ≤ 1.0`), `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        self.compress();
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let target = q * self.count as f64;
        let mut cum = 0.0;
        for (i, c) in self.centroids.iter().enumerate() {
            let w = c.weight as f64;
            if cum + w >= target {
                // Interpolate inside this centroid against its neighbor.
                let prev_mean = if i == 0 {
                    self.min
                } else {
                    self.centroids[i - 1].mean
                };
                let frac = ((target - cum) / w).clamp(0.0, 1.0);
                return Some(prev_mean + (c.mean - prev_mean) * frac);
            }
            cum += w;
        }
        Some(self.max)
    }

    /// Weighted mean of everything recorded.
    pub fn mean(&mut self) -> Option<f64> {
        self.compress();
        if self.count == 0 {
            return None;
        }
        let sum: f64 = self
            .centroids
            .iter()
            .map(|c| c.mean * c.weight as f64)
            .sum();
        Some(sum / self.count as f64)
    }

    /// The store-portable image (flushes the buffer first).
    pub fn snapshot(&mut self) -> DigestSnapshot {
        self.compress();
        DigestSnapshot {
            centroids: self
                .centroids
                .iter()
                .map(|c| (c.mean.to_bits(), c.weight))
                .collect(),
            count: self.count,
            min_bits: self.min.to_bits(),
            max_bits: self.max.to_bits(),
        }
    }

    /// Rebuilds from a store image, dropping non-finite or zero-weight
    /// centroids (a hostile snapshot can mis-schedule, never crash).
    pub fn from_snapshot(snap: &DigestSnapshot) -> TDigest {
        let centroids: Vec<Centroid> = snap
            .centroids
            .iter()
            .map(|&(bits, weight)| Centroid {
                mean: f64::from_bits(bits),
                weight,
            })
            .filter(|c| c.mean.is_finite() && c.weight > 0)
            .collect();
        let count = centroids.iter().map(|c| c.weight).sum();
        let min = f64::from_bits(snap.min_bits);
        let max = f64::from_bits(snap.max_bits);
        let mut d = TDigest {
            centroids,
            buffer: Vec::new(),
            count,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
        };
        d.centroids.sort_by(|a, b| a.mean.total_cmp(&b.mean));
        d
    }

    /// Folds another digest's centroids into this one (weighted merge,
    /// then one recompression).
    fn absorb(&mut self, other: &TDigest) {
        self.centroids.extend(other.centroids.iter().copied());
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.compress();
    }
}

/// What the engine learned about one `(atom, backend)` pair.
#[derive(Debug, Clone, Default)]
pub struct AtomProfile {
    /// Node count of the atom (context for human readers of `/v1/stats`).
    pub nodes: u32,
    /// First-result latency of completed live runs, µs.
    pub first_us: TDigest,
    /// Mean inter-result gap per completed live run, µs.
    pub gap_us: TDigest,
    /// Completed live enumerations folded in.
    pub live_runs: u64,
    /// Results across those runs.
    pub results_total: u64,
    /// `Extend` calls across those runs.
    pub extends_total: u64,
    /// Wall µs across those runs.
    pub wall_us_total: u64,
    /// Streams served from the in-RAM replay cache.
    pub replay_hits: u64,
    /// Streams hydrated from the disk tier.
    pub hydrate_hits: u64,
}

impl AtomProfile {
    /// Mean wall µs of a completed live enumeration; `None` until one
    /// completes (cold profiles must not pretend to know).
    pub fn predicted_wall_us(&self) -> Option<u64> {
        (self.live_runs > 0).then(|| self.wall_us_total / self.live_runs)
    }

    /// Mean result count of a completed live enumeration.
    pub fn predicted_results(&self) -> Option<u64> {
        (self.live_runs > 0).then(|| self.results_total / self.live_runs)
    }

    /// `Extend` invocations per emitted result (×1000, integer).
    pub fn extends_per_result_milli(&self) -> Option<u64> {
        (self.results_total > 0).then(|| self.extends_total * 1000 / self.results_total)
    }

    fn snapshot(&mut self, fingerprint: u64, backend: &str) -> ProfileSnapshot {
        ProfileSnapshot {
            fingerprint,
            backend: backend.to_string(),
            nodes: self.nodes,
            first_us: self.first_us.snapshot(),
            gap_us: self.gap_us.snapshot(),
            live_runs: self.live_runs,
            results_total: self.results_total,
            extends_total: self.extends_total,
            wall_us_total: self.wall_us_total,
            replay_hits: self.replay_hits,
            hydrate_hits: self.hydrate_hits,
        }
    }

    fn absorb_snapshot(&mut self, snap: &ProfileSnapshot) {
        self.nodes = self.nodes.max(snap.nodes);
        self.first_us
            .absorb(&TDigest::from_snapshot(&snap.first_us));
        self.gap_us.absorb(&TDigest::from_snapshot(&snap.gap_us));
        self.live_runs += snap.live_runs;
        self.results_total += snap.results_total;
        self.extends_total += snap.extends_total;
        self.wall_us_total += snap.wall_us_total;
        self.replay_hits += snap.replay_hits;
        self.hydrate_hits += snap.hydrate_hits;
    }
}

/// How a stream was actually served — the profile-side mirror of the
/// query layer's `DispatchKind` (live covers both parallel and
/// sequential; the profile cares about cost, not thread count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A live enumeration (`Extend` calls happened).
    Live,
    /// Served from the in-RAM completed-answer cache.
    Replay,
    /// Served by hydrating a disk snapshot.
    Hydrate,
}

/// One finished stream's observation, deposited on drop.
#[derive(Debug, Clone, Copy)]
pub struct RunRecord {
    /// How the stream was served.
    pub kind: RunKind,
    /// Whether the enumeration ran to completion (budgeted/cancelled
    /// runs never update the digests — a truncated wall would teach the
    /// scheduler that hard atoms are cheap).
    pub completed: bool,
    /// Results the stream emitted.
    pub results: u64,
    /// Creation-to-first-result delay, µs.
    pub first_us: Option<u64>,
    /// Creation-to-drop wall, µs.
    pub wall_us: u64,
    /// `Extend` calls attributable to this run.
    pub extends: u64,
}

/// What the dispatcher reads back: the profile compressed to the two
/// numbers scheduling runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Expected wall µs for a full live enumeration of this atom.
    pub wall_us: u64,
    /// Expected result count.
    pub results: u64,
}

/// A read-only row for `/v1/stats` — everything rendered under the
/// `profile` object.
#[derive(Debug, Clone)]
pub struct ProfileView {
    /// Atom fingerprint (hex in the wire form).
    pub fingerprint: u64,
    /// Backend the row was learned under.
    pub backend: &'static str,
    /// Node count of the atom.
    pub nodes: u32,
    /// Completed live runs folded into the digests.
    pub live_runs: u64,
    /// Replay-cache hits.
    pub replay_hits: u64,
    /// Disk-hydration hits.
    pub hydrate_hits: u64,
    /// Results across completed live runs.
    pub results_total: u64,
    /// `Extend` calls across completed live runs.
    pub extends_total: u64,
    /// Mean live wall, µs.
    pub predicted_wall_us: u64,
    /// Mean live result count.
    pub predicted_results: u64,
    /// First-result latency p50, µs.
    pub first_us_p50: u64,
    /// First-result latency p99, µs.
    pub first_us_p99: u64,
    /// Inter-result gap p50, µs.
    pub gap_us_p50: u64,
}

/// Metric handles the profiler bumps (write-only from hot paths, per
/// the telemetry invariant).
#[derive(Clone)]
pub struct ProfilerInstruments {
    /// Run observations folded in.
    pub runs_recorded: Arc<Counter>,
    /// Snapshots written to the store tier.
    pub persists: Arc<Counter>,
    /// Profiles warmed from a store snapshot.
    pub hydrates: Arc<Counter>,
    /// Distinct `(atom, backend)` profiles held in RAM.
    pub entries: Arc<Gauge>,
}

struct Slot {
    profile: AtomProfile,
    /// The disk tier was already consulted for this key (hit or miss) —
    /// never probe twice.
    probed: bool,
    /// Counter-only updates since the last persist.
    unsaved: u32,
}

/// The engine-wide profile table. One mutex: every touch is a handful
/// of integer folds on an already-finished stream, never on the
/// enumeration hot path itself.
#[derive(Default)]
pub struct Profiler {
    inner: Mutex<HashMap<(u64, &'static str), Slot>>,
    instruments: Option<ProfilerInstruments>,
}

impl Profiler {
    /// An uninstrumented profiler (tests, `run_local`-style embedding).
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Attaches metric handles; every later fold bumps them.
    pub fn instrumented(mut self, instruments: ProfilerInstruments) -> Profiler {
        self.instruments = Some(instruments);
        self
    }

    /// Ensures a slot exists, probing the disk tier exactly once per
    /// key. Caller holds the lock.
    fn warm_slot<'a>(
        map: &'a mut HashMap<(u64, &'static str), Slot>,
        instruments: &Option<ProfilerInstruments>,
        fingerprint: u64,
        backend: &'static str,
        store: Option<&Store>,
    ) -> &'a mut Slot {
        let slot = map.entry((fingerprint, backend)).or_insert_with(|| {
            if let Some(i) = instruments {
                i.entries.add(1);
            }
            Slot {
                profile: AtomProfile::default(),
                probed: false,
                unsaved: 0,
            }
        });
        if !slot.probed {
            slot.probed = true;
            if let Some(store) = store {
                if let Some(snap) = store.load_profile(fingerprint, backend) {
                    slot.profile.absorb_snapshot(&snap);
                    if let Some(i) = instruments {
                        i.hydrates.inc();
                    }
                }
            }
        }
        slot
    }

    /// Folds one finished stream in. Completed live runs update the
    /// digests and persist immediately; replay/hydrate hits persist
    /// every `PERSIST_EVERY`th fold (counters are cheap to lose).
    pub fn record_run(
        &self,
        fingerprint: u64,
        backend: &'static str,
        nodes: u32,
        run: RunRecord,
        store: Option<&Store>,
    ) {
        let mut map = self.inner.lock().unwrap();
        let slot = Self::warm_slot(&mut map, &self.instruments, fingerprint, backend, store);
        let profile = &mut slot.profile;
        profile.nodes = profile.nodes.max(nodes);
        let mut persist = false;
        match run.kind {
            RunKind::Live => {
                if run.completed {
                    if let Some(first) = run.first_us {
                        profile.first_us.record(first as f64);
                        if run.results > 1 {
                            let gap = run.wall_us.saturating_sub(first) / (run.results - 1);
                            profile.gap_us.record(gap as f64);
                        }
                    }
                    profile.live_runs += 1;
                    profile.results_total += run.results;
                    profile.extends_total += run.extends;
                    profile.wall_us_total += run.wall_us;
                    persist = true;
                }
            }
            RunKind::Replay => profile.replay_hits += 1,
            RunKind::Hydrate => profile.hydrate_hits += 1,
        }
        if let Some(i) = &self.instruments {
            i.runs_recorded.inc();
        }
        if !persist {
            slot.unsaved += 1;
            if slot.unsaved >= PERSIST_EVERY {
                persist = true;
            }
        }
        if persist {
            slot.unsaved = 0;
            if let Some(store) = store {
                store.put_profile(&slot.profile.snapshot(fingerprint, backend));
                if let Some(i) = &self.instruments {
                    i.persists.inc();
                }
            }
        }
    }

    /// The scheduling read: expected wall and result count for a live
    /// enumeration of `(fingerprint, backend)`. `None` until at least
    /// one completed live run has been observed (here or persisted by a
    /// previous process — the disk tier is probed on first miss).
    pub fn predict(
        &self,
        fingerprint: u64,
        backend: &'static str,
        store: Option<&Store>,
    ) -> Option<Prediction> {
        let mut map = self.inner.lock().unwrap();
        let slot = Self::warm_slot(&mut map, &self.instruments, fingerprint, backend, store);
        let wall_us = slot.profile.predicted_wall_us()?;
        Some(Prediction {
            wall_us,
            results: slot.profile.predicted_results().unwrap_or(0),
        })
    }

    /// Every profile held in RAM, sorted by predicted wall descending
    /// (the rows an operator wants first). For `/v1/stats`.
    pub fn views(&self) -> Vec<ProfileView> {
        let mut map = self.inner.lock().unwrap();
        let mut rows: Vec<ProfileView> = map
            .iter_mut()
            .map(|(&(fingerprint, backend), slot)| {
                let p = &mut slot.profile;
                ProfileView {
                    fingerprint,
                    backend,
                    nodes: p.nodes,
                    live_runs: p.live_runs,
                    replay_hits: p.replay_hits,
                    hydrate_hits: p.hydrate_hits,
                    results_total: p.results_total,
                    extends_total: p.extends_total,
                    predicted_wall_us: p.predicted_wall_us().unwrap_or(0),
                    predicted_results: p.predicted_results().unwrap_or(0),
                    first_us_p50: p.first_us.quantile(0.5).unwrap_or(0.0) as u64,
                    first_us_p99: p.first_us.quantile(0.99).unwrap_or(0.0) as u64,
                    gap_us_p50: p.gap_us.quantile(0.5).unwrap_or(0.0) as u64,
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.predicted_wall_us
                .cmp(&a.predicted_wall_us)
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        rows
    }

    /// Distinct `(atom, backend)` profiles held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// `true` when nothing has been learned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(results: u64, first_us: u64, wall_us: u64, extends: u64) -> RunRecord {
        RunRecord {
            kind: RunKind::Live,
            completed: true,
            results,
            first_us: Some(first_us),
            wall_us,
            extends,
        }
    }

    #[test]
    fn digest_quantiles_track_a_uniform_stream() {
        let mut d = TDigest::default();
        for i in 0..1000 {
            d.record(i as f64);
        }
        assert_eq!(d.count(), 1000);
        let p50 = d.quantile(0.5).unwrap();
        assert!((400.0..600.0).contains(&p50), "p50 was {p50}");
        let p99 = d.quantile(0.99).unwrap();
        assert!((960.0..=999.0).contains(&p99), "p99 was {p99}");
        assert_eq!(d.quantile(0.0), Some(0.0));
        assert_eq!(d.quantile(1.0), Some(999.0));
        // Bounded memory: far fewer centroids than observations. The
        // q(1-q) size bound keeps both tails as weight-1 singletons, so
        // the count sits well above COMPRESSION but grows only
        // logarithmically with the stream length.
        assert!(d.centroids.len() < 256, "{} centroids", d.centroids.len());
    }

    #[test]
    fn digest_snapshot_round_trips_summary_statistics() {
        let mut d = TDigest::default();
        for i in 0..500 {
            d.record((i % 97) as f64);
        }
        let snap = d.snapshot();
        let mut back = TDigest::from_snapshot(&snap);
        assert_eq!(back.count(), d.count());
        let (a, b) = (d.quantile(0.9).unwrap(), back.quantile(0.9).unwrap());
        assert!((a - b).abs() < 1e-9, "p90 drifted: {a} vs {b}");
    }

    #[test]
    fn hostile_digest_snapshot_is_sanitized() {
        let snap = DigestSnapshot {
            centroids: vec![
                (f64::NAN.to_bits(), 5),
                (10.0f64.to_bits(), 0),
                (3.0f64.to_bits(), 2),
            ],
            count: 99, // lies; rebuilt from surviving weights
            min_bits: f64::INFINITY.to_bits(),
            max_bits: 3.0f64.to_bits(),
        };
        let mut d = TDigest::from_snapshot(&snap);
        assert_eq!(d.count(), 2, "only the finite, weighted centroid survives");
        assert!(d.quantile(0.5).unwrap().is_finite());
    }

    #[test]
    fn completed_live_runs_drive_predictions_and_persist() {
        let profiler = Profiler::new();
        assert!(
            profiler.predict(7, "mcs-m", None).is_none(),
            "cold = unknown"
        );
        profiler.record_run(7, "mcs-m", 6, live(10, 100, 1_100, 55), None);
        profiler.record_run(7, "mcs-m", 6, live(10, 120, 900, 45), None);
        let p = profiler.predict(7, "mcs-m", None).unwrap();
        assert_eq!(p.wall_us, 1_000);
        assert_eq!(p.results, 10);
        // A different backend is a different profile.
        assert!(profiler.predict(7, "lex-m", None).is_none());
    }

    #[test]
    fn incomplete_and_replay_runs_never_touch_the_digests() {
        let profiler = Profiler::new();
        profiler.record_run(
            1,
            "mcs-m",
            5,
            RunRecord {
                kind: RunKind::Live,
                completed: false,
                results: 3,
                first_us: Some(10),
                wall_us: 50,
                extends: 9,
            },
            None,
        );
        assert!(
            profiler.predict(1, "mcs-m", None).is_none(),
            "a budget-truncated run must not teach a fake wall"
        );
        profiler.record_run(
            1,
            "mcs-m",
            5,
            RunRecord {
                kind: RunKind::Replay,
                completed: true,
                results: 3,
                first_us: Some(1),
                wall_us: 5,
                extends: 0,
            },
            None,
        );
        let views = profiler.views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].replay_hits, 1);
        assert_eq!(views[0].live_runs, 0);
    }

    #[test]
    fn profiles_persist_and_rehydrate_through_a_store() {
        use mintri_store::StoreConfig;
        let dir = std::env::temp_dir().join(format!(
            "mintri-profiler-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(StoreConfig::at(&dir)).unwrap();
        {
            let profiler = Profiler::new();
            profiler.record_run(42, "mcs-m", 8, live(20, 200, 2_200, 100), Some(&store));
            store.flush();
        }
        // A fresh profiler (fresh process) predicts from disk.
        let profiler = Profiler::new();
        let p = profiler.predict(42, "mcs-m", Some(&store)).unwrap();
        assert_eq!(p.wall_us, 2_200);
        assert_eq!(p.results, 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn views_sort_hot_atoms_first() {
        let profiler = Profiler::new();
        profiler.record_run(1, "mcs-m", 4, live(5, 10, 100, 9), None);
        profiler.record_run(2, "mcs-m", 9, live(50, 40, 9_000, 400), None);
        let views = profiler.views();
        assert_eq!(views[0].fingerprint, 2, "slowest atom leads the report");
        assert_eq!(views[0].predicted_wall_us, 9_000);
        assert_eq!(views[1].fingerprint, 1);
    }
}

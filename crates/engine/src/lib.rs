//! # mintri-engine — the parallel, cache-sharing enumeration engine
//!
//! The crates below this one implement the PODS 2017 algorithm as
//! single-threaded iterators. This crate is the *serving* layer: it runs
//! the same `EnumMIS` frontier over a work-stealing thread pool and keeps
//! per-graph state warm across queries. Three pieces stack up:
//!
//! 1. **Sharded memo tables** (in `mintri-core`): `MsGraph`'s separator
//!    interner and crossing-test memo are lock-striped concurrent
//!    structures, so one graph's expensive primitives are computed once
//!    and shared by every thread and every query that touches the graph.
//! 2. **[`ParallelEnumerator`]** (`parallel` feature, on by default):
//!    fans the `EnumMIS` extension frontier — the independent
//!    `(answer, separator)` pairs — out over worker threads, deduplicates
//!    answers through a sharded seen-set, and streams triangulations
//!    over a bounded channel. Two delivery modes:
//!    [`Delivery::Unordered`] (fastest; set-equal to sequential) and
//!    [`Delivery::Deterministic`] (bit-identical to the sequential
//!    enumerator's output order — use it in tests and golden files).
//! 3. **[`Engine`]**: sessions keyed by **atom subgraph** fingerprint.
//!    Every query is first routed through the planning layer
//!    (`mintri_core::query::Plan`): the graph splits into
//!    clique-minimal-separator atoms, each non-trivial atom gets its own
//!    warm session and stream, and the product composer recombines
//!    them. Repeated queries against the same graph — or *different*
//!    graphs sharing an atom — reuse the warm memo, and once an atom's
//!    enumeration completes its answer list is cached and replayed
//!    without an `Extend` call.
//!
//! ## One front door
//!
//! [`Engine::run`] is the serving entry point: it takes a typed
//! [`Query`] (what to compute — enumerate / best-k / decompose / stats —
//! plus backend, budget and an `ExecPolicy` saying how to execute:
//! `Auto`, the default, lets the engine's learned per-atom cost
//! profiles ([`profile`]) steer dispatch; `Fixed` pins threads,
//! planning, ranking and delivery by hand) and answers with a
//! [`Response`] (the blocking result stream plus `cancel()`,
//! `outcome()` — including the per-atom dispatch actually taken — and
//! `is_replay()`). Planning, sessions, completed-answer replay and the
//! parallel drivers are dispatch details behind it; the zero-setup
//! sequential path is `Query::run_local`, no engine required.
//!
//! ```
//! use mintri_engine::{Engine, Query};
//! use mintri_graph::Graph;
//!
//! // served: the second query replays the cached answers
//! let g = Graph::cycle(6);
//! let engine = Engine::new();
//! assert_eq!(engine.run(&g, Query::enumerate()).count(), 14);
//! let replay = engine.run(&g, Query::enumerate());
//! assert!(replay.is_replay());
//! assert_eq!(replay.count(), 14);
//! ```
//!
//! (Direct parallel streaming lives in [`ParallelEnumerator`]'s docs; it
//! needs the `parallel` feature.)

pub mod profile;
mod session;
mod telemetry;

#[cfg(feature = "parallel")]
mod parallel;
#[cfg(feature = "parallel")]
mod pool;
#[cfg(feature = "parallel")]
mod sched;

pub use profile::{Prediction, ProfileView, Profiler};
pub use session::{graph_fingerprint, Engine, GraphSession};
pub use telemetry::EngineTelemetry;

/// The persistent warm-state tier, re-exported so serving layers and the
/// CLI configure [`Engine::with_store`] without naming `mintri-store`
/// directly.
pub use mintri_store::{GraphSnapshot, Store, StoreConfig, StoreStats};

#[cfg(feature = "parallel")]
pub use parallel::ParallelEnumerator;
#[cfg(feature = "parallel")]
pub use pool::WorkPool;
#[cfg(feature = "parallel")]
pub use sched::{Backoff, Idle, Scheduler};

/// The delivery contract now lives with the rest of the query vocabulary
/// in `mintri_core::query`; re-exported here so existing
/// `mintri_engine::Delivery` paths keep working.
pub use mintri_core::query::Delivery;
/// The typed query front door, re-exported for convenience: build a
/// [`Query`], hand it to [`Engine::run`], consume the [`Response`].
pub use mintri_core::query::{
    AtomDispatch, CancelHookGuard, CancelToken, CostMeasure, DispatchKind, ExecPolicy, Query,
    QueryItem, QueryOutcome, Response, Task,
};

/// Configuration shared by [`Engine`] and [`ParallelEnumerator`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means "ask [`std::thread::available_parallelism`]".
    pub threads: usize,
    /// Result ordering contract.
    pub delivery: Delivery,
    /// Bound of the result channel in `Unordered` mode (backpressure for
    /// slow consumers).
    pub channel_capacity: usize,
    /// Maximum warm [`GraphSession`]s an [`Engine`] keeps; beyond this
    /// the least recently used session (memo tables + cached answers) is
    /// dropped. Minimum 1.
    pub max_sessions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            delivery: Delivery::Unordered,
            channel_capacity: 256,
            max_sessions: 64,
        }
    }
}

impl EngineConfig {
    /// The effective worker count (resolves `threads == 0`).
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// A [`mintri_core::SearchStrategy`] that runs `AnytimeSearch` over the
/// parallel enumerator — `AnytimeSearch::new(&g).strategy(parallel_strategy(8))`.
///
/// `Unordered` delivery: budgeted searches want throughput, and the
/// recorded quality statistics are order-insensitive aggregates. Pass a
/// full [`EngineConfig`] via [`parallel_strategy_with`] to override.
#[cfg(feature = "parallel")]
pub fn parallel_strategy(threads: usize) -> mintri_core::SearchStrategy {
    parallel_strategy_with(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

/// [`parallel_strategy`] with an explicit configuration. The search's
/// [`mintri_sgr::PrintMode`] is forwarded: `Deterministic` delivery
/// honors it exactly like the sequential enumerator; `Unordered`
/// delivery has no meaningful print discipline and ignores it.
#[cfg(feature = "parallel")]
pub fn parallel_strategy_with(config: EngineConfig) -> mintri_core::SearchStrategy {
    mintri_core::SearchStrategy::Streamed(Box::new(move |g, triangulator, mode| {
        Box::new(ParallelEnumerator::with_config_and_mode(
            g,
            triangulator,
            &config,
            mode,
        ))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolves_threads() {
        assert!(EngineConfig::default().resolved_threads() >= 1);
        assert_eq!(
            EngineConfig {
                threads: 3,
                ..EngineConfig::default()
            }
            .resolved_threads(),
            3
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn anytime_parallel_strategy_runs_under_budget() {
        use mintri_core::{AnytimeSearch, EnumerationBudget};
        use mintri_graph::Graph;

        let g = Graph::cycle(7);
        let outcome = AnytimeSearch::new(&g)
            .strategy(parallel_strategy(2))
            .budget(EnumerationBudget::results(10))
            .run();
        assert_eq!(outcome.records.len(), 10);
        let full = AnytimeSearch::new(&g).strategy(parallel_strategy(2)).run();
        assert!(full.completed);
        assert_eq!(full.records.len(), 42);
    }
}
